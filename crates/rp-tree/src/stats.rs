//! Summary statistics of a tree's shape.
//!
//! The experiment harness reports these alongside every generated
//! workload so that result tables document the tree population they were
//! measured on (the paper only states "randomly generated trees with
//! 15 <= s <= 400").

use crate::tree::TreeNetwork;

/// Shape statistics of a distribution tree.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Number of internal nodes `|N|`.
    pub num_nodes: usize,
    /// Number of clients `|C|`.
    pub num_clients: usize,
    /// Problem size `s = |C| + |N|`.
    pub problem_size: usize,
    /// Depth of the tree in links (maximum client depth).
    pub depth: u32,
    /// Maximum number of children (nodes + clients) of an internal node.
    pub max_degree: usize,
    /// Mean number of children (nodes + clients) over internal nodes.
    pub mean_degree: f64,
    /// Number of internal nodes whose children are all clients.
    pub bottom_nodes: usize,
    /// Number of internal nodes with no children at all.
    pub childless_nodes: usize,
    /// Mean depth of the clients.
    pub mean_client_depth: f64,
}

impl TreeStats {
    /// Computes the statistics of `tree`.
    pub fn compute(tree: &TreeNetwork) -> Self {
        let num_nodes = tree.num_nodes();
        let num_clients = tree.num_clients();
        let mut max_degree = 0usize;
        let mut total_degree = 0usize;
        let mut bottom_nodes = 0usize;
        let mut childless_nodes = 0usize;
        for node in tree.node_ids() {
            let degree = tree.child_nodes(node).len() + tree.child_clients(node).len();
            max_degree = max_degree.max(degree);
            total_degree += degree;
            if tree.is_bottom_node(node) {
                bottom_nodes += 1;
            }
            if tree.is_childless(node) {
                childless_nodes += 1;
            }
        }
        let depth = tree.depth();
        let total_client_depth: u64 = tree
            .client_ids()
            .map(|c| u64::from(tree.client_depth(c)))
            .sum();
        TreeStats {
            num_nodes,
            num_clients,
            problem_size: num_nodes + num_clients,
            depth,
            max_degree,
            mean_degree: if num_nodes == 0 {
                0.0
            } else {
                total_degree as f64 / num_nodes as f64
            },
            bottom_nodes,
            childless_nodes,
            mean_client_depth: if num_clients == 0 {
                0.0
            } else {
                total_client_depth as f64 / num_clients as f64
            },
        }
    }
}

impl std::fmt::Display for TreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "s={} (|N|={}, |C|={}), depth={}, max_deg={}, mean_deg={:.2}, \
             bottom={}, childless={}, mean_client_depth={:.2}",
            self.problem_size,
            self.num_nodes,
            self.num_clients,
            self.depth,
            self.max_degree,
            self.mean_degree,
            self.bottom_nodes,
            self.childless_nodes,
            self.mean_client_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    #[test]
    fn stats_of_star_tree() {
        // Root with 4 clients directly attached.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_clients(root, 4);
        let t = b.build().unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.num_nodes, 1);
        assert_eq!(s.num_clients, 4);
        assert_eq!(s.problem_size, 5);
        assert_eq!(s.depth, 1);
        assert_eq!(s.max_degree, 4);
        assert!((s.mean_degree - 4.0).abs() < 1e-12);
        assert_eq!(s.bottom_nodes, 1);
        assert_eq!(s.childless_nodes, 0);
        assert!((s.mean_client_depth - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_chain_tree() {
        // root -> n -> n -> n, single client at the bottom.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let deep = b.add_node_chain(root, 3);
        b.add_client(deep);
        let t = b.build().unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_clients, 1);
        assert_eq!(s.depth, 4);
        assert_eq!(s.max_degree, 1);
        assert_eq!(s.bottom_nodes, 1);
        assert_eq!(s.childless_nodes, 0);
    }

    #[test]
    fn stats_count_childless_nodes() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_node(root); // childless internal node
        b.add_client(root);
        let t = b.build().unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.childless_nodes, 1);
        // The root has an internal-node child, so it is not a bottom node.
        assert_eq!(s.bottom_nodes, 0);
    }

    #[test]
    fn display_mentions_problem_size() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        let t = b.build().unwrap();
        let text = TreeStats::compute(&t).to_string();
        assert!(text.contains("s=2"));
        assert!(text.contains("depth=1"));
    }
}
