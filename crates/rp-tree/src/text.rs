//! Plain-text serialisation of tree topologies.
//!
//! The format is line-oriented and diff-friendly, so generated workloads
//! can be checked into a repository or attached to experiment reports:
//!
//! ```text
//! # anything after '#' is a comment
//! tree v1
//! node 0 root
//! node 1 parent 0
//! node 2 parent 0 label "left hub"
//! client 0 parent 1
//! client 1 parent 2 label "VOD customer"
//! ```
//!
//! Node and client indices must be dense and in increasing order, which
//! matches how [`TreeBuilder`](crate::TreeBuilder) assigns them; the
//! writer always produces such files, and the parser enforces it.

use crate::error::TreeError;
use crate::ids::NodeId;
use crate::tree::{TreeBuilder, TreeNetwork};

/// Serialises the topology (and labels) of `tree` into the text format.
pub fn write_tree(tree: &TreeNetwork) -> String {
    let mut out = String::from("tree v1\n");
    for node in tree.node_ids() {
        match tree.parent_of_node(node) {
            None => out.push_str(&format!("node {} root", node.index())),
            Some(parent) => {
                out.push_str(&format!("node {} parent {}", node.index(), parent.index()))
            }
        }
        if let Some(label) = tree.node_label(node) {
            out.push_str(&format!(" label \"{}\"", escape(label)));
        }
        out.push('\n');
    }
    for client in tree.client_ids() {
        out.push_str(&format!(
            "client {} parent {}",
            client.index(),
            tree.parent_of_client(client).index()
        ));
        if let Some(label) = tree.client_label(client) {
            out.push_str(&format!(" label \"{}\"", escape(label)));
        }
        out.push('\n');
    }
    out
}

/// Parses a tree from the text format produced by [`write_tree`].
pub fn parse_tree(input: &str) -> Result<TreeNetwork, TreeError> {
    let mut builder = TreeBuilder::new();
    let mut saw_header = false;
    let mut expected_node = 0usize;
    let mut expected_client = 0usize;

    for (line_no, raw_line) in input.lines().enumerate() {
        let line_no = line_no + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if !saw_header {
            if line != "tree v1" {
                return Err(parse_err(line_no, "expected header `tree v1`"));
            }
            saw_header = true;
            continue;
        }
        let (kind, rest) = split_first_token(line);
        match kind {
            "node" => {
                let (idx_str, rest) = split_first_token(rest);
                let idx: usize = idx_str
                    .parse()
                    .map_err(|_| parse_err(line_no, "invalid node index"))?;
                if idx != expected_node {
                    return Err(parse_err(
                        line_no,
                        &format!("node indices must be dense; expected {expected_node}, got {idx}"),
                    ));
                }
                expected_node += 1;
                let (rest, label) = split_label(rest, line_no)?;
                let rest = rest.trim();
                let handle = if rest == "root" {
                    builder.add_root()
                } else if let Some(parent_str) = rest.strip_prefix("parent ") {
                    let parent: usize = parent_str
                        .trim()
                        .parse()
                        .map_err(|_| parse_err(line_no, "invalid parent index"))?;
                    if parent >= idx {
                        return Err(parse_err(
                            line_no,
                            "parent index must refer to an earlier node",
                        ));
                    }
                    builder.add_node(NodeId::from_index(parent))
                } else {
                    return Err(parse_err(line_no, "expected `root` or `parent <idx>`"));
                };
                if let Some(label) = label {
                    builder.set_node_label(handle, label);
                }
            }
            "client" => {
                let (idx_str, rest) = split_first_token(rest);
                let idx: usize = idx_str
                    .parse()
                    .map_err(|_| parse_err(line_no, "invalid client index"))?;
                if idx != expected_client {
                    return Err(parse_err(
                        line_no,
                        &format!(
                            "client indices must be dense; expected {expected_client}, got {idx}"
                        ),
                    ));
                }
                expected_client += 1;
                let (rest, label) = split_label(rest, line_no)?;
                let rest = rest.trim();
                let parent_str = rest
                    .strip_prefix("parent ")
                    .ok_or_else(|| parse_err(line_no, "expected `parent <idx>`"))?;
                let parent: usize = parent_str
                    .trim()
                    .parse()
                    .map_err(|_| parse_err(line_no, "invalid parent index"))?;
                if parent >= expected_node {
                    return Err(parse_err(line_no, "client parent must be a declared node"));
                }
                let handle = builder.add_client(NodeId::from_index(parent));
                if let Some(label) = label {
                    builder.set_client_label(handle, label);
                }
            }
            other => {
                return Err(parse_err(
                    line_no,
                    &format!("unknown record type `{other}` (expected `node` or `client`)"),
                ));
            }
        }
    }

    if !saw_header {
        return Err(parse_err(0, "missing header `tree v1`"));
    }
    builder.build()
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut chars = label.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(next) = chars.next() {
                out.push(next);
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn strip_comment(line: &str) -> &str {
    // A '#' starts a comment only outside of a quoted label.
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn split_first_token(line: &str) -> (&str, &str) {
    let line = line.trim_start();
    match line.find(char::is_whitespace) {
        Some(pos) => (&line[..pos], line[pos..].trim_start()),
        None => (line, ""),
    }
}

/// Splits an optional trailing ` label "..."` clause off `rest`.
fn split_label(rest: &str, line_no: usize) -> Result<(&str, Option<String>), TreeError> {
    match rest.find(" label \"") {
        None => Ok((rest, None)),
        Some(pos) => {
            let before = &rest[..pos];
            let quoted = &rest[pos + " label \"".len()..];
            // Find the closing unescaped quote.
            let mut escaped = false;
            for (i, c) in quoted.char_indices() {
                match c {
                    '\\' => escaped = !escaped,
                    '"' if !escaped => {
                        let label = unescape(&quoted[..i]);
                        let after = quoted[i + 1..].trim();
                        if !after.is_empty() {
                            return Err(parse_err(line_no, "unexpected text after label"));
                        }
                        return Ok((before, Some(label)));
                    }
                    _ => escaped = false,
                }
            }
            Err(parse_err(line_no, "unterminated label string"))
        }
    }
}

fn parse_err(line: usize, message: &str) -> TreeError {
    TreeError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn sample() -> TreeNetwork {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let bb = b.add_node(a);
        b.add_client(bb);
        b.add_client(root);
        b.set_node_label(a, "hub \"east\"");
        b.set_client_label(crate::ids::ClientId::from_index(1), "direct");
        b.build().unwrap()
    }

    #[test]
    fn write_then_parse_round_trips() {
        let t = sample();
        let text = write_tree(&t);
        let parsed = parse_tree(&text).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn writer_output_is_stable() {
        let t = sample();
        let text = write_tree(&t);
        assert!(text.starts_with("tree v1\n"));
        assert!(text.contains("node 0 root"));
        assert!(text.contains("node 1 parent 0 label \"hub \\\"east\\\"\""));
        assert!(text.contains("node 2 parent 1"));
        assert!(text.contains("client 0 parent 2"));
        assert!(text.contains("client 1 parent 0 label \"direct\""));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# a comment\ntree v1\nnode 0 root   # the root\n\nclient 0 parent 0\n";
        let t = parse_tree(text).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_clients(), 1);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_tree("node 0 root\n").unwrap_err();
        assert!(matches!(err, TreeError::Parse { .. }));
    }

    #[test]
    fn non_dense_indices_are_rejected() {
        let err = parse_tree("tree v1\nnode 1 root\n").unwrap_err();
        assert!(err.to_string().contains("dense"));
    }

    #[test]
    fn forward_parent_references_are_rejected() {
        let err = parse_tree("tree v1\nnode 0 root\nnode 1 parent 2\n").unwrap_err();
        assert!(err.to_string().contains("earlier node"));
    }

    #[test]
    fn client_with_unknown_parent_is_rejected() {
        let err = parse_tree("tree v1\nnode 0 root\nclient 0 parent 5\n").unwrap_err();
        assert!(err.to_string().contains("declared node"));
    }

    #[test]
    fn unterminated_label_is_rejected() {
        let err = parse_tree("tree v1\nnode 0 root label \"oops\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn unknown_record_type_is_rejected() {
        let err = parse_tree("tree v1\nedge 0 1\n").unwrap_err();
        assert!(err.to_string().contains("unknown record type"));
    }

    #[test]
    fn hash_inside_label_is_not_a_comment() {
        let text = "tree v1\nnode 0 root label \"color #3\"\nclient 0 parent 0\n";
        let t = parse_tree(text).unwrap();
        assert_eq!(t.node_label(NodeId::from_index(0)), Some("color #3"));
    }
}
