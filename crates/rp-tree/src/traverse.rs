//! Traversal utilities: ancestors, subtrees, paths, depths and orders.
//!
//! All the algorithms in the paper are phrased in terms of a handful of
//! primitives — `Ancestors(k)`, `subtree(k)`, `path[i -> s]`, breadth-
//! first and bottom-up traversals — which this module provides on top of
//! the immutable [`TreeNetwork`].
//!
//! # Cost model
//!
//! These primitives sit in the inner loop of every heuristic and solver,
//! so none of them allocates:
//!
//! * ancestor walks return lazy iterators over the parent pointers
//!   ([`Ancestors`], [`PathLinks`]); the `*_vec` variants exist as
//!   collecting conveniences for call sites that genuinely need a `Vec`;
//! * subtree and whole-tree traversals return **slices** of orders that
//!   were precomputed when the tree was built;
//! * [`node_is_ancestor_or_self`](TreeNetwork::node_is_ancestor_or_self),
//!   [`client_distance`](TreeNetwork::client_distance),
//!   [`node_depth`](TreeNetwork::node_depth) and
//!   [`client_depth`](TreeNetwork::client_depth) are O(1) via the
//!   preorder interval stamps and depth table.

use crate::ids::{ClientId, LinkId, NodeId};
use crate::tree::TreeNetwork;

/// Lazy bottom-up iterator over a chain of ancestors (see
/// [`TreeNetwork::ancestors_of_node`] and friends). Exact-size and fused;
/// never allocates.
#[derive(Clone, Debug)]
pub struct Ancestors<'t> {
    tree: &'t TreeNetwork,
    next: Option<NodeId>,
    remaining: usize,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.tree.parent_of_node(current);
        self.remaining -= 1;
        Some(current)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Ancestors<'_> {}
impl std::iter::FusedIterator for Ancestors<'_> {}

/// Lazy bottom-up iterator over the links of a client's path (see
/// [`TreeNetwork::client_path_links`]). Exact-size and fused; never
/// allocates.
#[derive(Clone, Debug)]
pub struct PathLinks<'t> {
    tree: &'t TreeNetwork,
    next: Option<LinkId>,
    server: NodeId,
    remaining: usize,
}

impl Iterator for PathLinks<'_> {
    type Item = LinkId;

    #[inline]
    fn next(&mut self) -> Option<LinkId> {
        let link = self.next.take()?;
        let upper = self.tree.link_upper(link);
        if upper != self.server {
            self.next = Some(LinkId::Node(upper));
        }
        self.remaining -= 1;
        Some(link)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PathLinks<'_> {}
impl std::iter::FusedIterator for PathLinks<'_> {}

impl TreeNetwork {
    /// Ancestors of an internal node, from its parent up to the root
    /// (the node itself is excluded, matching the paper's `Ancestors(k)`).
    #[inline]
    pub fn ancestors_of_node(&self, node: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            next: self.parent_of_node(node),
            remaining: self.depth[node.index()] as usize,
        }
    }

    /// Ancestors of a client: its parent node, then that node's
    /// ancestors up to the root. These are exactly the candidate servers
    /// for the client under every access policy.
    #[inline]
    pub fn ancestors_of_client(&self, client: ClientId) -> Ancestors<'_> {
        let parent = self.parent_of_client(client);
        Ancestors {
            tree: self,
            next: Some(parent),
            remaining: self.depth[parent.index()] as usize + 1,
        }
    }

    /// Ancestors of a node *including the node itself*, bottom-up.
    #[inline]
    pub fn self_and_ancestors(&self, node: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            next: Some(node),
            remaining: self.depth[node.index()] as usize + 1,
        }
    }

    /// Collecting variant of [`ancestors_of_node`](Self::ancestors_of_node).
    pub fn ancestors_of_node_vec(&self, node: NodeId) -> Vec<NodeId> {
        self.ancestors_of_node(node).collect()
    }

    /// Collecting variant of [`ancestors_of_client`](Self::ancestors_of_client).
    pub fn ancestors_of_client_vec(&self, client: ClientId) -> Vec<NodeId> {
        self.ancestors_of_client(client).collect()
    }

    /// Collecting variant of [`self_and_ancestors`](Self::self_and_ancestors).
    pub fn self_and_ancestors_vec(&self, node: NodeId) -> Vec<NodeId> {
        self.self_and_ancestors(node).collect()
    }

    /// Returns `true` when `ancestor` lies on the path from `node` to the
    /// root (or is `node` itself). O(1): `subtree(ancestor)` occupies one
    /// contiguous preorder interval, so the test is an interval check on
    /// the stamps computed at build time.
    #[inline]
    pub fn node_is_ancestor_or_self(&self, node: NodeId, ancestor: NodeId) -> bool {
        let pos = self.tin[node.index()];
        let start = self.tin[ancestor.index()];
        pos >= start && pos < start + self.subtree_size[ancestor.index()]
    }

    /// Returns `true` when `server` is an eligible server for `client`,
    /// i.e. it lies on the path from the client to the root. O(1).
    #[inline]
    pub fn is_on_client_path(&self, client: ClientId, server: NodeId) -> bool {
        self.node_is_ancestor_or_self(self.parent_of_client(client), server)
    }

    /// All internal nodes of `subtree(node)`, including `node`, in
    /// depth-first preorder. A slice of the precomputed preorder — no
    /// traversal, no allocation.
    #[inline]
    pub fn subtree_nodes(&self, node: NodeId) -> &[NodeId] {
        let start = self.tin[node.index()] as usize;
        let len = self.subtree_size[node.index()] as usize;
        &self.preorder[start..start + len]
    }

    /// All clients in `subtree(node)`, grouped by the preorder position
    /// of their parent node (this is the paper's `clients(j)`). A slice
    /// of a precomputed arena — no traversal, no allocation.
    #[inline]
    pub fn subtree_clients(&self, node: NodeId) -> &[ClientId] {
        let start = self.tin[node.index()] as usize;
        let end = start + self.subtree_size[node.index()] as usize;
        let lo = self.client_offset[start] as usize;
        let hi = self.client_offset[end] as usize;
        &self.clients_preorder[lo..hi]
    }

    /// Number of hops on the path from a client to a candidate server,
    /// i.e. `|path[i -> s]|`. Returns `None` if `server` is not on the
    /// client's path to the root. O(1) via the depth table.
    #[inline]
    pub fn client_distance(&self, client: ClientId, server: NodeId) -> Option<u32> {
        let parent = self.parent_of_client(client);
        if !self.node_is_ancestor_or_self(parent, server) {
            return None;
        }
        Some(self.depth[parent.index()] + 1 - self.depth[server.index()])
    }

    /// The links on the path from a client up to (and including the link
    /// into) `server`, as a lazy iterator. Returns `None` if `server` is
    /// not an ancestor of the client.
    pub fn client_path_links(&self, client: ClientId, server: NodeId) -> Option<PathLinks<'_>> {
        let length = self.client_distance(client, server)?;
        Some(PathLinks {
            tree: self,
            next: Some(LinkId::Client(client)),
            server,
            remaining: length as usize,
        })
    }

    /// Collecting variant of [`client_path_links`](Self::client_path_links).
    pub fn client_path_links_vec(&self, client: ClientId, server: NodeId) -> Option<Vec<LinkId>> {
        self.client_path_links(client, server)
            .map(Iterator::collect)
    }

    /// All links on the path from a client up to the root, as a lazy
    /// iterator.
    pub fn client_path_to_root(&self, client: ClientId) -> PathLinks<'_> {
        self.client_path_links(client, self.root())
            .expect("the root is an ancestor of every client")
    }

    /// Position of `client` in the preorder-grouped client arena: the
    /// deterministic rank of the client in a depth-first subtree walk.
    /// Useful as a total tie-breaker when sorting clients of a subtree
    /// so that unstable in-place sorts reproduce the order a stable
    /// sort over the subtree walk would give. O(1).
    #[inline]
    pub fn client_preorder_rank(&self, client: ClientId) -> u32 {
        self.client_rank[client.index()]
    }

    /// Depth of an internal node (the root has depth 0). O(1).
    #[inline]
    pub fn node_depth(&self, node: NodeId) -> u32 {
        self.depth[node.index()]
    }

    /// Depth of a client (its parent's depth plus one). O(1).
    #[inline]
    pub fn client_depth(&self, client: ClientId) -> u32 {
        self.depth[self.parent_of_client(client).index()] + 1
    }

    /// Breadth-first order over internal nodes, starting at the root.
    ///
    /// This is the traversal used by the Closest top-down heuristics
    /// (CTDA / CTDLF) in Section 6.1. Precomputed at build time.
    #[inline]
    pub fn bfs_nodes(&self) -> &[NodeId] {
        &self.bfs
    }

    /// Depth-first preorder over internal nodes, starting at the root.
    /// Precomputed at build time.
    #[inline]
    pub fn dfs_preorder_nodes(&self) -> &[NodeId] {
        &self.preorder
    }

    /// Post-order over internal nodes (children before parents). This is
    /// the natural order for the bottom-up passes of the optimal
    /// Multiple/homogeneous algorithm and the CBU / MBU heuristics.
    /// Precomputed at build time.
    #[inline]
    pub fn postorder_nodes(&self) -> &[NodeId] {
        &self.postorder
    }

    /// Depth of the tree counted in node levels: the maximum client depth.
    /// A root with only client children has depth 1.
    pub fn depth(&self) -> u32 {
        self.client_ids()
            .map(|c| self.client_depth(c))
            .max()
            .unwrap_or(0)
    }

    /// Lowest common ancestor of two internal nodes. O(depth), no
    /// allocation: both nodes are lifted to a common depth, then walked
    /// up in lockstep.
    pub fn lowest_common_ancestor(&self, a: NodeId, b: NodeId) -> NodeId {
        let mut a = a;
        let mut b = b;
        while self.depth[a.index()] > self.depth[b.index()] {
            a = self.parent_of_node(a).expect("deeper node has a parent");
        }
        while self.depth[b.index()] > self.depth[a.index()] {
            b = self.parent_of_node(b).expect("deeper node has a parent");
        }
        while a != b {
            a = self
                .parent_of_node(a)
                .expect("the root is a common ancestor of every pair of nodes");
            b = self
                .parent_of_node(b)
                .expect("the root is a common ancestor of every pair of nodes");
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    /// Builds the example tree of Figure 6 in the paper (topology only):
    ///
    /// ```text
    ///            n1
    ///        /    |    \
    ///      n2    n3     n4
    ///     /  \    |    / | \
    ///   c(2) c(2) n5 n6 n9 c(1)
    ///              |  /\   | \
    ///             ... (clients and deeper nodes)
    /// ```
    ///
    /// For traversal tests we only need a moderately bushy shape, so we
    /// reproduce the upper part: root with three internal children, one
    /// of which has a deeper chain.
    fn figure6_like() -> (TreeNetwork, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let n1 = b.add_root();
        let n2 = b.add_node(n1);
        let n3 = b.add_node(n1);
        let n4 = b.add_node(n1);
        let n5 = b.add_node(n3);
        let n6 = b.add_node(n4);
        let c0 = b.add_client(n2);
        let c1 = b.add_client(n2);
        let c2 = b.add_client(n5);
        let c3 = b.add_client(n6);
        let c4 = b.add_client(n4);
        let tree = b.build().unwrap();
        (tree, vec![n1, n2, n3, n4, n5, n6], vec![c0, c1, c2, c3, c4])
    }

    #[test]
    fn ancestors_exclude_self_and_end_at_root() {
        let (t, n, _) = figure6_like();
        assert_eq!(t.ancestors_of_node_vec(n[0]), vec![]);
        assert_eq!(t.ancestors_of_node_vec(n[4]), vec![n[2], n[0]]);
        assert_eq!(t.self_and_ancestors_vec(n[4]), vec![n[4], n[2], n[0]]);
    }

    #[test]
    fn ancestor_iterators_report_exact_lengths() {
        let (t, n, c) = figure6_like();
        assert_eq!(t.ancestors_of_node(n[0]).len(), 0);
        assert_eq!(t.ancestors_of_node(n[4]).len(), 2);
        assert_eq!(t.self_and_ancestors(n[4]).len(), 3);
        assert_eq!(t.ancestors_of_client(c[2]).len(), 3);
        // The hint shrinks as the iterator advances.
        let mut it = t.ancestors_of_client(c[2]);
        it.next();
        assert_eq!(it.size_hint(), (2, Some(2)));
        // Fused: keeps returning None at the end.
        let mut it = t.ancestors_of_node(n[0]);
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn client_ancestors_are_candidate_servers() {
        let (t, n, c) = figure6_like();
        assert_eq!(t.ancestors_of_client_vec(c[2]), vec![n[4], n[2], n[0]]);
        assert_eq!(t.ancestors_of_client_vec(c[4]), vec![n[3], n[0]]);
        assert!(t.is_on_client_path(c[2], n[0]));
        assert!(t.is_on_client_path(c[2], n[4]));
        assert!(!t.is_on_client_path(c[2], n[1]));
    }

    #[test]
    fn ancestor_or_self_matches_a_parent_walk() {
        let (t, n, _) = figure6_like();
        for &a in &n {
            for &b in &n {
                let walked = {
                    let mut current = Some(a);
                    let mut found = false;
                    while let Some(x) = current {
                        if x == b {
                            found = true;
                            break;
                        }
                        current = t.parent_of_node(x);
                    }
                    found
                };
                assert_eq!(t.node_is_ancestor_or_self(a, b), walked, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn subtree_collection() {
        let (t, n, c) = figure6_like();
        let sub = t.subtree_nodes(n[3]);
        assert_eq!(sub, vec![n[3], n[5]]);
        let sub_clients = t.subtree_clients(n[3]);
        assert_eq!(sub_clients.len(), 2);
        assert!(sub_clients.contains(&c[3]));
        assert!(sub_clients.contains(&c[4]));
        // The whole tree.
        assert_eq!(t.subtree_nodes(t.root()).len(), t.num_nodes());
        assert_eq!(t.subtree_clients(t.root()).len(), t.num_clients());
    }

    #[test]
    fn distances_and_paths() {
        let (t, n, c) = figure6_like();
        assert_eq!(t.client_distance(c[2], n[4]), Some(1));
        assert_eq!(t.client_distance(c[2], n[2]), Some(2));
        assert_eq!(t.client_distance(c[2], n[0]), Some(3));
        assert_eq!(t.client_distance(c[2], n[1]), None);

        let path = t.client_path_links_vec(c[2], n[0]).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], LinkId::Client(c[2]));
        assert_eq!(path[1], LinkId::Node(n[4]));
        assert_eq!(path[2], LinkId::Node(n[2]));
        assert_eq!(t.client_path_to_root(c[2]).collect::<Vec<_>>(), path);
        assert!(t.client_path_links(c[2], n[1]).is_none());
        // The lazy iterator reports its exact length.
        assert_eq!(t.client_path_links(c[2], n[0]).unwrap().len(), 3);
    }

    #[test]
    fn depths() {
        let (t, n, c) = figure6_like();
        assert_eq!(t.node_depth(n[0]), 0);
        assert_eq!(t.node_depth(n[4]), 2);
        assert_eq!(t.client_depth(c[0]), 2);
        assert_eq!(t.client_depth(c[2]), 3);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn traversal_orders_cover_all_nodes_once() {
        let (t, _, _) = figure6_like();
        for order in [t.bfs_nodes(), t.dfs_preorder_nodes(), t.postorder_nodes()] {
            assert_eq!(order.len(), t.num_nodes());
            let unique: std::collections::HashSet<_> = order.iter().collect();
            assert_eq!(unique.len(), t.num_nodes());
        }
    }

    #[test]
    fn bfs_is_level_order_and_postorder_ends_at_root() {
        let (t, n, _) = figure6_like();
        let bfs = t.bfs_nodes();
        assert_eq!(bfs[0], n[0]);
        assert_eq!(&bfs[1..4], &[n[1], n[2], n[3]]);
        let post = t.postorder_nodes();
        assert_eq!(*post.last().unwrap(), n[0]);
        // Children appear before their parents in post-order.
        let pos = |x: NodeId| post.iter().position(|&y| y == x).unwrap();
        assert!(pos(n[4]) < pos(n[2]));
        assert!(pos(n[5]) < pos(n[3]));
    }

    #[test]
    fn preorder_parents_precede_children() {
        let (t, _, _) = figure6_like();
        let pre = t.dfs_preorder_nodes();
        for (i, &node) in pre.iter().enumerate() {
            if let Some(parent) = t.parent_of_node(node) {
                let parent_pos = pre.iter().position(|&x| x == parent).unwrap();
                assert!(parent_pos < i);
            }
        }
    }

    #[test]
    fn lowest_common_ancestor_works() {
        let (t, n, _) = figure6_like();
        assert_eq!(t.lowest_common_ancestor(n[4], n[5]), n[0]);
        assert_eq!(t.lowest_common_ancestor(n[4], n[2]), n[2]);
        assert_eq!(t.lowest_common_ancestor(n[2], n[4]), n[2]);
        assert_eq!(t.lowest_common_ancestor(n[3], n[3]), n[3]);
    }

    #[test]
    fn deep_chain_traversal_is_iterative_not_recursive() {
        // A 50_000-deep chain would overflow the stack with a recursive
        // implementation; the iterative one must handle it.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let deep = b.add_node_chain(root, 50_000);
        b.add_client(deep);
        let t = b.build().unwrap();
        assert_eq!(t.postorder_nodes().len(), 50_001);
        assert_eq!(t.subtree_nodes(t.root()).len(), 50_001);
        assert_eq!(t.node_depth(deep), 50_000);
    }
}
