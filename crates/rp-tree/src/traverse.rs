//! Traversal utilities: ancestors, subtrees, paths, depths and orders.
//!
//! All the algorithms in the paper are phrased in terms of a handful of
//! primitives — `Ancestors(k)`, `subtree(k)`, `path[i -> s]`, breadth-
//! first and bottom-up traversals — which this module provides on top of
//! the immutable [`TreeNetwork`].

use crate::ids::{ClientId, LinkId, NodeId};
use crate::tree::TreeNetwork;

impl TreeNetwork {
    /// Ancestors of an internal node, from its parent up to the root
    /// (the node itself is excluded, matching the paper's `Ancestors(k)`).
    pub fn ancestors_of_node(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut current = self.parent_of_node(node);
        while let Some(n) = current {
            out.push(n);
            current = self.parent_of_node(n);
        }
        out
    }

    /// Ancestors of a client: its parent node, then that node's
    /// ancestors up to the root. These are exactly the candidate servers
    /// for the client under every access policy.
    pub fn ancestors_of_client(&self, client: ClientId) -> Vec<NodeId> {
        let parent = self.parent_of_client(client);
        let mut out = vec![parent];
        out.extend(self.ancestors_of_node(parent));
        out
    }

    /// Ancestors of a node *including the node itself*, bottom-up.
    pub fn self_and_ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = vec![node];
        out.extend(self.ancestors_of_node(node));
        out
    }

    /// Returns `true` when `ancestor` lies on the path from `node` to the
    /// root (or is `node` itself).
    pub fn node_is_ancestor_or_self(&self, node: NodeId, ancestor: NodeId) -> bool {
        let mut current = Some(node);
        while let Some(n) = current {
            if n == ancestor {
                return true;
            }
            current = self.parent_of_node(n);
        }
        false
    }

    /// Returns `true` when `server` is an eligible server for `client`,
    /// i.e. it lies on the path from the client to the root.
    pub fn is_on_client_path(&self, client: ClientId, server: NodeId) -> bool {
        self.node_is_ancestor_or_self(self.parent_of_client(client), server)
    }

    /// All internal nodes of `subtree(node)`, including `node`, in
    /// depth-first preorder.
    pub fn subtree_nodes(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &child in self.child_nodes(n).iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// All clients in `subtree(node)`, in depth-first preorder of their
    /// parent nodes (this is the paper's `clients(j)`).
    pub fn subtree_clients(&self, node: NodeId) -> Vec<ClientId> {
        let mut out = Vec::new();
        for n in self.subtree_nodes(node) {
            out.extend_from_slice(self.child_clients(n));
        }
        out
    }

    /// Number of hops on the path from a client to a candidate server,
    /// i.e. `|path[i -> s]|`. Returns `None` if `server` is not on the
    /// client's path to the root.
    pub fn client_distance(&self, client: ClientId, server: NodeId) -> Option<u32> {
        let mut hops = 1u32;
        let mut current = self.parent_of_client(client);
        loop {
            if current == server {
                return Some(hops);
            }
            match self.parent_of_node(current) {
                Some(p) => {
                    current = p;
                    hops += 1;
                }
                None => return None,
            }
        }
    }

    /// The links on the path from a client up to (and including the link
    /// into) `server`. Returns `None` if `server` is not an ancestor of
    /// the client.
    pub fn client_path_links(&self, client: ClientId, server: NodeId) -> Option<Vec<LinkId>> {
        let mut links = vec![LinkId::Client(client)];
        let mut current = self.parent_of_client(client);
        loop {
            if current == server {
                return Some(links);
            }
            match self.parent_of_node(current) {
                Some(p) => {
                    links.push(LinkId::Node(current));
                    current = p;
                }
                None => return None,
            }
        }
    }

    /// All links on the path from a client up to the root.
    pub fn client_path_to_root(&self, client: ClientId) -> Vec<LinkId> {
        self.client_path_links(client, self.root())
            .expect("the root is an ancestor of every client")
    }

    /// Depth of an internal node (the root has depth 0).
    pub fn node_depth(&self, node: NodeId) -> u32 {
        self.ancestors_of_node(node).len() as u32
    }

    /// Depth of a client (its parent's depth plus one).
    pub fn client_depth(&self, client: ClientId) -> u32 {
        self.node_depth(self.parent_of_client(client)) + 1
    }

    /// Breadth-first order over internal nodes, starting at the root.
    ///
    /// This is the traversal used by the Closest top-down heuristics
    /// (CTDA / CTDLF) in Section 6.1.
    pub fn bfs_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.num_nodes());
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.root());
        while let Some(n) = queue.pop_front() {
            out.push(n);
            for &child in self.child_nodes(n) {
                queue.push_back(child);
            }
        }
        out
    }

    /// Depth-first preorder over internal nodes, starting at the root.
    pub fn dfs_preorder_nodes(&self) -> Vec<NodeId> {
        self.subtree_nodes(self.root())
    }

    /// Post-order over internal nodes (children before parents). This is
    /// the natural order for the bottom-up passes of the optimal
    /// Multiple/homogeneous algorithm and the CBU / MBU heuristics.
    pub fn postorder_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.num_nodes());
        // Iterative post-order: push (node, visited_children_flag).
        let mut stack = vec![(self.root(), false)];
        while let Some((n, expanded)) = stack.pop() {
            if expanded {
                out.push(n);
            } else {
                stack.push((n, true));
                for &child in self.child_nodes(n).iter().rev() {
                    stack.push((child, false));
                }
            }
        }
        out
    }

    /// Depth of the tree counted in node levels: the maximum client depth.
    /// A root with only client children has depth 1.
    pub fn depth(&self) -> u32 {
        self.client_ids()
            .map(|c| self.client_depth(c))
            .max()
            .unwrap_or(0)
    }

    /// Lowest common ancestor of two internal nodes.
    pub fn lowest_common_ancestor(&self, a: NodeId, b: NodeId) -> NodeId {
        let ancestors_a: std::collections::HashSet<NodeId> =
            self.self_and_ancestors(a).into_iter().collect();
        let mut current = b;
        loop {
            if ancestors_a.contains(&current) {
                return current;
            }
            current = self
                .parent_of_node(current)
                .expect("the root is a common ancestor of every pair of nodes");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    /// Builds the example tree of Figure 6 in the paper (topology only):
    ///
    /// ```text
    ///            n1
    ///        /    |    \
    ///      n2    n3     n4
    ///     /  \    |    / | \
    ///   c(2) c(2) n5 n6 n9 c(1)
    ///              |  /\   | \
    ///             ... (clients and deeper nodes)
    /// ```
    ///
    /// For traversal tests we only need a moderately bushy shape, so we
    /// reproduce the upper part: root with three internal children, one
    /// of which has a deeper chain.
    fn figure6_like() -> (TreeNetwork, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let n1 = b.add_root();
        let n2 = b.add_node(n1);
        let n3 = b.add_node(n1);
        let n4 = b.add_node(n1);
        let n5 = b.add_node(n3);
        let n6 = b.add_node(n4);
        let c0 = b.add_client(n2);
        let c1 = b.add_client(n2);
        let c2 = b.add_client(n5);
        let c3 = b.add_client(n6);
        let c4 = b.add_client(n4);
        let tree = b.build().unwrap();
        (tree, vec![n1, n2, n3, n4, n5, n6], vec![c0, c1, c2, c3, c4])
    }

    #[test]
    fn ancestors_exclude_self_and_end_at_root() {
        let (t, n, _) = figure6_like();
        assert_eq!(t.ancestors_of_node(n[0]), vec![]);
        assert_eq!(t.ancestors_of_node(n[4]), vec![n[2], n[0]]);
        assert_eq!(t.self_and_ancestors(n[4]), vec![n[4], n[2], n[0]]);
    }

    #[test]
    fn client_ancestors_are_candidate_servers() {
        let (t, n, c) = figure6_like();
        assert_eq!(t.ancestors_of_client(c[2]), vec![n[4], n[2], n[0]]);
        assert_eq!(t.ancestors_of_client(c[4]), vec![n[3], n[0]]);
        assert!(t.is_on_client_path(c[2], n[0]));
        assert!(t.is_on_client_path(c[2], n[4]));
        assert!(!t.is_on_client_path(c[2], n[1]));
    }

    #[test]
    fn subtree_collection() {
        let (t, n, c) = figure6_like();
        let sub = t.subtree_nodes(n[3]);
        assert_eq!(sub, vec![n[3], n[5]]);
        let sub_clients = t.subtree_clients(n[3]);
        assert_eq!(sub_clients.len(), 2);
        assert!(sub_clients.contains(&c[3]));
        assert!(sub_clients.contains(&c[4]));
        // The whole tree.
        assert_eq!(t.subtree_nodes(t.root()).len(), t.num_nodes());
        assert_eq!(t.subtree_clients(t.root()).len(), t.num_clients());
    }

    #[test]
    fn distances_and_paths() {
        let (t, n, c) = figure6_like();
        assert_eq!(t.client_distance(c[2], n[4]), Some(1));
        assert_eq!(t.client_distance(c[2], n[2]), Some(2));
        assert_eq!(t.client_distance(c[2], n[0]), Some(3));
        assert_eq!(t.client_distance(c[2], n[1]), None);

        let path = t.client_path_links(c[2], n[0]).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], LinkId::Client(c[2]));
        assert_eq!(path[1], LinkId::Node(n[4]));
        assert_eq!(path[2], LinkId::Node(n[2]));
        assert_eq!(t.client_path_to_root(c[2]), path);
        assert!(t.client_path_links(c[2], n[1]).is_none());
    }

    #[test]
    fn depths() {
        let (t, n, c) = figure6_like();
        assert_eq!(t.node_depth(n[0]), 0);
        assert_eq!(t.node_depth(n[4]), 2);
        assert_eq!(t.client_depth(c[0]), 2);
        assert_eq!(t.client_depth(c[2]), 3);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn traversal_orders_cover_all_nodes_once() {
        let (t, _, _) = figure6_like();
        for order in [t.bfs_nodes(), t.dfs_preorder_nodes(), t.postorder_nodes()] {
            assert_eq!(order.len(), t.num_nodes());
            let unique: std::collections::HashSet<_> = order.iter().collect();
            assert_eq!(unique.len(), t.num_nodes());
        }
    }

    #[test]
    fn bfs_is_level_order_and_postorder_ends_at_root() {
        let (t, n, _) = figure6_like();
        let bfs = t.bfs_nodes();
        assert_eq!(bfs[0], n[0]);
        assert_eq!(&bfs[1..4], &[n[1], n[2], n[3]]);
        let post = t.postorder_nodes();
        assert_eq!(*post.last().unwrap(), n[0]);
        // Children appear before their parents in post-order.
        let pos = |x: NodeId| post.iter().position(|&y| y == x).unwrap();
        assert!(pos(n[4]) < pos(n[2]));
        assert!(pos(n[5]) < pos(n[3]));
    }

    #[test]
    fn lowest_common_ancestor_works() {
        let (t, n, _) = figure6_like();
        assert_eq!(t.lowest_common_ancestor(n[4], n[5]), n[0]);
        assert_eq!(t.lowest_common_ancestor(n[4], n[2]), n[2]);
        assert_eq!(t.lowest_common_ancestor(n[2], n[4]), n[2]);
        assert_eq!(t.lowest_common_ancestor(n[3], n[3]), n[3]);
    }

    #[test]
    fn deep_chain_traversal_is_iterative_not_recursive() {
        // A 50_000-deep chain would overflow the stack with a recursive
        // implementation; the iterative one must handle it.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let deep = b.add_node_chain(root, 50_000);
        b.add_client(deep);
        let t = b.build().unwrap();
        assert_eq!(t.postorder_nodes().len(), 50_001);
        assert_eq!(t.subtree_nodes(t.root()).len(), 50_001);
        assert_eq!(t.node_depth(deep), 50_000);
    }
}
