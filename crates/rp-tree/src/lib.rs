//! # rp-tree — distribution-tree substrate
//!
//! Immutable tree networks for the replica-placement problem studied in
//! *"Strategies for Replica Placement in Tree Networks"* (Benoit, Rehn,
//! Robert; IPPS 2007). A tree is made of **internal nodes** (the
//! candidate replica locations, set `N`) and **client leaves** (the
//! request sources, set `C`); every vertex except the root has exactly
//! one link towards its parent.
//!
//! This crate is purely structural: request counts, server capacities,
//! storage costs, QoS bounds and link bandwidths live in `rp-core`'s
//! problem instances and are keyed by the typed ids defined here.
//!
//! ## Performance model
//!
//! Trees are immutable arenas, so all traversal-shaped queries are
//! precomputed at build time and served without allocating:
//!
//! * per-node **depth**, **preorder position** and **subtree size**
//!   arrays make [`TreeNetwork::node_depth`],
//!   [`TreeNetwork::client_depth`], [`TreeNetwork::client_distance`] and
//!   [`TreeNetwork::node_is_ancestor_or_self`] O(1);
//! * [`TreeNetwork::subtree_nodes`] / [`TreeNetwork::subtree_clients`]
//!   return **slices** of preorder-sorted arenas (a subtree is always
//!   one contiguous interval);
//! * [`TreeNetwork::dfs_preorder_nodes`],
//!   [`TreeNetwork::postorder_nodes`] and [`TreeNetwork::bfs_nodes`]
//!   return precomputed order slices;
//! * ancestor and path walks ([`TreeNetwork::ancestors_of_node`],
//!   [`TreeNetwork::ancestors_of_client`],
//!   [`TreeNetwork::self_and_ancestors`],
//!   [`TreeNetwork::client_path_links`]) are lazy, exact-size iterators;
//!   `*_vec` variants exist where a collected `Vec` is genuinely wanted.
//!
//! The extra build-time cost is three linear passes; the payoff is that
//! the solver inner loops in `rp-core` run allocation-free (verified by
//! `rp-bench`'s micro-benchmarks and `BENCH_baseline.json`).
//!
//! ```
//! use rp_tree::{TreeBuilder, TreeStats};
//!
//! // root -- n1 -- {c0, c1}
//! //     \-- c2
//! let mut b = TreeBuilder::new();
//! let root = b.add_root();
//! let n1 = b.add_node(root);
//! b.add_clients(n1, 2);
//! b.add_client(root);
//! let tree = b.build().unwrap();
//!
//! assert_eq!(tree.problem_size(), 5);
//! let first_client = tree.client_ids().next().unwrap();
//! // Ancestor walks are lazy, allocation-free iterators.
//! assert!(tree.ancestors_of_client(first_client).eq([n1, root]));
//! println!("{}", TreeStats::compute(&tree));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Predates the workspace ban on panicking accessors (see clippy.toml);
// new long-lived code (rp-online, rp-obs) enforces it.
#![allow(clippy::disallowed_methods)]

mod error;
mod ids;
mod tree;

pub mod dot;
pub mod stats;
pub mod text;
mod traverse;
mod validate;

pub use error::TreeError;
pub use ids::{ClientId, ClientMap, LinkId, LinkMap, NodeId, NodeMap};
pub use stats::TreeStats;
pub use traverse::{Ancestors, PathLinks};
pub use tree::{ClientHandle, NodeHandle, TreeBuilder, TreeNetwork};
pub use validate::validate;
