//! # rp-tree — distribution-tree substrate
//!
//! Immutable tree networks for the replica-placement problem studied in
//! *"Strategies for Replica Placement in Tree Networks"* (Benoit, Rehn,
//! Robert; IPPS 2007). A tree is made of **internal nodes** (the
//! candidate replica locations, set `N`) and **client leaves** (the
//! request sources, set `C`); every vertex except the root has exactly
//! one link towards its parent.
//!
//! This crate is purely structural: request counts, server capacities,
//! storage costs, QoS bounds and link bandwidths live in `rp-core`'s
//! problem instances and are keyed by the typed ids defined here.
//!
//! ```
//! use rp_tree::{TreeBuilder, TreeStats};
//!
//! // root -- n1 -- {c0, c1}
//! //     \-- c2
//! let mut b = TreeBuilder::new();
//! let root = b.add_root();
//! let n1 = b.add_node(root);
//! b.add_clients(n1, 2);
//! b.add_client(root);
//! let tree = b.build().unwrap();
//!
//! assert_eq!(tree.problem_size(), 5);
//! assert_eq!(tree.ancestors_of_client(tree.client_ids().next().unwrap()),
//!            vec![n1, root]);
//! println!("{}", TreeStats::compute(&tree));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod ids;
mod tree;

pub mod dot;
pub mod stats;
pub mod text;
mod traverse;
mod validate;

pub use error::TreeError;
pub use ids::{ClientId, ClientMap, LinkId, NodeId, NodeMap};
pub use stats::TreeStats;
pub use tree::{ClientHandle, NodeHandle, TreeBuilder, TreeNetwork};
pub use validate::validate;
