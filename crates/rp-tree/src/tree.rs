//! The distribution tree itself: an arena of internal nodes and client
//! leaves, built once through [`TreeBuilder`] and then immutable.
//!
//! The topology follows the paper's framework (Section 2.1): clients are
//! the leaves of the tree, internal nodes are the candidate replica
//! locations, and every vertex other than the root has exactly one link
//! to its parent. Attributes such as request counts, server capacities or
//! link bandwidths are *not* stored here — they belong to the problem
//! instance (`rp-core`), keyed by the typed ids defined in this crate.

use crate::error::TreeError;
use crate::ids::{ClientId, LinkId, NodeId};

/// Internal-node record inside the arena.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct NodeData {
    /// Parent node, or `None` for the root.
    pub(crate) parent: Option<NodeId>,
    /// Child internal nodes, in insertion order.
    pub(crate) child_nodes: Vec<NodeId>,
    /// Child clients, in insertion order.
    pub(crate) child_clients: Vec<ClientId>,
    /// Optional human-readable label (used by DOT / text export).
    pub(crate) label: Option<String>,
}

/// Client (leaf) record inside the arena.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct ClientData {
    /// The internal node this client hangs from.
    pub(crate) parent: NodeId,
    /// Optional human-readable label.
    pub(crate) label: Option<String>,
}

/// An immutable distribution tree: internal nodes `N` and client leaves `C`.
///
/// Construct one with [`TreeBuilder`]; the builder checks the structural
/// invariants (single root, acyclic parent pointers, every node reachable
/// from the root) before handing out a `TreeNetwork`.
///
/// # Performance model
///
/// Because the tree is immutable, every traversal-shaped quantity is
/// precomputed once at build time and answered from dense arrays:
///
/// * node depths (O(1) [`node_depth`](Self::node_depth) /
///   [`client_depth`](Self::client_depth));
/// * preorder positions and subtree sizes, which make
///   [`node_is_ancestor_or_self`](Self::node_is_ancestor_or_self) an O(1)
///   interval check and [`subtree_nodes`](Self::subtree_nodes) /
///   [`subtree_clients`](Self::subtree_clients) zero-allocation slices of
///   a preorder-sorted arena;
/// * the preorder / postorder / breadth-first node sequences themselves.
///
/// Ancestor walks ([`ancestors_of_node`](Self::ancestors_of_node) and
/// friends) are lazy iterators over the parent pointers, so none of the
/// solver inner loops allocate while traversing the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeNetwork {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) clients: Vec<ClientData>,
    pub(crate) root: NodeId,

    // ---- Derived data, computed once by `finalize` after validation.
    // All of it is a pure function of the fields above, so the derived
    // `PartialEq` stays consistent.
    /// Depth of every internal node (root = 0).
    pub(crate) depth: Vec<u32>,
    /// Preorder position of every node: `preorder[tin[n]] == n`.
    pub(crate) tin: Vec<u32>,
    /// Number of internal nodes in every node's subtree (self included).
    /// `subtree(n)` occupies `preorder[tin[n] .. tin[n] + subtree_size[n]]`.
    pub(crate) subtree_size: Vec<u32>,
    /// Depth-first preorder over internal nodes.
    pub(crate) preorder: Vec<NodeId>,
    /// Post-order over internal nodes (children before parents).
    pub(crate) postorder: Vec<NodeId>,
    /// Breadth-first (level) order over internal nodes.
    pub(crate) bfs: Vec<NodeId>,
    /// All clients, sorted by the preorder position of their parent
    /// (stable within a parent), so every subtree's clients form one
    /// contiguous slice.
    pub(crate) clients_preorder: Vec<ClientId>,
    /// Prefix offsets into `clients_preorder`, indexed by preorder
    /// position (length `num_nodes + 1`): the clients of `subtree(n)` are
    /// `clients_preorder[client_offset[tin[n]] .. client_offset[tin[n] + subtree_size[n]]]`.
    pub(crate) client_offset: Vec<u32>,
    /// Inverse of `clients_preorder`: position of every client in the
    /// preorder-grouped arena (its deterministic subtree-walk rank).
    pub(crate) client_rank: Vec<u32>,
}

impl TreeNetwork {
    /// Number of internal nodes `|N|`.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of clients `|C|`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Problem size `s = |C| + |N|` as used throughout the paper.
    pub fn problem_size(&self) -> usize {
        self.num_nodes() + self.num_clients()
    }

    /// The root of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Returns `true` if `node` is the root.
    pub fn is_root(&self, node: NodeId) -> bool {
        node == self.root
    }

    /// Parent of an internal node (`None` for the root).
    pub fn parent_of_node(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Parent node of a client.
    pub fn parent_of_client(&self, client: ClientId) -> NodeId {
        self.clients[client.index()].parent
    }

    /// Child internal nodes of `node`, in insertion order.
    pub fn child_nodes(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].child_nodes
    }

    /// Child clients of `node`, in insertion order.
    pub fn child_clients(&self, node: NodeId) -> &[ClientId] {
        &self.nodes[node.index()].child_clients
    }

    /// Returns `true` if `node` has neither child nodes nor child clients.
    ///
    /// Such nodes are legal (they simply can never usefully host a
    /// replica) but unusual; the paper's instances never contain them.
    pub fn is_childless(&self, node: NodeId) -> bool {
        self.nodes[node.index()].child_nodes.is_empty()
            && self.nodes[node.index()].child_clients.is_empty()
    }

    /// Returns `true` if all children of `node` are clients (it sits at
    /// the "bottom" of the internal tree). Used by the bottom-up
    /// heuristics of the paper.
    pub fn is_bottom_node(&self, node: NodeId) -> bool {
        self.nodes[node.index()].child_nodes.is_empty()
            && !self.nodes[node.index()].child_clients.is_empty()
    }

    /// Iterator over all node ids, in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterator over all client ids, in index order.
    pub fn client_ids(&self) -> impl Iterator<Item = ClientId> + '_ {
        (0..self.clients.len()).map(ClientId::from_index)
    }

    /// Iterator over every link of the tree (client links then node links).
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        let client_links = self.client_ids().map(LinkId::Client);
        let node_links = self
            .node_ids()
            .filter(move |&n| !self.is_root(n))
            .map(LinkId::Node);
        client_links.chain(node_links)
    }

    /// Number of links in the tree: one per client plus one per non-root node.
    pub fn num_links(&self) -> usize {
        self.num_clients() + self.num_nodes() - 1
    }

    /// Upper endpoint (the parent side) of a link.
    pub fn link_upper(&self, link: LinkId) -> NodeId {
        match link {
            LinkId::Client(c) => self.parent_of_client(c),
            LinkId::Node(n) => self
                .parent_of_node(n)
                .expect("root has no upwards link; LinkId::Node(root) is invalid"),
        }
    }

    /// Optional label attached to a node at build time.
    pub fn node_label(&self, node: NodeId) -> Option<&str> {
        self.nodes[node.index()].label.as_deref()
    }

    /// Optional label attached to a client at build time.
    pub fn client_label(&self, client: ClientId) -> Option<&str> {
        self.clients[client.index()].label.as_deref()
    }
}

/// Handle returned by [`TreeBuilder::add_node`]; convertible to [`NodeId`]
/// once the tree is built (the indices are identical).
pub type NodeHandle = NodeId;
/// Handle returned by [`TreeBuilder::add_client`].
pub type ClientHandle = ClientId;

/// Incremental builder for [`TreeNetwork`].
///
/// # Example
///
/// ```
/// use rp_tree::TreeBuilder;
///
/// let mut b = TreeBuilder::new();
/// let root = b.add_root();
/// let child = b.add_node(root);
/// let _leaf = b.add_client(child);
/// let tree = b.build().unwrap();
/// assert_eq!(tree.num_nodes(), 2);
/// assert_eq!(tree.num_clients(), 1);
/// assert_eq!(tree.root(), root);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TreeBuilder {
    nodes: Vec<NodeData>,
    clients: Vec<ClientData>,
    root: Option<NodeId>,
    duplicate_root: Option<(NodeId, NodeId)>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TreeBuilder::default()
    }

    /// Creates a builder with capacity reserved for `nodes` internal nodes
    /// and `clients` leaves.
    pub fn with_capacity(nodes: usize, clients: usize) -> Self {
        TreeBuilder {
            nodes: Vec::with_capacity(nodes),
            clients: Vec::with_capacity(clients),
            root: None,
            duplicate_root: None,
        }
    }

    /// Adds the root node. Calling this twice records a `MultipleRoots`
    /// error that will be reported by [`build`](TreeBuilder::build).
    pub fn add_root(&mut self) -> NodeHandle {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            parent: None,
            child_nodes: Vec::new(),
            child_clients: Vec::new(),
            label: None,
        });
        match self.root {
            None => self.root = Some(id),
            Some(first) => {
                if self.duplicate_root.is_none() {
                    self.duplicate_root = Some((first, id));
                }
            }
        }
        id
    }

    /// Adds an internal node under `parent`.
    pub fn add_node(&mut self, parent: NodeHandle) -> NodeHandle {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            parent: Some(parent),
            child_nodes: Vec::new(),
            child_clients: Vec::new(),
            label: None,
        });
        // An out-of-range parent is tolerated here and reported by build().
        if let Some(p) = self.nodes.get_mut(parent.index()) {
            p.child_nodes.push(id);
        }
        id
    }

    /// Adds a chain of `length` internal nodes below `parent`, returning
    /// the deepest one. A convenience used by several paper constructions
    /// (e.g. the 3-PARTITION reduction of Figure 7).
    pub fn add_node_chain(&mut self, parent: NodeHandle, length: usize) -> NodeHandle {
        let mut current = parent;
        for _ in 0..length {
            current = self.add_node(current);
        }
        current
    }

    /// Adds a client leaf under `parent`.
    pub fn add_client(&mut self, parent: NodeHandle) -> ClientHandle {
        let id = ClientId::from_index(self.clients.len());
        self.clients.push(ClientData {
            parent,
            label: None,
        });
        if let Some(p) = self.nodes.get_mut(parent.index()) {
            p.child_clients.push(id);
        }
        id
    }

    /// Adds `count` client leaves under `parent`, returning their ids.
    pub fn add_clients(&mut self, parent: NodeHandle, count: usize) -> Vec<ClientHandle> {
        (0..count).map(|_| self.add_client(parent)).collect()
    }

    /// Attaches a human-readable label to a node.
    pub fn set_node_label(&mut self, node: NodeHandle, label: impl Into<String>) {
        if let Some(n) = self.nodes.get_mut(node.index()) {
            n.label = Some(label.into());
        }
    }

    /// Attaches a human-readable label to a client.
    pub fn set_client_label(&mut self, client: ClientHandle, label: impl Into<String>) {
        if let Some(c) = self.clients.get_mut(client.index()) {
            c.label = Some(label.into());
        }
    }

    /// Number of internal nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of clients added so far.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Finalises the tree, checking all structural invariants.
    pub fn build(self) -> Result<TreeNetwork, TreeError> {
        self.finish(DerivedBuffers::default())
    }

    /// Finalises the tree like [`build`](TreeBuilder::build), recycling
    /// the **derived arrays** (depths, preorder/postorder/BFS sequences,
    /// subtree intervals, the client arenas) of a previous
    /// [`TreeNetwork`]. Sweeps that generate one tree per trial use this
    /// to keep tree construction allocation-light: every derived buffer
    /// keeps its capacity and only grows on the first encounter with a
    /// larger tree.
    pub fn build_into(self, recycled: TreeNetwork) -> Result<TreeNetwork, TreeError> {
        self.finish(DerivedBuffers::from(recycled))
    }

    fn finish(self, derived: DerivedBuffers) -> Result<TreeNetwork, TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::EmptyTree);
        }
        if let Some((first, second)) = self.duplicate_root {
            return Err(TreeError::MultipleRoots { first, second });
        }
        let root = self.root.ok_or(TreeError::NoRoot)?;

        // Parent references must exist.
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Some(parent) = node.parent {
                if parent.index() >= self.nodes.len() {
                    return Err(TreeError::UnknownParent {
                        index: parent.index(),
                    });
                }
                if parent.index() == idx {
                    return Err(TreeError::CycleDetected {
                        node: NodeId::from_index(idx),
                    });
                }
            }
        }
        for (idx, client) in self.clients.iter().enumerate() {
            if client.parent.index() >= self.nodes.len() {
                return Err(TreeError::UnknownClientParent {
                    client: ClientId::from_index(idx),
                    index: client.parent.index(),
                });
            }
        }

        let DerivedBuffers {
            depth,
            tin,
            subtree_size,
            preorder,
            postorder,
            bfs,
            clients_preorder,
            client_offset,
            client_rank,
        } = derived;
        let mut tree = TreeNetwork {
            nodes: self.nodes,
            clients: self.clients,
            root,
            depth,
            tin,
            subtree_size,
            preorder,
            postorder,
            bfs,
            clients_preorder,
            client_offset,
            client_rank,
        };
        // Validation must come first: `finalize` assumes an acyclic,
        // fully reachable structure.
        crate::validate::validate(&tree)?;
        tree.finalize();
        Ok(tree)
    }
}

/// The derived arrays of a [`TreeNetwork`], detached for recycling by
/// [`TreeBuilder::build_into`]. Contents are irrelevant — `finalize`
/// overwrites everything — only the capacities matter.
#[derive(Default)]
struct DerivedBuffers {
    depth: Vec<u32>,
    tin: Vec<u32>,
    subtree_size: Vec<u32>,
    preorder: Vec<NodeId>,
    postorder: Vec<NodeId>,
    bfs: Vec<NodeId>,
    clients_preorder: Vec<ClientId>,
    client_offset: Vec<u32>,
    client_rank: Vec<u32>,
}

impl From<TreeNetwork> for DerivedBuffers {
    fn from(tree: TreeNetwork) -> Self {
        DerivedBuffers {
            depth: tree.depth,
            tin: tree.tin,
            subtree_size: tree.subtree_size,
            preorder: tree.preorder,
            postorder: tree.postorder,
            bfs: tree.bfs,
            clients_preorder: tree.clients_preorder,
            client_offset: tree.client_offset,
            client_rank: tree.client_rank,
        }
    }
}

impl TreeNetwork {
    /// Computes the derived traversal data. Called exactly once per
    /// build, after structural validation. Every derived array is
    /// cleared and refilled in place, so a recycled tree
    /// ([`TreeBuilder::build_into`]) recomputes everything without
    /// reallocating.
    fn finalize(&mut self) {
        let n = self.nodes.len();
        let root = self.root;

        // Preorder, depths and preorder positions in one iterative pass.
        // `bfs` doubles as the DFS stack — it is rebuilt from scratch
        // below anyway, and borrowing it avoids a per-build allocation.
        self.depth.clear();
        self.depth.resize(n, 0);
        self.tin.clear();
        self.tin.resize(n, 0);
        self.preorder.clear();
        self.preorder.reserve(n);
        let mut stack = std::mem::take(&mut self.bfs);
        stack.clear();
        stack.push(root);
        while let Some(node) = stack.pop() {
            self.tin[node.index()] = self.preorder.len() as u32;
            self.preorder.push(node);
            for &child in self.nodes[node.index()].child_nodes.iter().rev() {
                self.depth[child.index()] = self.depth[node.index()] + 1;
                stack.push(child);
            }
        }
        debug_assert_eq!(self.preorder.len(), n);

        // Subtree sizes: in reverse preorder every child is seen before
        // its parent, so one accumulation pass suffices.
        self.subtree_size.clear();
        self.subtree_size.resize(n, 1);
        for &node in self.preorder.iter().rev() {
            if let Some(parent) = self.nodes[node.index()].parent {
                self.subtree_size[parent.index()] += self.subtree_size[node.index()];
            }
        }

        // Post-order (children before parents): descend along the
        // preorder, emit on the way back — equivalently, reverse
        // preorder with children visited first-to-last gives reverse
        // postorder; reuse the borrowed stack for the two-flag walk via
        // an explicit revisit marker encoded as a second push.
        self.postorder.clear();
        self.postorder.reserve(n);
        stack.clear();
        stack.push(root);
        // Reverse-postorder trick: preorder with children pushed in
        // *forward* order yields, when reversed, a valid postorder.
        while let Some(node) = stack.pop() {
            self.postorder.push(node);
            for &child in self.nodes[node.index()].child_nodes.iter() {
                stack.push(child);
            }
        }
        self.postorder.reverse();

        // Breadth-first order, reclaiming the stack buffer as the queue
        // storage (index-based scan: the vector itself is the queue).
        self.bfs = stack;
        self.bfs.clear();
        self.bfs.push(root);
        let mut head = 0usize;
        while head < self.bfs.len() {
            let node = self.bfs[head];
            head += 1;
            for &child in &self.nodes[node.index()].child_nodes {
                self.bfs.push(child);
            }
        }

        // Clients grouped by the preorder position of their parent, via a
        // stable counting sort, plus prefix offsets per preorder slot.
        let c = self.clients.len();
        self.client_offset.clear();
        self.client_offset.resize(n + 1, 0);
        for client in &self.clients {
            self.client_offset[self.tin[client.parent.index()] as usize + 1] += 1;
        }
        for i in 0..n {
            self.client_offset[i + 1] += self.client_offset[i];
        }
        self.clients_preorder.clear();
        self.clients_preorder.resize(c, ClientId::from_index(0));
        self.client_rank.clear();
        self.client_rank.resize(c, 0);
        // `client_offset[t]` doubles as the live fill cursor of bucket
        // `t`; afterwards each slot holds its bucket's *end*, which is
        // the next bucket's start, so one shift restores the offsets —
        // no scratch cursor array, no per-build allocation.
        for (idx, client) in self.clients.iter().enumerate() {
            let slot = &mut self.client_offset[self.tin[client.parent.index()] as usize];
            self.clients_preorder[*slot as usize] = ClientId::from_index(idx);
            self.client_rank[idx] = *slot;
            *slot += 1;
        }
        for t in (1..=n).rev() {
            self.client_offset[t] = self.client_offset[t - 1];
        }
        self.client_offset[0] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> TreeNetwork {
        // root -> {a, b}; a -> {c0}; b -> {c1, c2}
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let bb = b.add_node(root);
        b.add_client(a);
        b.add_client(bb);
        b.add_client(bb);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_problem_size() {
        let t = small_tree();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_clients(), 3);
        assert_eq!(t.problem_size(), 6);
        assert_eq!(t.num_links(), 5);
    }

    #[test]
    fn parent_child_relationships() {
        let t = small_tree();
        let root = t.root();
        assert!(t.is_root(root));
        assert_eq!(t.parent_of_node(root), None);
        let a = NodeId::from_index(1);
        let bb = NodeId::from_index(2);
        assert_eq!(t.parent_of_node(a), Some(root));
        assert_eq!(t.parent_of_node(bb), Some(root));
        assert_eq!(t.child_nodes(root), &[a, bb]);
        assert_eq!(t.child_clients(root), &[] as &[ClientId]);
        assert_eq!(t.child_clients(a).len(), 1);
        assert_eq!(t.child_clients(bb).len(), 2);
        assert_eq!(t.parent_of_client(ClientId::from_index(0)), a);
        assert_eq!(t.parent_of_client(ClientId::from_index(2)), bb);
    }

    #[test]
    fn bottom_node_detection() {
        let t = small_tree();
        assert!(!t.is_bottom_node(t.root()));
        assert!(t.is_bottom_node(NodeId::from_index(1)));
        assert!(t.is_bottom_node(NodeId::from_index(2)));
        assert!(!t.is_childless(t.root()));
    }

    #[test]
    fn link_enumeration_and_upper_endpoints() {
        let t = small_tree();
        let links: Vec<LinkId> = t.link_ids().collect();
        assert_eq!(links.len(), t.num_links());
        // Client links point at their parents.
        assert_eq!(
            t.link_upper(LinkId::Client(ClientId::from_index(0))),
            NodeId::from_index(1)
        );
        // Node links point at the node's parent.
        assert_eq!(t.link_upper(LinkId::Node(NodeId::from_index(1))), t.root());
        // The root appears in no link lower endpoint.
        assert!(links.iter().all(|l| l.as_node() != Some(t.root())));
    }

    #[test]
    #[should_panic(expected = "root has no upwards link")]
    fn link_upper_of_root_panics() {
        let t = small_tree();
        let _ = t.link_upper(LinkId::Node(t.root()));
    }

    #[test]
    fn empty_builder_is_rejected() {
        assert_eq!(
            TreeBuilder::new().build().unwrap_err(),
            TreeError::EmptyTree
        );
    }

    #[test]
    fn missing_root_is_rejected() {
        // Simulate a malformed build: create a node whose parent is itself
        // by using add_node with a forward reference. The public API makes
        // this hard, so we test the two reachable failure modes: multiple
        // roots and duplicate roots.
        let mut b = TreeBuilder::new();
        b.add_root();
        b.add_root();
        match b.build() {
            Err(TreeError::MultipleRoots { .. }) => {}
            other => panic!("expected MultipleRoots, got {other:?}"),
        }
    }

    #[test]
    fn labels_round_trip() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let c = b.add_client(root);
        b.set_node_label(root, "root");
        b.set_client_label(c, "leaf");
        let t = b.build().unwrap();
        assert_eq!(t.node_label(root), Some("root"));
        assert_eq!(t.client_label(c), Some("leaf"));
        assert_eq!(t.node_label(NodeId::from_index(0)), Some("root"));
    }

    #[test]
    fn build_into_recycles_without_changing_the_result() {
        // Build a tree, recycle it into a *different* shape, and check
        // the recycled build equals a fresh build of the same shape.
        let make_wide = || {
            let mut b = TreeBuilder::new();
            let root = b.add_root();
            for _ in 0..4 {
                let mid = b.add_node(root);
                b.add_client(mid);
            }
            b
        };
        let make_deep = || {
            let mut b = TreeBuilder::new();
            let root = b.add_root();
            let deep = b.add_node_chain(root, 6);
            b.add_clients(deep, 3);
            b.add_client(root);
            b
        };
        let first = make_wide().build().unwrap();
        let recycled_deep = make_deep().build_into(first).unwrap();
        assert_eq!(recycled_deep, make_deep().build().unwrap());
        // And recycle back into the wide shape (shrinking arrays).
        let recycled_wide = make_wide().build_into(recycled_deep).unwrap();
        assert_eq!(recycled_wide, make_wide().build().unwrap());
    }

    #[test]
    fn build_into_still_validates() {
        let mut bad = TreeBuilder::new();
        bad.add_root();
        bad.add_root();
        let spare = {
            let mut b = TreeBuilder::new();
            let root = b.add_root();
            b.add_client(root);
            b.build().unwrap()
        };
        assert!(matches!(
            bad.build_into(spare),
            Err(TreeError::MultipleRoots { .. })
        ));
    }

    #[test]
    fn chains_and_bulk_clients() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let deep = b.add_node_chain(root, 4);
        let clients = b.add_clients(deep, 3);
        assert_eq!(clients.len(), 3);
        let t = b.build().unwrap();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_clients(), 3);
        assert_eq!(t.child_clients(deep).len(), 3);
        // The chain is a path root -> ... -> deep.
        let mut cur = deep;
        let mut hops = 0;
        while let Some(p) = t.parent_of_node(cur) {
            cur = p;
            hops += 1;
        }
        assert_eq!(hops, 4);
    }
}
