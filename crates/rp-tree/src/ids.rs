//! Typed identifiers for the entities of a distribution tree.
//!
//! The paper distinguishes two kinds of vertices: *clients* (the leaves
//! of the tree, set `C`) and *internal nodes* (set `N`, the candidate
//! replica locations). Links are identified by their lower endpoint:
//! every vertex other than the root has exactly one link to its parent,
//! so a link can be named unambiguously by the child vertex it starts
//! from.
//!
//! All identifiers are thin wrappers around a dense `usize` index so
//! that attribute tables can be plain `Vec`s.

use std::fmt;

/// Identifier of a client (a leaf of the distribution tree).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub(crate) u32);

/// Identifier of an internal node (a candidate replica location).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a tree link, named by its *lower* endpoint (the child
/// side). `LinkId::Client(c)` is the link `c -> parent(c)`,
/// `LinkId::Node(n)` is the link `n -> parent(n)`; the root has no link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LinkId {
    /// Link from a client leaf up to its parent node.
    Client(ClientId),
    /// Link from a non-root internal node up to its parent node.
    Node(NodeId),
}

impl ClientId {
    /// Creates a client id from a raw dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ClientId(index as u32)
    }

    /// Returns the dense index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// Creates a node id from a raw dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Returns `true` if the lower endpoint of this link is a client.
    #[inline]
    pub fn is_client_link(self) -> bool {
        matches!(self, LinkId::Client(_))
    }

    /// Returns the client at the lower endpoint, if any.
    #[inline]
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            LinkId::Client(c) => Some(c),
            LinkId::Node(_) => None,
        }
    }

    /// Returns the node at the lower endpoint, if any.
    #[inline]
    pub fn as_node(self) -> Option<NodeId> {
        match self {
            LinkId::Node(n) => Some(n),
            LinkId::Client(_) => None,
        }
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkId::Client(c) => write!(f, "link[{c}]"),
            LinkId::Node(n) => write!(f, "link[{n}]"),
        }
    }
}

/// A dense map from [`ClientId`] to values of type `T`.
///
/// This is a thin wrapper over `Vec<T>` that only allows indexing by the
/// typed id, preventing accidental mix-ups between client and node
/// indices in algorithm code.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ClientMap<T> {
    values: Vec<T>,
}

/// A dense map from [`NodeId`] to values of type `T`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NodeMap<T> {
    values: Vec<T>,
}

impl<T> ClientMap<T> {
    /// Builds a map with `len` entries, all initialised to `value`.
    pub fn filled(len: usize, value: T) -> Self
    where
        T: Clone,
    {
        ClientMap {
            values: vec![value; len],
        }
    }

    /// Builds a map from a plain vector whose positions follow client indices.
    pub fn from_vec(values: Vec<T>) -> Self {
        ClientMap { values }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(ClientId, &T)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (ClientId, &T)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ClientId::from_index(i), v))
    }

    /// Returns the underlying values in client-index order.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Consumes the map, returning the values in client-index order.
    pub fn into_vec(self) -> Vec<T> {
        self.values
    }
}

impl<T> NodeMap<T> {
    /// Builds a map with `len` entries, all initialised to `value`.
    pub fn filled(len: usize, value: T) -> Self
    where
        T: Clone,
    {
        NodeMap {
            values: vec![value; len],
        }
    }

    /// Builds a map from a plain vector whose positions follow node indices.
    pub fn from_vec(values: Vec<T>) -> Self {
        NodeMap { values }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(NodeId, &T)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (NodeId::from_index(i), v))
    }

    /// Returns the underlying values in node-index order.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Consumes the map, returning the values in node-index order.
    pub fn into_vec(self) -> Vec<T> {
        self.values
    }
}

/// A dense map from [`LinkId`] to values of type `T`.
///
/// Links are identified by their lower endpoint, so the map is laid out
/// as one slot per client link followed by one slot per node, indexed by
/// the endpoint's dense id. The root's slot is dead weight (the root has
/// no upwards link) — wasting one `T` buys branch-free O(1) indexing,
/// which is what the flow-accounting hot paths need.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinkMap<T> {
    values: Vec<T>,
    num_clients: usize,
    root: usize,
}

impl<T> LinkMap<T> {
    /// Builds a map over a tree with `num_clients` clients, `num_nodes`
    /// internal nodes and the root at node index `root`, every entry
    /// initialised to `value`.
    pub fn filled(num_clients: usize, num_nodes: usize, root: usize, value: T) -> Self
    where
        T: Clone,
    {
        LinkMap {
            values: vec![value; num_clients + num_nodes],
            num_clients,
            root,
        }
    }

    #[inline]
    fn slot(&self, id: LinkId) -> usize {
        match id {
            LinkId::Client(c) => c.index(),
            LinkId::Node(n) => {
                debug_assert_ne!(n.index(), self.root, "the root has no upwards link");
                self.num_clients + n.index()
            }
        }
    }

    /// Number of links covered (client links plus non-root node links).
    pub fn len(&self) -> usize {
        let num_nodes = self.values.len() - self.num_clients;
        self.num_clients + num_nodes.saturating_sub(1)
    }

    /// Returns `true` when the map covers no links.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(LinkId, &T)` pairs: client links first, then the
    /// node links (the root is skipped).
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, &T)> {
        let clients = self.values[..self.num_clients]
            .iter()
            .enumerate()
            .map(|(i, v)| (LinkId::Client(ClientId::from_index(i)), v));
        let root = self.root;
        let nodes = self.values[self.num_clients..]
            .iter()
            .enumerate()
            .filter(move |(i, _)| *i != root)
            .map(|(i, v)| (LinkId::Node(NodeId::from_index(i)), v));
        clients.chain(nodes)
    }
}

impl<T> std::ops::Index<LinkId> for LinkMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, id: LinkId) -> &T {
        &self.values[self.slot(id)]
    }
}

impl<T> std::ops::IndexMut<LinkId> for LinkMap<T> {
    #[inline]
    fn index_mut(&mut self, id: LinkId) -> &mut T {
        let slot = self.slot(id);
        &mut self.values[slot]
    }
}

impl<T> std::ops::Index<ClientId> for ClientMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, id: ClientId) -> &T {
        &self.values[id.index()]
    }
}

impl<T> std::ops::IndexMut<ClientId> for ClientMap<T> {
    #[inline]
    fn index_mut(&mut self, id: ClientId) -> &mut T {
        &mut self.values[id.index()]
    }
}

impl<T> std::ops::Index<NodeId> for NodeMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, id: NodeId) -> &T {
        &self.values[id.index()]
    }
}

impl<T> std::ops::IndexMut<NodeId> for NodeMap<T> {
    #[inline]
    fn index_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.values[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_id_round_trips_through_index() {
        for i in [0usize, 1, 7, 1_000_000] {
            assert_eq!(ClientId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_round_trips_through_index() {
        for i in [0usize, 1, 7, 1_000_000] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(ClientId::from_index(3).to_string(), "c3");
        assert_eq!(NodeId::from_index(5).to_string(), "n5");
        assert_eq!(
            LinkId::Client(ClientId::from_index(3)).to_string(),
            "link[c3]"
        );
        assert_eq!(LinkId::Node(NodeId::from_index(5)).to_string(), "link[n5]");
    }

    #[test]
    fn link_id_accessors() {
        let cl = LinkId::Client(ClientId::from_index(2));
        let nl = LinkId::Node(NodeId::from_index(4));
        assert!(cl.is_client_link());
        assert!(!nl.is_client_link());
        assert_eq!(cl.as_client(), Some(ClientId::from_index(2)));
        assert_eq!(cl.as_node(), None);
        assert_eq!(nl.as_node(), Some(NodeId::from_index(4)));
        assert_eq!(nl.as_client(), None);
    }

    #[test]
    fn client_map_index_and_iter() {
        let mut m = ClientMap::filled(3, 0u64);
        m[ClientId::from_index(1)] = 42;
        assert_eq!(m[ClientId::from_index(1)], 42);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        let collected: Vec<_> = m.iter().map(|(id, v)| (id.index(), *v)).collect();
        assert_eq!(collected, vec![(0, 0), (1, 42), (2, 0)]);
    }

    #[test]
    fn node_map_index_and_iter() {
        let m = NodeMap::from_vec(vec![10u32, 20, 30]);
        assert_eq!(m[NodeId::from_index(2)], 30);
        assert_eq!(m.as_slice(), &[10, 20, 30]);
        let ids: Vec<_> = m.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn ids_are_orderable_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId::from_index(1));
        set.insert(NodeId::from_index(1));
        set.insert(NodeId::from_index(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(ClientId::from_index(0) < ClientId::from_index(9));
    }
}
