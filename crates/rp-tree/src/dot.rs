//! Graphviz DOT export of a distribution tree.
//!
//! Handy for eyeballing generated workloads and for illustrating
//! solutions: the caller supplies closures that decorate nodes and
//! clients (e.g. marking replica nodes, printing request counts).

use std::fmt::Write as _;

use crate::ids::{ClientId, NodeId};
use crate::tree::TreeNetwork;

/// Options controlling DOT rendering.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Name of the digraph.
    pub graph_name: String,
    /// Rank direction: `"TB"` (default) or `"LR"`.
    pub rankdir: String,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            graph_name: "distribution_tree".to_string(),
            rankdir: "TB".to_string(),
        }
    }
}

/// Renders the tree as Graphviz DOT with default decorations: internal
/// nodes as boxes, clients as ellipses, labelled with their ids (or the
/// label set at build time, if any).
pub fn to_dot(tree: &TreeNetwork) -> String {
    to_dot_with(
        tree,
        &DotOptions::default(),
        |node| {
            tree.node_label(node)
                .map(str::to_owned)
                .unwrap_or_else(|| node.to_string())
        },
        |client| {
            tree.client_label(client)
                .map(str::to_owned)
                .unwrap_or_else(|| client.to_string())
        },
        |_| false,
    )
}

/// Renders the tree as Graphviz DOT with custom labels and an optional
/// highlight predicate for nodes (highlighted nodes are filled — used to
/// mark replicas in a placement).
pub fn to_dot_with<FN, FC, FH>(
    tree: &TreeNetwork,
    options: &DotOptions,
    node_label: FN,
    client_label: FC,
    highlight_node: FH,
) -> String
where
    FN: Fn(NodeId) -> String,
    FC: Fn(ClientId) -> String,
    FH: Fn(NodeId) -> bool,
{
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize_name(&options.graph_name));
    let _ = writeln!(out, "  rankdir={};", options.rankdir);
    let _ = writeln!(out, "  node [fontsize=10];");

    for node in tree.node_ids() {
        let label = escape(&node_label(node));
        let fill = if highlight_node(node) {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        let _ = writeln!(out, "  {} [shape=box, label=\"{}\"{}];", node, label, fill);
    }
    for client in tree.client_ids() {
        let label = escape(&client_label(client));
        let _ = writeln!(out, "  {} [shape=ellipse, label=\"{}\"];", client, label);
    }
    // Edges are drawn parent -> child to match the usual depiction of
    // distribution trees (root on top).
    for node in tree.node_ids() {
        if let Some(parent) = tree.parent_of_node(node) {
            let _ = writeln!(out, "  {} -> {};", parent, node);
        }
    }
    for client in tree.client_ids() {
        let parent = tree.parent_of_client(client);
        let _ = writeln!(out, "  {} -> {};", parent, client);
    }
    out.push_str("}\n");
    out
}

fn sanitize_name(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "tree".to_string()
    } else {
        cleaned
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn sample() -> TreeNetwork {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        b.add_client(a);
        b.add_client(root);
        b.set_node_label(root, "the root");
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let t = sample();
        let dot = to_dot(&t);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("n1 [shape=box"));
        assert!(dot.contains("c0 [shape=ellipse"));
        assert!(dot.contains("c1 [shape=ellipse"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> c0;"));
        assert!(dot.contains("n0 -> c1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_uses_build_time_labels() {
        let t = sample();
        let dot = to_dot(&t);
        assert!(dot.contains("label=\"the root\""));
    }

    #[test]
    fn dot_highlights_replica_nodes() {
        let t = sample();
        let dot = to_dot_with(
            &t,
            &DotOptions::default(),
            |n| n.to_string(),
            |c| c.to_string(),
            |n| n.index() == 0,
        );
        assert!(dot.contains("n0 [shape=box, label=\"n0\", style=filled"));
        assert!(!dot.contains("n1 [shape=box, label=\"n1\", style=filled"));
    }

    #[test]
    fn dot_escapes_quotes_in_labels() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        b.set_node_label(root, "a \"quoted\" label");
        let t = b.build().unwrap();
        let dot = to_dot(&t);
        assert!(dot.contains("a \\\"quoted\\\" label"));
    }

    #[test]
    fn graph_name_is_sanitised() {
        let t = sample();
        let opts = DotOptions {
            graph_name: "my tree (v2)".to_string(),
            rankdir: "LR".to_string(),
        };
        let dot = to_dot_with(&t, &opts, |n| n.to_string(), |c| c.to_string(), |_| false);
        assert!(dot.contains("digraph my_tree__v2_ {"));
        assert!(dot.contains("rankdir=LR;"));
    }
}
