//! Error types for building and validating distribution trees.

use std::fmt;

use crate::ids::{ClientId, NodeId};

/// Errors raised while constructing or validating a [`TreeNetwork`](crate::TreeNetwork).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TreeError {
    /// The tree has no internal node at all; a distribution tree needs at
    /// least a root.
    EmptyTree,
    /// More than one node was declared without a parent.
    MultipleRoots {
        /// The first root encountered.
        first: NodeId,
        /// The conflicting second root.
        second: NodeId,
    },
    /// No node was declared as root (every node has a parent), which
    /// implies a cycle.
    NoRoot,
    /// A node id used as a parent does not exist.
    UnknownParent {
        /// The dense index that was out of range.
        index: usize,
    },
    /// A cycle was detected while walking from a node towards the root.
    CycleDetected {
        /// A node that participates in (or leads into) the cycle.
        node: NodeId,
    },
    /// A node is not reachable from the root.
    UnreachableNode {
        /// The unreachable node.
        node: NodeId,
    },
    /// A client references a parent node that does not exist.
    UnknownClientParent {
        /// The client with the dangling parent reference.
        client: ClientId,
        /// The dense index that was out of range.
        index: usize,
    },
    /// Parsing a textual tree description failed.
    Parse {
        /// 1-based line number where the error occurred.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::EmptyTree => write!(f, "tree has no internal nodes"),
            TreeError::MultipleRoots { first, second } => {
                write!(f, "multiple roots declared: {first} and {second}")
            }
            TreeError::NoRoot => write!(f, "no root node (every node has a parent)"),
            TreeError::UnknownParent { index } => {
                write!(f, "parent node index {index} does not exist")
            }
            TreeError::CycleDetected { node } => {
                write!(f, "cycle detected on the path from {node} to the root")
            }
            TreeError::UnreachableNode { node } => {
                write!(f, "node {node} is not reachable from the root")
            }
            TreeError::UnknownClientParent { client, index } => {
                write!(
                    f,
                    "client {client} references unknown parent node index {index}"
                )
            }
            TreeError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningful_messages() {
        let cases: Vec<(TreeError, &str)> = vec![
            (TreeError::EmptyTree, "no internal nodes"),
            (
                TreeError::MultipleRoots {
                    first: NodeId::from_index(0),
                    second: NodeId::from_index(3),
                },
                "multiple roots",
            ),
            (TreeError::NoRoot, "no root"),
            (TreeError::UnknownParent { index: 9 }, "index 9"),
            (
                TreeError::CycleDetected {
                    node: NodeId::from_index(2),
                },
                "cycle",
            ),
            (
                TreeError::UnreachableNode {
                    node: NodeId::from_index(4),
                },
                "not reachable",
            ),
            (
                TreeError::UnknownClientParent {
                    client: ClientId::from_index(1),
                    index: 7,
                },
                "unknown parent",
            ),
            (
                TreeError::Parse {
                    line: 12,
                    message: "bad token".into(),
                },
                "line 12",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(
                text.contains(needle),
                "expected {text:?} to contain {needle:?}"
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&TreeError::EmptyTree);
    }
}
