//! Structural validation of a distribution tree.
//!
//! [`TreeBuilder::build`](crate::TreeBuilder::build) calls [`validate`]
//! before releasing a [`TreeNetwork`], so user code can rely on the
//! invariants listed here holding for every tree it receives:
//!
//! 1. exactly one root (a node without parent);
//! 2. parent pointers are acyclic;
//! 3. every internal node is reachable from the root by following child
//!    lists, and child lists are consistent with parent pointers;
//! 4. every client's parent exists.

use crate::error::TreeError;
use crate::ids::NodeId;
use crate::tree::TreeNetwork;

/// Checks the structural invariants of a tree. Returns `Ok(())` when the
/// tree is well formed.
pub fn validate(tree: &TreeNetwork) -> Result<(), TreeError> {
    if tree.nodes.is_empty() {
        return Err(TreeError::EmptyTree);
    }

    // Exactly one node without parent, and it must be the recorded root.
    let mut root_seen: Option<NodeId> = None;
    for (idx, node) in tree.nodes.iter().enumerate() {
        if node.parent.is_none() {
            let id = NodeId::from_index(idx);
            match root_seen {
                None => root_seen = Some(id),
                Some(first) => {
                    return Err(TreeError::MultipleRoots { first, second: id });
                }
            }
        }
    }
    let root = root_seen.ok_or(TreeError::NoRoot)?;
    if root != tree.root {
        return Err(TreeError::MultipleRoots {
            first: tree.root,
            second: root,
        });
    }

    // Acyclicity: walking parents from any node must terminate within
    // |N| steps.
    let n = tree.nodes.len();
    for start in tree.node_ids() {
        let mut current = start;
        let mut steps = 0usize;
        while let Some(parent) = tree.parent_of_node(current) {
            if parent.index() >= n {
                return Err(TreeError::UnknownParent {
                    index: parent.index(),
                });
            }
            current = parent;
            steps += 1;
            if steps > n {
                return Err(TreeError::CycleDetected { node: start });
            }
        }
    }

    // Reachability and parent/child consistency.
    let mut reachable = vec![false; n];
    let mut stack = vec![tree.root];
    while let Some(node) = stack.pop() {
        if reachable[node.index()] {
            // A node listed twice as a child would be visited twice.
            return Err(TreeError::CycleDetected { node });
        }
        reachable[node.index()] = true;
        for &child in tree.child_nodes(node) {
            if child.index() >= n {
                return Err(TreeError::UnknownParent {
                    index: child.index(),
                });
            }
            if tree.parent_of_node(child) != Some(node) {
                return Err(TreeError::UnreachableNode { node: child });
            }
            stack.push(child);
        }
    }
    if let Some(idx) = reachable.iter().position(|&r| !r) {
        return Err(TreeError::UnreachableNode {
            node: NodeId::from_index(idx),
        });
    }

    // Clients reference existing parents, and appear in their parent's
    // child list exactly once.
    for client in tree.client_ids() {
        let parent = tree.parent_of_client(client);
        if parent.index() >= n {
            return Err(TreeError::UnknownClientParent {
                client,
                index: parent.index(),
            });
        }
        let appearances = tree
            .child_clients(parent)
            .iter()
            .filter(|&&c| c == client)
            .count();
        if appearances != 1 {
            return Err(TreeError::UnknownClientParent {
                client,
                index: parent.index(),
            });
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    #[test]
    fn well_formed_tree_passes() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(root);
        let tree = b.build().unwrap();
        assert!(validate(&tree).is_ok());
    }

    #[test]
    fn single_root_only_tree_passes() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        assert!(b.build().is_ok());
    }

    #[test]
    fn builder_rejects_double_root() {
        let mut b = TreeBuilder::new();
        b.add_root();
        b.add_root();
        assert!(matches!(b.build(), Err(TreeError::MultipleRoots { .. })));
    }

    #[test]
    fn validate_detects_corrupted_parent_pointer() {
        // Build a valid tree, then corrupt it through the crate-private
        // fields to simulate an inconsistent structure.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let bb = b.add_node(root);
        b.add_client(a);
        b.add_client(bb);
        let mut tree = b.build().unwrap();
        // Point node b's parent at node a, but leave it in the root's
        // child list: parent/child inconsistency.
        tree.nodes[bb.index()].parent = Some(a);
        assert!(validate(&tree).is_err());
    }

    #[test]
    fn validate_detects_cycle() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let c = b.add_node(a);
        b.add_client(c);
        let mut tree = b.build().unwrap();
        // Create a parent cycle a -> c -> a (and fix child lists so the
        // cycle is the only problem detected).
        tree.nodes[a.index()].parent = Some(c);
        match validate(&tree) {
            Err(TreeError::CycleDetected { .. })
            | Err(TreeError::MultipleRoots { .. })
            | Err(TreeError::UnreachableNode { .. }) => {}
            other => panic!("expected a structural error, got {other:?}"),
        }
    }

    #[test]
    fn validate_detects_client_not_in_parent_list() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        b.add_client(a);
        let mut tree = b.build().unwrap();
        // Re-point the client at the root without updating child lists.
        tree.clients[0].parent = root;
        assert!(matches!(
            validate(&tree),
            Err(TreeError::UnknownClientParent { .. })
        ));
    }
}
