//! `rp-online` — the long-lived online placement engine.
//!
//! Everything below this crate is batch: hand the stack a
//! [`ProblemInstance`](rp_core::ProblemInstance) and it solves from
//! scratch. A live video-on-demand tree — the paper's own motivating
//! application — does not work like that: clients arrive, leave and
//! drift, servers are re-provisioned, links fail and heal. This crate
//! owns the long-lived [`PlacementEngine`] that absorbs that stream of
//! [`InstanceDelta`](rp_core::InstanceDelta)s and keeps a **verified
//! incumbent placement** at all times.
//!
//! # Engine lifecycle
//!
//! ```text
//! PlacementEngine::new(problem, policy)        // solve the initial instance
//!    ├─ apply(delta, budget) ──► Applied   { generation, rung }
//!    │                       ──► Degraded  { generation, rung, unserved }
//!    │                       ──► Deferred                  (rolled back)
//!    ├─ retry_deferred(budget)      // drain the backpressure queue
//!    ├─ checkpoint() / restore(..)  // snapshot & replay
//!    └─ incumbent() / verify_incumbent() / generation()
//! ```
//!
//! # The escalation ladder
//!
//! Each apply answers within a per-delta
//! [`SolveBudget`](rp_lp::SolveBudget) by climbing four rungs, every
//! rung deadline-checked before it starts and its result
//! machine-verified before it is accepted:
//!
//! 1. **Surgical** ([`ApplyRung::Surgical`]) — dirty-root-path repair.
//!    Only the root path of a changed node can change (the tree
//!    structure guarantees it), so the engine re-examines just the
//!    clients marked by [`DirtyRegion`](rp_core::DirtyRegion): strip
//!    what died, sync assignments to the new demand, shed overload,
//!    re-home orphans through the exact accounting.
//! 2. **LP-guided** ([`ApplyRung::LpRepair`]) — under the Multiple
//!    policy, a warm LP re-solve (dual-simplex cleanup from the
//!    incumbent basis; the remaining budget is threaded into
//!    [`SolveBudget`](rp_lp::SolveBudget)) rounded back to an integral
//!    placement. Skipped under Closest/Upwards, whose single-server
//!    rule the fractional rounding cannot respect.
//! 3. **Re-run** ([`ApplyRung::Rerun`]) — the policy's own heuristics
//!    from scratch on the current platform.
//! 4. **Degrade** ([`ApplyRung::Degraded`]) — a machine-checkable
//!    [`DegradedPlacement`](rp_core::DegradedPlacement): serve what
//!    fits, report the rest as unserved. This rung is *total*.
//!
//! # Budget, rollback and backpressure
//!
//! Every apply starts from a copy-on-write snapshot of the engine
//! state (the incumbent rides behind an `Arc`, so a snapshot is O(s)
//! bookkeeping, not a placement deep-copy). If the budget expires
//! before any rung produced a *verified* answer, the apply **rolls
//! back** to that snapshot — the incumbent, its generation and the
//! platform are exactly what they were — and the delta lands in the
//! deferred queue ([`ApplyOutcome::Deferred`], the backpressure
//! signal). [`PlacementEngine::retry_deferred`] replays the queue when
//! the burst has passed.
//!
//! The engine re-verifies its incumbent after every accepted apply: a
//! `debug_assert!` always, and a full
//! [`DegradedPlacement::verify`](rp_core::DegradedPlacement::verify)
//! in release builds too under [`Paranoia::Full`] — a failed paranoid
//! check rolls back exactly like a budget miss, so an unverified
//! incumbent can never be observed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods)]

mod engine;

pub use engine::{
    ApplyOutcome, ApplyRung, EngineCheckpoint, Paranoia, PlacementEngine, RungCounts,
};
