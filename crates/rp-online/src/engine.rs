//! The [`PlacementEngine`] itself: live state, the apply path, and the
//! four-rung escalation ladder. See the crate docs for the contract.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use rp_core::failures::{
    degraded_best_effort, heuristic_fallback, prune_idle_replicas, rehome, DegradedPlacement,
    DegradedPlatform, FailureEvent, RecoveryScope,
};
use rp_core::heuristics::lp_guided::accounting::FeasAccounting;
use rp_core::heuristics::lp_guided::lp_guided_reusing;
use rp_core::ilp::IlpOptions;
use rp_core::{DirtyRegion, InstanceDelta, Placement, Policy, ProblemInstance};
use rp_lp::{LpWorkspace, SolveBudget};
use rp_tree::{ClientId, LinkId, NodeId};

/// How thoroughly the engine re-checks its own incumbent after every
/// accepted apply. The rung results are machine-verified before
/// acceptance in *every* mode; paranoia is the extra end-to-end check
/// on top.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Paranoia {
    /// Full [`DegradedPlacement::verify`] behind `debug_assert!` only —
    /// free in release builds.
    #[default]
    DebugOnly,
    /// Full verification after every apply in release builds too; a
    /// failed check rolls the apply back and defers the delta.
    Full,
}

/// Which rung of the escalation ladder produced the accepted answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApplyRung {
    /// Dirty-region surgical repair of the incumbent.
    Surgical,
    /// LP-guided re-solve warm-started from the engine's LP workspace.
    LpRepair,
    /// Full heuristic re-run from scratch.
    Rerun,
    /// A verified partial answer (some clients unserved).
    Degraded,
}

impl ApplyRung {
    /// Stable machine-readable tag.
    pub fn as_str(self) -> &'static str {
        match self {
            ApplyRung::Surgical => "surgical",
            ApplyRung::LpRepair => "lp-repair",
            ApplyRung::Rerun => "rerun",
            ApplyRung::Degraded => "degraded",
        }
    }
}

impl fmt::Display for ApplyRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one [`PlacementEngine::apply`] call did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApplyOutcome {
    /// The delta is absorbed and every request is served; the incumbent
    /// advanced to `generation`.
    Applied {
        /// The incumbent generation after the apply.
        generation: u64,
        /// The ladder rung that produced the placement.
        rung: ApplyRung,
    },
    /// The delta is absorbed but full service is infeasible (or was not
    /// found in budget): the incumbent is a verified partial placement.
    Degraded {
        /// The incumbent generation after the apply.
        generation: u64,
        /// The ladder rung that produced the placement.
        rung: ApplyRung,
        /// How many clients the incumbent leaves unserved.
        unserved: usize,
    },
    /// The budget expired before any rung produced a verified answer:
    /// the engine **rolled back** to the previous incumbent and queued
    /// the delta for [`PlacementEngine::retry_deferred`]. This is the
    /// backpressure signal.
    Deferred,
}

impl ApplyOutcome {
    /// Whether the delta was deferred (rolled back, queued).
    pub fn is_deferred(&self) -> bool {
        matches!(self, ApplyOutcome::Deferred)
    }

    /// The ladder rung that answered, if the delta was absorbed.
    pub fn rung(&self) -> Option<ApplyRung> {
        match *self {
            ApplyOutcome::Applied { rung, .. } | ApplyOutcome::Degraded { rung, .. } => Some(rung),
            ApplyOutcome::Deferred => None,
        }
    }

    /// The incumbent generation after the apply, if it advanced.
    pub fn generation(&self) -> Option<u64> {
        match *self {
            ApplyOutcome::Applied { generation, .. }
            | ApplyOutcome::Degraded { generation, .. } => Some(generation),
            ApplyOutcome::Deferred => None,
        }
    }
}

/// Engine-local tallies of which ladder rung answered each absorbed
/// apply (the same events also land in the global `rp-obs` counters;
/// these are per-engine and deterministic under parallel tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RungCounts {
    /// Applies answered by the surgical rung.
    pub surgical: u64,
    /// Applies answered by the LP-guided rung.
    pub lp_repair: u64,
    /// Applies answered by a full heuristic re-run.
    pub rerun: u64,
    /// Applies answered with a verified degraded placement.
    pub degraded: u64,
}

impl RungCounts {
    /// Total absorbed applies.
    pub fn total(&self) -> u64 {
        self.surgical + self.lp_repair + self.rerun + self.degraded
    }

    fn record(&mut self, rung: ApplyRung) {
        match rung {
            ApplyRung::Surgical => self.surgical += 1,
            ApplyRung::LpRepair => self.lp_repair += 1,
            ApplyRung::Rerun => self.rerun += 1,
            ApplyRung::Degraded => self.degraded += 1,
        }
    }
}

/// The mutable engine state that a snapshot must capture. The incumbent
/// rides behind an [`Arc`], so cloning this is O(s) vector copies plus
/// one reference-count bump — never a placement deep-copy.
#[derive(Clone)]
struct EngineState {
    /// Current request volume per client slot (0 = absent).
    requests: Vec<u64>,
    /// Current *healthy* capacity per node (the `CapacityChanged`
    /// axis, independent of failures).
    healthy_capacities: Vec<u64>,
    /// Outstanding `CapacityLoss` per node (`None` = no loss); cleared
    /// by a server recovery. Effective capacity is
    /// `min(healthy, loss)`, or 0 while the server is dead.
    failure_capacities: Vec<Option<u64>>,
    dead_servers: Vec<bool>,
    dead_client_links: Vec<bool>,
    dead_node_links: Vec<bool>,
    /// The last verified incumbent (copy-on-write).
    incumbent: Arc<DegradedPlacement>,
}

impl EngineState {
    fn effective_capacity(&self, index: usize) -> u64 {
        if self.dead_servers[index] {
            0
        } else {
            self.healthy_capacities[index].min(self.failure_capacities[index].unwrap_or(u64::MAX))
        }
    }
}

/// A replayable snapshot of the engine: the full state plus the
/// generation counter. Produced by [`PlacementEngine::checkpoint`],
/// consumed by [`PlacementEngine::restore`]. Replaying the same delta
/// trace with the same budgets from a restored checkpoint reproduces
/// the same sequence of incumbents and generations.
#[derive(Clone)]
pub struct EngineCheckpoint {
    state: EngineState,
    generation: u64,
}

impl EngineCheckpoint {
    /// The generation the checkpoint was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A long-lived placement service over one (topologically fixed) tree:
/// owns the live instance and a verified incumbent placement, and
/// absorbs [`InstanceDelta`]s under a per-delta [`SolveBudget`]. See
/// the crate docs for the ladder and the rollback contract.
pub struct PlacementEngine {
    /// The instance the engine was built from — the source of truth for
    /// pristine capacities, storage costs, QoS bounds and bandwidths.
    pristine: ProblemInstance,
    policy: Policy,
    paranoia: Paranoia,
    state: EngineState,
    /// The current platform, rebuilt from `state` after every ingest
    /// (and after every rollback) — always consistent with `state`.
    platform: DegradedPlatform,
    generation: u64,
    deferred: VecDeque<InstanceDelta>,
    dirty: DirtyRegion,
    workspace: LpWorkspace,
    rung_counts: RungCounts,
}

impl PlacementEngine {
    /// Builds an engine over `problem` and solves the initial instance
    /// (full heuristics, falling back to a verified degraded placement
    /// if full service is infeasible from the start). Generation 0 is
    /// that initial incumbent.
    pub fn new(problem: ProblemInstance, policy: Policy) -> Self {
        let tree = problem.tree();
        let requests: Vec<u64> = tree.client_ids().map(|c| problem.requests(c)).collect();
        let healthy_capacities: Vec<u64> = tree.node_ids().map(|n| problem.capacity(n)).collect();
        let num_nodes = tree.num_nodes();
        let num_clients = tree.num_clients();
        let placeholder = Arc::new(DegradedPlacement {
            placement: Placement::empty(num_clients),
            unserved: Vec::new(),
            served_requests: 0,
            total_requests: 0,
            cost: 0,
        });
        let state = EngineState {
            requests,
            healthy_capacities,
            failure_capacities: vec![None; num_nodes],
            dead_servers: vec![false; num_nodes],
            dead_client_links: vec![false; num_clients],
            dead_node_links: vec![false; num_nodes],
            incumbent: placeholder,
        };
        let platform = build_platform(&problem, &state);
        let incumbent = match heuristic_fallback(&platform, policy) {
            Some(placement) => report_from(&platform, placement, Vec::new()),
            None => degraded_best_effort(&platform, policy),
        };
        let dirty = DirtyRegion::for_tree(platform.problem().tree());
        let mut engine = PlacementEngine {
            pristine: problem,
            policy,
            paranoia: Paranoia::default(),
            state,
            platform,
            generation: 0,
            deferred: VecDeque::new(),
            dirty,
            workspace: LpWorkspace::new(),
            rung_counts: RungCounts::default(),
        };
        engine.state.incumbent = Arc::new(incumbent);
        debug_assert!(engine.verify_incumbent());
        engine
    }

    /// Sets the paranoia level (builder-style).
    pub fn with_paranoia(mut self, paranoia: Paranoia) -> Self {
        self.paranoia = paranoia;
        self
    }

    /// The policy the engine serves under.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The pristine (healthy, initial) instance.
    pub fn pristine(&self) -> &ProblemInstance {
        &self.pristine
    }

    /// The current surviving platform (current demand, effective
    /// capacities, dead links encoded as zero bandwidth).
    pub fn platform(&self) -> &DegradedPlatform {
        &self.platform
    }

    /// The current instance (shorthand for `platform().problem()`).
    pub fn problem(&self) -> &ProblemInstance {
        self.platform.problem()
    }

    /// The current verified incumbent.
    pub fn incumbent(&self) -> &DegradedPlacement {
        &self.state.incumbent
    }

    /// The incumbent generation: 0 for the initial solve, +1 per
    /// absorbed apply. Deferred applies do not advance it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the incumbent serves every request of the current
    /// instance.
    pub fn is_fully_served(&self) -> bool {
        self.state.incumbent.unserved.is_empty()
    }

    /// Number of deltas waiting in the deferred (backpressure) queue.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Engine-local per-rung apply tallies.
    pub fn rung_counts(&self) -> RungCounts {
        self.rung_counts
    }

    /// Re-runs the full machine check of the incumbent against the
    /// current platform. The engine maintains this as an invariant;
    /// the chaos harness calls it after every apply.
    pub fn verify_incumbent(&self) -> bool {
        self.state.incumbent.verify(&self.platform, self.policy)
    }

    /// Takes a replayable snapshot of the engine (O(s) + one Arc bump).
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            state: self.state.clone(),
            generation: self.generation,
        }
    }

    /// Restores a snapshot taken by [`checkpoint`](Self::checkpoint):
    /// state, incumbent and generation return to the checkpointed
    /// values; the deferred queue is cleared (the checkpoint's trace
    /// suffix is expected to be replayed).
    pub fn restore(&mut self, checkpoint: &EngineCheckpoint) {
        self.state = checkpoint.state.clone();
        self.generation = checkpoint.generation;
        self.platform = build_platform(&self.pristine, &self.state);
        self.deferred.clear();
        self.dirty.clear();
        rp_obs::gauge_set(rp_obs::Gauge::OnlineGeneration, self.generation);
    }

    /// Absorbs one delta within `budget`. On success the incumbent
    /// advances one generation and the outcome names the ladder rung
    /// that answered; on a budget miss the engine rolls back to the
    /// pre-apply incumbent and queues the delta
    /// ([`ApplyOutcome::Deferred`]).
    pub fn apply(&mut self, delta: InstanceDelta, budget: SolveBudget) -> ApplyOutcome {
        let _span = rp_obs::span(rp_obs::SpanKind::OnlineApply);
        rp_obs::incr(rp_obs::Counter::OnlineApplies);
        let deadline = budget.deadline.map(|d| Instant::now() + d);
        let snapshot = self.state.clone();
        let snapshot_generation = self.generation;

        self.dirty.clear();
        self.ingest(delta);
        self.platform = build_platform(&self.pristine, &self.state);

        match self.resolve(deadline, budget) {
            Some((report, rung)) => {
                let unserved = report.unserved.len();
                self.state.incumbent = Arc::new(report);
                self.generation += 1;
                debug_assert!(
                    self.verify_incumbent(),
                    "unverified incumbent after `{delta}` (rung {rung})"
                );
                if self.paranoia == Paranoia::Full && !self.verify_incumbent() {
                    self.rollback(snapshot, snapshot_generation, delta);
                    return ApplyOutcome::Deferred;
                }
                rp_obs::gauge_set(rp_obs::Gauge::OnlineGeneration, self.generation);
                rp_obs::incr(match rung {
                    ApplyRung::Surgical => rp_obs::Counter::OnlineRungSurgical,
                    ApplyRung::LpRepair => rp_obs::Counter::OnlineRungLpRepair,
                    ApplyRung::Rerun => rp_obs::Counter::OnlineRungRerun,
                    ApplyRung::Degraded => rp_obs::Counter::OnlineRungDegraded,
                });
                self.rung_counts.record(rung);
                if unserved == 0 {
                    ApplyOutcome::Applied {
                        generation: self.generation,
                        rung,
                    }
                } else {
                    ApplyOutcome::Degraded {
                        generation: self.generation,
                        rung,
                        unserved,
                    }
                }
            }
            None => {
                self.rollback(snapshot, snapshot_generation, delta);
                ApplyOutcome::Deferred
            }
        }
    }

    /// Replays the deferred queue, each delta under its own `budget`.
    /// Deltas that miss again re-enter the queue (the queue is drained
    /// first, so one call retries each entry exactly once).
    pub fn retry_deferred(&mut self, budget: SolveBudget) -> Vec<ApplyOutcome> {
        let pending: Vec<InstanceDelta> = self.deferred.drain(..).collect();
        pending
            .into_iter()
            .map(|delta| self.apply(delta, budget))
            .collect()
    }

    /// Restores the pre-apply snapshot and queues the delta.
    fn rollback(&mut self, snapshot: EngineState, generation: u64, delta: InstanceDelta) {
        self.state = snapshot;
        self.generation = generation;
        self.platform = build_platform(&self.pristine, &self.state);
        self.deferred.push_back(delta);
        rp_obs::incr(rp_obs::Counter::OnlineRollbacks);
        rp_obs::incr(rp_obs::Counter::OnlineDeferred);
        rp_obs::note_anomaly(rp_obs::AnomalyKind::Rollback);
        debug_assert!(self.verify_incumbent(), "rollback left a broken incumbent");
    }

    /// Folds one delta into the engine state and marks the dirty
    /// region it can affect.
    fn ingest(&mut self, delta: InstanceDelta) {
        let tree = self.pristine.tree();
        match delta {
            InstanceDelta::ClientArrived { client, requests }
            | InstanceDelta::DemandChanged { client, requests } => {
                self.state.requests[client.index()] = requests;
                self.dirty.mark_client(tree, client);
            }
            InstanceDelta::ClientDeparted { client } => {
                self.state.requests[client.index()] = 0;
                self.dirty.mark_client(tree, client);
            }
            InstanceDelta::CapacityChanged { node, capacity } => {
                self.state.healthy_capacities[node.index()] = capacity;
                self.dirty.mark_subtree(tree, node);
            }
            InstanceDelta::Failure(event) => self.ingest_failure(event),
        }
    }

    fn ingest_failure(&mut self, event: FailureEvent) {
        let tree = self.pristine.tree();
        let state = &mut self.state;
        match event {
            FailureEvent::ServerCrash(node) => {
                state.dead_servers[node.index()] = true;
                self.dirty.mark_subtree(tree, node);
            }
            FailureEvent::UplinkDown(LinkId::Client(client)) => {
                state.dead_client_links[client.index()] = true;
                self.dirty.mark_client(tree, client);
            }
            FailureEvent::UplinkDown(LinkId::Node(node)) => {
                // The root has no uplink: nothing to sever.
                if !tree.is_root(node) {
                    state.dead_node_links[node.index()] = true;
                }
                self.dirty.mark_subtree(tree, node);
            }
            FailureEvent::CapacityLoss { node, remaining } => {
                let slot = &mut state.failure_capacities[node.index()];
                *slot = Some(slot.unwrap_or(u64::MAX).min(remaining));
                self.dirty.mark_subtree(tree, node);
            }
            FailureEvent::SubtreeFailure(node) => {
                for &member in tree.subtree_nodes(node) {
                    state.dead_servers[member.index()] = true;
                    if !tree.is_root(member) {
                        state.dead_node_links[member.index()] = true;
                    }
                }
                self.dirty.mark_subtree(tree, node);
            }
            FailureEvent::Recovered(scope) => match scope {
                RecoveryScope::Server(node) => {
                    state.dead_servers[node.index()] = false;
                    state.failure_capacities[node.index()] = None;
                    self.dirty.mark_subtree(tree, node);
                }
                RecoveryScope::Link(LinkId::Client(client)) => {
                    state.dead_client_links[client.index()] = false;
                    self.dirty.mark_client(tree, client);
                }
                RecoveryScope::Link(LinkId::Node(node)) => {
                    state.dead_node_links[node.index()] = false;
                    self.dirty.mark_subtree(tree, node);
                }
                RecoveryScope::Subtree(node) => {
                    for &member in tree.subtree_nodes(node) {
                        state.dead_servers[member.index()] = false;
                        state.failure_capacities[member.index()] = None;
                        state.dead_node_links[member.index()] = false;
                    }
                    for &client in tree.subtree_clients(node) {
                        state.dead_client_links[client.index()] = false;
                    }
                    self.dirty.mark_subtree(tree, node);
                }
                RecoveryScope::All => {
                    state.dead_servers.fill(false);
                    state.failure_capacities.fill(None);
                    state.dead_node_links.fill(false);
                    state.dead_client_links.fill(false);
                    self.dirty.mark_all(tree);
                }
            },
        }
    }

    /// Climbs the ladder; `None` means the deadline expired before any
    /// rung produced a verified answer (the caller rolls back).
    fn resolve(
        &mut self,
        deadline: Option<Instant>,
        budget: SolveBudget,
    ) -> Option<(DegradedPlacement, ApplyRung)> {
        // Clients the previous incumbent left unserved always rejoin
        // the dirty set: any heal may make them servable again.
        let pending: Vec<ClientId> = self.state.incumbent.unserved.clone();
        for client in pending {
            self.dirty.mark_client(self.pristine.tree(), client);
        }

        // Rung 1: surgical repair of the dirty region.
        let mut partial: Option<(Placement, Vec<ClientId>)> = None;
        if !expired(deadline) {
            if let Some((placement, unserved)) = self.surgical() {
                if unserved.is_empty() && placement.is_valid(self.platform.problem(), self.policy) {
                    let report = report_from(&self.platform, placement, Vec::new());
                    return Some((report, ApplyRung::Surgical));
                }
                partial = Some((placement, unserved));
            }
        }

        // Rung 2: LP-guided re-solve. Multiple only — the fractional
        // rounding splits clients across servers, which the
        // single-server policies forbid.
        if self.policy == Policy::Multiple && !expired(deadline) {
            let options = lp_options(deadline, budget);
            let problem = self.platform.problem();
            if let Some(placement) = lp_guided_reusing(problem, &options, &mut self.workspace) {
                if placement.is_valid(self.platform.problem(), self.policy) {
                    let report = report_from(&self.platform, placement, Vec::new());
                    return Some((report, ApplyRung::LpRepair));
                }
            }
        }

        // Rung 3: full heuristic re-run from scratch.
        if !expired(deadline) {
            if let Some(placement) = heuristic_fallback(&self.platform, self.policy) {
                let report = report_from(&self.platform, placement, Vec::new());
                return Some((report, ApplyRung::Rerun));
            }
        }

        // Rung 4: a verified degraded answer. Prefer the surgical
        // partial (it moved the fewest clients); fall back to the
        // total grow-and-shrink construction.
        if !expired(deadline) {
            if let Some((placement, unserved)) = partial {
                let report = report_from(&self.platform, placement, unserved);
                if report.verify(&self.platform, self.policy) {
                    return Some((report, ApplyRung::Degraded));
                }
            }
            let report = degraded_best_effort(&self.platform, self.policy);
            if report.verify(&self.platform, self.policy) {
                return Some((report, ApplyRung::Degraded));
            }
        }
        None
    }

    /// Rung 1: repair the incumbent touching only the dirty region.
    /// Returns the repaired placement plus the clients it had to leave
    /// unserved (empty = full service); `None` when overload shedding
    /// cannot restore non-negative residuals.
    fn surgical(&self) -> Option<(Placement, Vec<ClientId>)> {
        let problem = self.platform.problem();
        let tree = problem.tree();
        let mut survivor = self.state.incumbent.placement.clone();

        // Replicas on dead servers go first (all their clients are in
        // the dead server's subtree, hence dirty).
        let dead: Vec<NodeId> = survivor
            .replicas()
            .iter()
            .copied()
            .filter(|&n| self.platform.is_server_dead(n))
            .collect();
        for node in dead {
            survivor.remove_replica(node);
        }

        // Tear down the dirty clients' broken routes and sync each to
        // its current demand; deficits become orphans.
        let mut orphans: Vec<(ClientId, u64)> = Vec::new();
        for &client in self.dirty.dirty_clients() {
            let broken: Vec<(NodeId, u64)> = survivor
                .assignments(client)
                .iter()
                .filter(|a| !self.platform.path_is_alive(client, a.server))
                .map(|a| (a.server, a.amount))
                .collect();
            for (server, amount) in broken {
                survivor.unassign(client, server, amount);
            }

            let target = problem.requests(client);
            let assigned = survivor.assigned_requests(client);
            if assigned > target {
                // Demand shrank: trim the excess in place (valid under
                // every policy — the server set only shrinks).
                let mut excess = assigned - target;
                let current: Vec<(NodeId, u64)> = survivor
                    .assignments(client)
                    .iter()
                    .map(|a| (a.server, a.amount))
                    .collect();
                for (server, amount) in current.into_iter().rev() {
                    if excess == 0 {
                        break;
                    }
                    excess -= survivor.unassign(client, server, amount.min(excess));
                }
            } else if assigned < target {
                if self.policy.is_single_server() && assigned > 0 {
                    // A single-server client cannot split its top-up:
                    // re-home the whole client.
                    let current: Vec<(NodeId, u64)> = survivor
                        .assignments(client)
                        .iter()
                        .map(|a| (a.server, a.amount))
                        .collect();
                    for (server, amount) in current {
                        survivor.unassign(client, server, amount);
                    }
                    orphans.push((client, target));
                } else {
                    orphans.push((client, target - assigned));
                }
            }
        }

        // Charge every surviving assignment into the exact accounting
        // of the *current* instance.
        let mut accounting = FeasAccounting::for_problem(problem);
        for client in tree.client_ids() {
            let current: Vec<(NodeId, u64)> = survivor
                .assignments(client)
                .iter()
                .map(|a| (a.server, a.amount))
                .collect();
            for (server, amount) in current {
                accounting.assign(tree, client, server, amount);
            }
        }

        // Shed overload where the effective capacity dropped below the
        // carried load (smallest assignments first; whole clients under
        // the single-server policies).
        for node in tree.node_ids() {
            if accounting.node_residual(node) >= 0 {
                continue;
            }
            let mut carried: Vec<(ClientId, u64)> = tree
                .client_ids()
                .flat_map(|c| {
                    survivor
                        .assignments(c)
                        .iter()
                        .filter(|a| a.server == node)
                        .map(|a| (c, a.amount))
                        .collect::<Vec<_>>()
                })
                .collect();
            carried.sort_by_key(|&(c, amount)| (amount, c.index()));
            for (client, amount) in carried {
                let deficit = -accounting.node_residual(node);
                if deficit <= 0 {
                    break;
                }
                let shed = if self.policy.is_single_server() {
                    amount
                } else {
                    amount.min(deficit as u64)
                };
                let removed = survivor.unassign(client, node, shed);
                accounting.unassign(tree, client, node, removed);
                if removed > 0 {
                    match orphans.iter_mut().find(|(c, _)| *c == client) {
                        Some(entry) => entry.1 += removed,
                        None => orphans.push((client, removed)),
                    }
                }
            }
            if accounting.node_residual(node) < 0 {
                return None;
            }
        }

        // Re-home the orphans hardest-first; what cannot be re-homed
        // is fully unassigned and reported unserved.
        let mut unserved: Vec<ClientId> = Vec::new();
        orphans.sort_by_key(|&(c, amount)| (std::cmp::Reverse(amount), c.index()));
        for (client, amount) in orphans {
            if !rehome(
                problem,
                &self.platform,
                &mut survivor,
                &mut accounting,
                client,
                amount,
                self.policy,
            ) {
                let current: Vec<(NodeId, u64)> = survivor
                    .assignments(client)
                    .iter()
                    .map(|a| (a.server, a.amount))
                    .collect();
                for (server, held) in current {
                    let removed = survivor.unassign(client, server, held);
                    accounting.unassign(tree, client, server, removed);
                }
                unserved.push(client);
            }
        }

        prune_idle_replicas(&mut survivor, tree.num_nodes());
        Some((survivor, unserved))
    }
}

/// Whether `deadline` has passed.
fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// The LP options for the guided rung: the remaining wall budget (and
/// the caller's iteration cap) threaded into the warm simplex solve.
fn lp_options(deadline: Option<Instant>, budget: SolveBudget) -> IlpOptions {
    let mut options = IlpOptions::default();
    options.branch_bound.simplex.budget = SolveBudget {
        deadline: deadline.map(|d| d.saturating_duration_since(Instant::now())),
        max_iterations: budget.max_iterations,
    };
    options
}

/// Rebuilds the current platform from the engine state: effective
/// capacities (healthy ∧ loss ∧ alive), current requests, pristine
/// costs/QoS, and zeroed bandwidth on dead links.
fn build_platform(pristine: &ProblemInstance, state: &EngineState) -> DegradedPlatform {
    let tree = pristine.tree();
    let capacities: Vec<u64> = (0..tree.num_nodes())
        .map(|i| state.effective_capacity(i))
        .collect();
    let storage_costs: Vec<u64> = tree.node_ids().map(|n| pristine.storage_cost(n)).collect();
    let qos: Vec<Option<u32>> = tree.client_ids().map(|c| pristine.qos(c)).collect();
    let client_bw: Vec<Option<u64>> = tree
        .client_ids()
        .map(|c| {
            if state.dead_client_links[c.index()] {
                Some(0)
            } else {
                pristine.bandwidth(LinkId::Client(c))
            }
        })
        .collect();
    let node_bw: Vec<Option<u64>> = tree
        .node_ids()
        .map(|n| {
            if !tree.is_root(n) && state.dead_node_links[n.index()] {
                Some(0)
            } else {
                pristine.bandwidth(LinkId::Node(n))
            }
        })
        .collect();
    let problem = ProblemInstance::builder(pristine.tree_arc())
        .requests(state.requests.clone())
        .capacities(capacities)
        .storage_costs(storage_costs)
        .qos(qos)
        .client_link_bandwidths(client_bw)
        .node_link_bandwidths(node_bw)
        .kind(pristine.kind())
        .build();
    DegradedPlatform::from_parts(
        problem,
        state.dead_servers.clone(),
        state.dead_client_links.clone(),
        state.dead_node_links.clone(),
    )
}

/// Wraps a placement plus its unserved list into a bookkept
/// [`DegradedPlacement`] against the current platform.
fn report_from(
    platform: &DegradedPlatform,
    placement: Placement,
    mut unserved: Vec<ClientId>,
) -> DegradedPlacement {
    let problem = platform.problem();
    let tree = problem.tree();
    unserved.sort();
    unserved.dedup();
    let total_requests: u64 = tree.client_ids().map(|c| problem.requests(c)).sum();
    let lost: u64 = unserved.iter().map(|&c| problem.requests(c)).sum();
    let cost = placement.cost(problem);
    DegradedPlacement {
        placement,
        unserved,
        served_requests: total_requests - lost,
        total_requests,
        cost,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;
    use rp_tree::TreeBuilder;
    use std::time::Duration;

    /// root(W=10) -> mid(W=5) -> {c0: 4, c1: 2}; root -> c2: 3.
    fn sample() -> (ProblemInstance, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        let c0 = b.add_client(mid);
        let c1 = b.add_client(mid);
        let c2 = b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![4, 2, 3], vec![10, 5]);
        (p, vec![root, mid], vec![c0, c1, c2])
    }

    #[test]
    fn engine_starts_with_a_verified_full_incumbent() {
        let (p, _, _) = sample();
        for policy in Policy::ALL {
            let engine = PlacementEngine::new(p.clone(), policy);
            assert!(engine.verify_incumbent(), "{policy}");
            assert!(engine.is_fully_served(), "{policy}");
            assert_eq!(engine.generation(), 0, "{policy}");
        }
    }

    #[test]
    fn demand_drift_is_absorbed_surgically() {
        let (p, _, c) = sample();
        for policy in Policy::ALL {
            let mut engine = PlacementEngine::new(p.clone(), policy);
            let outcome = engine.apply(
                InstanceDelta::DemandChanged {
                    client: c[0],
                    requests: 3,
                },
                SolveBudget::UNLIMITED,
            );
            assert_eq!(outcome.rung(), Some(ApplyRung::Surgical), "{policy}");
            assert_eq!(outcome.generation(), Some(1), "{policy}");
            assert!(engine.verify_incumbent(), "{policy}");
            assert!(engine.is_fully_served(), "{policy}");
            assert_eq!(engine.problem().requests(c[0]), 3, "{policy}");
        }
    }

    #[test]
    fn crash_and_recovery_round_trip() {
        let (p, n, _) = sample();
        for policy in Policy::ALL {
            let mut engine = PlacementEngine::new(p.clone(), policy).with_paranoia(Paranoia::Full);
            let crash = engine.apply(
                FailureEvent::ServerCrash(n[1]).into(),
                SolveBudget::UNLIMITED,
            );
            assert!(!crash.is_deferred(), "{policy}");
            assert!(engine.verify_incumbent(), "{policy}");
            // Root capacity 10 covers all 9 requests: still full.
            assert!(engine.is_fully_served(), "{policy}");

            let heal = engine.apply(
                FailureEvent::Recovered(RecoveryScope::Server(n[1])).into(),
                SolveBudget::UNLIMITED,
            );
            assert!(!heal.is_deferred(), "{policy}");
            assert!(engine.verify_incumbent(), "{policy}");
            assert!(engine.is_fully_served(), "{policy}");
            assert_eq!(engine.problem().capacity(n[1]), 5, "{policy}");
            assert_eq!(engine.generation(), 2, "{policy}");
        }
    }

    #[test]
    fn zero_budget_defers_and_rolls_back_bit_identically() {
        let (p, n, _) = sample();
        let mut engine = PlacementEngine::new(p, Policy::Upwards);
        let before = engine.incumbent().placement.clone();
        let outcome = engine.apply(
            FailureEvent::ServerCrash(n[0]).into(),
            SolveBudget::with_deadline(Duration::ZERO),
        );
        assert!(outcome.is_deferred());
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.deferred_len(), 1);
        assert_eq!(engine.incumbent().placement, before);
        assert!(engine.verify_incumbent());
        // The platform rolled back too: the root is alive again.
        assert!(!engine.platform().is_server_dead(n[0]));

        // With a real budget the deferred delta is absorbed.
        let retried = engine.retry_deferred(SolveBudget::UNLIMITED);
        assert_eq!(retried.len(), 1);
        assert!(!retried[0].is_deferred());
        assert_eq!(engine.deferred_len(), 0);
        assert!(engine.verify_incumbent());
    }

    #[test]
    fn departure_frees_capacity_for_a_later_arrival() {
        let (p, _, c) = sample();
        let mut engine = PlacementEngine::new(p, Policy::Multiple);
        let gone = engine.apply(
            InstanceDelta::ClientDeparted { client: c[0] },
            SolveBudget::UNLIMITED,
        );
        assert!(!gone.is_deferred());
        assert_eq!(engine.problem().requests(c[0]), 0);
        assert!(engine.incumbent().placement.assignments(c[0]).is_empty());

        let back = engine.apply(
            InstanceDelta::ClientArrived {
                client: c[0],
                requests: 6,
            },
            SolveBudget::UNLIMITED,
        );
        assert!(!back.is_deferred());
        assert!(engine.verify_incumbent());
        assert!(engine.is_fully_served());
        assert_eq!(engine.incumbent().placement.assigned_requests(c[0]), 6);
    }

    #[test]
    fn overload_degrades_then_recovers_when_demand_drops() {
        let (p, _, c) = sample();
        let mut engine = PlacementEngine::new(p, Policy::Upwards).with_paranoia(Paranoia::Full);
        // 40 requests cannot fit in 15 total capacity.
        let spike = engine.apply(
            InstanceDelta::DemandChanged {
                client: c[2],
                requests: 40,
            },
            SolveBudget::UNLIMITED,
        );
        match spike {
            ApplyOutcome::Degraded { unserved, .. } => assert!(unserved >= 1),
            other => panic!("expected a degraded outcome, got {other:?}"),
        }
        assert!(engine.verify_incumbent());
        assert!(!engine.is_fully_served());

        // Dropping back restores full service (the unserved client is
        // re-marked dirty on every apply).
        let calm = engine.apply(
            InstanceDelta::DemandChanged {
                client: c[2],
                requests: 3,
            },
            SolveBudget::UNLIMITED,
        );
        assert!(!calm.is_deferred());
        assert!(engine.is_fully_served());
        assert!(engine.verify_incumbent());
    }

    #[test]
    fn capacity_reprovision_sheds_and_rehomes() {
        let (p, n, _) = sample();
        for policy in Policy::ALL {
            let mut engine = PlacementEngine::new(p.clone(), policy).with_paranoia(Paranoia::Full);
            // Mid shrinks to 2: at most 2 of its 6 subtree requests stay.
            let outcome = engine.apply(
                InstanceDelta::CapacityChanged {
                    node: n[1],
                    capacity: 2,
                },
                SolveBudget::UNLIMITED,
            );
            assert!(!outcome.is_deferred(), "{policy}");
            assert!(engine.verify_incumbent(), "{policy}");
            assert!(engine.is_fully_served(), "{policy}");
            assert_eq!(engine.problem().capacity(n[1]), 2, "{policy}");
        }
    }

    #[test]
    fn checkpoint_replay_reproduces_generations_and_placements() {
        let (p, n, c) = sample();
        let mut engine = PlacementEngine::new(p, Policy::Closest);
        let trace = [
            InstanceDelta::DemandChanged {
                client: c[1],
                requests: 4,
            },
            InstanceDelta::Failure(FailureEvent::ServerCrash(n[1])),
            InstanceDelta::Failure(FailureEvent::Recovered(RecoveryScope::Server(n[1]))),
            InstanceDelta::ClientDeparted { client: c[0] },
        ];
        let checkpoint = engine.checkpoint();
        let first: Vec<(u64, Placement)> = trace
            .iter()
            .map(|&delta| {
                engine.apply(delta, SolveBudget::UNLIMITED);
                (engine.generation(), engine.incumbent().placement.clone())
            })
            .collect();
        engine.restore(&checkpoint);
        assert_eq!(engine.generation(), checkpoint.generation());
        let second: Vec<(u64, Placement)> = trace
            .iter()
            .map(|&delta| {
                engine.apply(delta, SolveBudget::UNLIMITED);
                (engine.generation(), engine.incumbent().placement.clone())
            })
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn rung_counts_tally_absorbed_applies() {
        let (p, _, c) = sample();
        let mut engine = PlacementEngine::new(p, Policy::Upwards);
        engine.apply(
            InstanceDelta::DemandChanged {
                client: c[0],
                requests: 1,
            },
            SolveBudget::UNLIMITED,
        );
        engine.apply(
            InstanceDelta::DemandChanged {
                client: c[0],
                requests: 4,
            },
            SolveBudget::UNLIMITED,
        );
        let counts = engine.rung_counts();
        assert_eq!(counts.total(), 2);
        assert!(counts.surgical >= 1);
    }
}
