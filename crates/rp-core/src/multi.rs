//! Multiple object types — the extension sketched in Section 8.1 of the
//! paper.
//!
//! With several databases (objects), each client issues `r_i^(k)`
//! requests for object `k`, a node may host replicas of several objects
//! (paying a per-object storage cost `s_j^(k)`), and the node's
//! processing capacity `W_j` is shared across all the objects it serves.
//! The objective is the total cost of all replicas of all types.
//!
//! The paper notes that the ILP formulation extends naturally but that
//! designing good heuristics is an open problem; this module provides
//!
//! * [`MultiObjectProblem`] / [`MultiPlacement`] with full validation,
//! * an exact ILP for the Multiple policy ([`solve_multi_ilp`]),
//! * a practical sequential heuristic ([`solve_multi_greedy`]) that
//!   allocates objects one at a time against the residual capacities,
//!   reusing any of the single-object heuristics.

use std::sync::Arc;

use rp_tree::{ClientId, LinkId, NodeId, TreeNetwork};

use crate::heuristics::Heuristic;
use crate::policy::Policy;
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Identifier of an object (database) type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Dense index of the object.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A replica-placement instance with several object types.
#[derive(Clone, Debug)]
pub struct MultiObjectProblem {
    tree: Arc<TreeNetwork>,
    /// `requests[k][i]` = requests of client `i` for object `k`.
    requests: Vec<Vec<u64>>,
    /// Shared processing capacity per node.
    capacities: Vec<u64>,
    /// `storage_costs[k][j]` = cost of a replica of object `k` at node `j`.
    storage_costs: Vec<Vec<u64>>,
    /// Bandwidth of the link above every client (`None` = unbounded).
    /// Like the node capacities, link bandwidths are **shared across
    /// the objects**: the flows of every object traverse the same wire.
    client_link_bandwidth: Vec<Option<u64>>,
    /// Bandwidth of the link above every node (root entry unused).
    node_link_bandwidth: Vec<Option<u64>>,
}

impl MultiObjectProblem {
    /// Builds a multi-object instance.
    ///
    /// `requests[k]` and `storage_costs[k]` must have one entry per
    /// client / node respectively, for every object `k`.
    pub fn new(
        tree: impl Into<Arc<TreeNetwork>>,
        requests: Vec<Vec<u64>>,
        capacities: Vec<u64>,
        storage_costs: Vec<Vec<u64>>,
    ) -> Self {
        let tree = tree.into();
        assert!(!requests.is_empty(), "at least one object type is required");
        assert_eq!(
            requests.len(),
            storage_costs.len(),
            "one storage-cost table per object is required"
        );
        for (k, object_requests) in requests.iter().enumerate() {
            assert_eq!(
                object_requests.len(),
                tree.num_clients(),
                "object {k}: one request count per client is required"
            );
        }
        for (k, object_costs) in storage_costs.iter().enumerate() {
            assert_eq!(
                object_costs.len(),
                tree.num_nodes(),
                "object {k}: one storage cost per node is required"
            );
        }
        assert_eq!(capacities.len(), tree.num_nodes());
        let (num_clients, num_nodes) = (tree.num_clients(), tree.num_nodes());
        MultiObjectProblem {
            tree,
            requests,
            capacities,
            storage_costs,
            client_link_bandwidth: vec![None; num_clients],
            node_link_bandwidth: vec![None; num_nodes],
        }
    }

    /// Bounds the links of the tree (shared across all the objects):
    /// one entry per client link and one per node link, in index order
    /// (`None` = unbounded; the root's node entry is ignored).
    pub fn with_link_bandwidths(
        mut self,
        client_links: Vec<Option<u64>>,
        node_links: Vec<Option<u64>>,
    ) -> Self {
        assert_eq!(client_links.len(), self.tree.num_clients());
        assert_eq!(node_links.len(), self.tree.num_nodes());
        self.client_link_bandwidth = client_links;
        self.node_link_bandwidth = node_links;
        self
    }

    /// Bandwidth of a link, if bounded (`BW_l`).
    pub fn bandwidth(&self, link: LinkId) -> Option<u64> {
        match link {
            LinkId::Client(c) => self.client_link_bandwidth[c.index()],
            LinkId::Node(n) => self.node_link_bandwidth[n.index()],
        }
    }

    /// `true` when at least one link carries a bandwidth bound.
    pub fn has_bandwidth_limits(&self) -> bool {
        self.client_link_bandwidth.iter().any(|b| b.is_some())
            || self.node_link_bandwidth.iter().any(|b| b.is_some())
    }

    /// The underlying tree.
    pub fn tree(&self) -> &TreeNetwork {
        &self.tree
    }

    /// Number of object types.
    pub fn num_objects(&self) -> usize {
        self.requests.len()
    }

    /// All object ids.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        (0..self.num_objects()).map(|k| ObjectId(k as u32))
    }

    /// Requests of `client` for `object`.
    pub fn requests(&self, object: ObjectId, client: ClientId) -> u64 {
        self.requests[object.index()][client.index()]
    }

    /// Shared capacity of `node`.
    pub fn capacity(&self, node: NodeId) -> u64 {
        self.capacities[node.index()]
    }

    /// Cost of placing a replica of `object` at `node`.
    pub fn storage_cost(&self, object: ObjectId, node: NodeId) -> u64 {
        self.storage_costs[object.index()][node.index()]
    }

    /// Total requests over all objects and clients.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().flatten().sum()
    }

    /// Total demand of one object.
    pub fn object_demand(&self, object: ObjectId) -> u64 {
        self.requests[object.index()].iter().sum()
    }

    /// Load factor over the shared capacities.
    pub fn load_factor(&self) -> f64 {
        let capacity: u64 = self.capacities.iter().sum();
        if capacity == 0 {
            return f64::INFINITY;
        }
        self.total_requests() as f64 / capacity as f64
    }

    /// The single-object [`ProblemInstance`] seen by `object` if it had
    /// the given per-node capacities to itself.
    pub fn project(&self, object: ObjectId, capacities: Vec<u64>) -> ProblemInstance {
        ProblemInstance::builder(Arc::clone(&self.tree))
            .requests(self.requests[object.index()].clone())
            .capacities(capacities)
            .storage_costs(self.storage_costs[object.index()].clone())
            .build()
    }
}

/// A placement for every object type.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiPlacement {
    /// One single-object placement per object, in object-index order.
    pub per_object: Vec<Placement>,
}

impl MultiPlacement {
    /// The placement of one object.
    pub fn placement(&self, object: ObjectId) -> &Placement {
        &self.per_object[object.index()]
    }

    /// Total storage cost over all objects.
    pub fn cost(&self, problem: &MultiObjectProblem) -> u64 {
        self.per_object
            .iter()
            .enumerate()
            .map(|(k, placement)| {
                placement
                    .replicas()
                    .iter()
                    .map(|&node| problem.storage_cost(ObjectId(k as u32), node))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Combined load (over all objects) on every node.
    pub fn node_loads(&self, problem: &MultiObjectProblem) -> Vec<u64> {
        let mut loads = rp_tree::NodeMap::filled(problem.tree().num_nodes(), 0u64);
        for placement in &self.per_object {
            placement.accumulate_server_loads(&mut loads);
        }
        loads.into_vec()
    }

    /// Validates the multi-object placement under `policy`:
    /// per-object path / coverage / policy rules (checked against a
    /// relaxed single-object instance), plus the *shared* capacity
    /// constraint `Σ_k load_k(j) <= W_j`.
    pub fn validate(&self, problem: &MultiObjectProblem, policy: Policy) -> Result<(), String> {
        if self.per_object.len() != problem.num_objects() {
            return Err(format!(
                "placement covers {} objects, problem has {}",
                self.per_object.len(),
                problem.num_objects()
            ));
        }
        // Per-object structural rules: validate against an instance with
        // unbounded per-node capacity (the shared capacity is checked
        // globally below). The same projection also yields the
        // per-object link flows for the shared-bandwidth check, so each
        // object is projected exactly once.
        let tree = problem.tree();
        let relaxed_capacity: Vec<u64> = vec![u64::MAX / 4; tree.num_nodes()];
        let mut combined_flows = problem.has_bandwidth_limits().then(|| {
            rp_tree::LinkMap::filled(
                tree.num_clients(),
                tree.num_nodes(),
                tree.root().index(),
                0u64,
            )
        });
        for object in problem.object_ids() {
            let single = problem.project(object, relaxed_capacity.clone());
            self.placement(object)
                .validate(&single, policy)
                .map_err(|violations| format!("{object}: {violations}"))?;
            if let Some(combined) = combined_flows.as_mut() {
                for (link, &flow) in self.placement(object).link_flows(&single).iter() {
                    combined[link] += flow;
                }
            }
        }
        // Shared capacities.
        for (index, &load) in self.node_loads(problem).iter().enumerate() {
            let node = NodeId::from_index(index);
            if load > problem.capacity(node) {
                return Err(format!(
                    "node {node}: combined load {load} exceeds shared capacity {}",
                    problem.capacity(node)
                ));
            }
        }
        // Shared link bandwidths: the flows of every object traverse
        // the same wire, so their per-link sums must fit.
        if let Some(combined) = combined_flows {
            for (link, &flow) in combined.iter() {
                if let Some(bw) = problem.bandwidth(link) {
                    if flow > bw {
                        return Err(format!(
                            "link {link}: combined flow {flow} exceeds bandwidth {bw}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// `true` when [`validate`](Self::validate) succeeds.
    pub fn is_valid(&self, problem: &MultiObjectProblem, policy: Policy) -> bool {
        self.validate(problem, policy).is_ok()
    }
}

/// Options for the sequential greedy solver.
#[derive(Clone, Copy, Debug)]
pub struct MultiGreedyOptions {
    /// Which single-object heuristic allocates each object.
    pub heuristic: Heuristic,
    /// Process objects in decreasing total demand (`true`, the default)
    /// or in declaration order (`false`).
    pub largest_demand_first: bool,
}

impl Default for MultiGreedyOptions {
    fn default() -> Self {
        MultiGreedyOptions {
            heuristic: Heuristic::MixedBest,
            largest_demand_first: true,
        }
    }
}

/// Sequential greedy allocation: objects are processed one at a time
/// (largest demand first by default); each object is placed by a
/// single-object heuristic against the *residual* capacities left by the
/// objects placed before it. Returns `None` when some object cannot be
/// placed — which does not prove infeasibility, only that this heuristic
/// order failed.
pub fn solve_multi_greedy(
    problem: &MultiObjectProblem,
    options: &MultiGreedyOptions,
) -> Option<MultiPlacement> {
    let tree = problem.tree();
    let mut residual: Vec<u64> = tree.node_ids().map(|n| problem.capacity(n)).collect();
    let mut order: Vec<ObjectId> = problem.object_ids().collect();
    if options.largest_demand_first {
        order.sort_by_key(|&k| std::cmp::Reverse(problem.object_demand(k)));
    }

    let mut per_object: Vec<Option<Placement>> = vec![None; problem.num_objects()];
    for object in order {
        let single = problem.project(object, residual.clone());
        let placement = options.heuristic.run(&single)?;
        for (node, &load) in placement.server_loads(residual.len()).iter() {
            residual[node.index()] -= load;
        }
        per_object[object.index()] = Some(placement);
    }
    Some(MultiPlacement {
        per_object: per_object
            .into_iter()
            .map(|p| p.expect("every object was placed"))
            .collect(),
    })
}

/// Exact ILP for the multi-object problem under the **Multiple** policy
/// (the natural extension of Section 5.2): per-object replica indicators
/// and request variables, per-object coverage, a shared capacity row per
/// node, and — when the instance bounds its links — per-object `z` flow
/// variables feeding shared bandwidth rows (see
/// [`crate::ilp::build_multi_model`]). Returns `None` when the instance
/// is infeasible or the branch-and-bound node limit is reached without
/// an incumbent.
pub fn solve_multi_ilp(problem: &MultiObjectProblem) -> Option<MultiPlacement> {
    solve_multi_ilp_with(problem, &crate::ilp::IlpOptions::default())
}

/// [`solve_multi_ilp`] with explicit branch-and-bound / simplex options
/// (engine selection included).
pub fn solve_multi_ilp_with(
    problem: &MultiObjectProblem,
    options: &crate::ilp::IlpOptions,
) -> Option<MultiPlacement> {
    use crate::ilp::{build_multi_model, Integrality};

    let tree = problem.tree();
    let formulation = build_multi_model(problem, Integrality::Exact);
    let outcome = rp_lp::solve_milp_with(&formulation.model, &options.branch_bound);
    let incumbent = outcome.incumbent?;
    if !matches!(
        outcome.status,
        rp_lp::Status::Optimal | rp_lp::Status::NodeLimit
    ) {
        return None;
    }

    // Extract one placement per object.
    let mut per_object = Vec::with_capacity(problem.num_objects());
    for object in problem.object_ids() {
        let mut placement = Placement::empty(tree.num_clients());
        for node in tree.node_ids() {
            if incumbent.value(formulation.x[object.index()][node.index()]) > 0.5 {
                placement.add_replica(node);
            }
        }
        for client in tree.client_ids() {
            for &(server, var) in &formulation.y[object.index()][client.index()] {
                let amount = incumbent.value(var).round().max(0.0) as u64;
                if amount > 0 {
                    placement.assign(client, server, amount);
                }
            }
        }
        per_object.push(placement);
    }
    Some(MultiPlacement { per_object })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    /// root -> hub -> {c0, c1}; root -> c2. Shared capacity 10 per node.
    fn small_tree() -> TreeNetwork {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let hub = b.add_node(root);
        b.add_client(hub);
        b.add_client(hub);
        b.add_client(root);
        b.build().unwrap()
    }

    fn two_object_problem() -> MultiObjectProblem {
        MultiObjectProblem::new(
            small_tree(),
            vec![
                vec![3, 2, 1], // object 0
                vec![1, 4, 2], // object 1
            ],
            vec![10, 8],
            vec![
                vec![5, 4], // object 0 storage costs per node
                vec![6, 3], // object 1
            ],
        )
    }

    #[test]
    fn accessors_and_demands() {
        let p = two_object_problem();
        assert_eq!(p.num_objects(), 2);
        assert_eq!(p.total_requests(), 13);
        assert_eq!(p.object_demand(ObjectId(0)), 6);
        assert_eq!(p.object_demand(ObjectId(1)), 7);
        assert!((p.load_factor() - 13.0 / 18.0).abs() < 1e-12);
        let clients: Vec<_> = p.tree().client_ids().collect();
        assert_eq!(p.requests(ObjectId(1), clients[1]), 4);
    }

    #[test]
    fn greedy_produces_a_valid_multi_placement() {
        let p = two_object_problem();
        let placement =
            solve_multi_greedy(&p, &MultiGreedyOptions::default()).expect("feasible instance");
        placement.validate(&p, Policy::Multiple).expect("valid");
        // Shared loads within capacity.
        for (index, load) in placement.node_loads(&p).iter().enumerate() {
            assert!(*load <= p.capacity(NodeId::from_index(index)));
        }
    }

    #[test]
    fn ilp_produces_a_valid_optimal_placement() {
        let p = two_object_problem();
        let exact = solve_multi_ilp(&p).expect("feasible instance");
        exact.validate(&p, Policy::Multiple).expect("valid");
        let greedy = solve_multi_greedy(&p, &MultiGreedyOptions::default()).unwrap();
        assert!(exact.cost(&p) <= greedy.cost(&p));
    }

    #[test]
    fn single_object_instances_match_the_single_object_ilp() {
        // With a single object the multi-object ILP must agree with the
        // plain Multiple ILP.
        let tree = small_tree();
        let p_multi = MultiObjectProblem::new(
            tree.clone(),
            vec![vec![3, 2, 1]],
            vec![10, 8],
            vec![vec![5, 4]],
        );
        let p_single = ProblemInstance::builder(tree)
            .requests(vec![3, 2, 1])
            .capacities(vec![10, 8])
            .storage_costs(vec![5, 4])
            .build();
        let multi = solve_multi_ilp(&p_multi).unwrap();
        let single = crate::ilp::exact_optimal_cost(&p_single, Policy::Multiple).unwrap();
        assert_eq!(multi.cost(&p_multi), single);
    }

    #[test]
    fn shared_capacity_couples_the_objects() {
        // Each object alone fits in the hub, but together they exceed it,
        // forcing at least one of them (partially) up to the root.
        let tree = small_tree();
        let p = MultiObjectProblem::new(
            tree,
            vec![vec![4, 2, 0], vec![3, 3, 0]],
            vec![20, 7],
            vec![vec![10, 1], vec![10, 1]],
        );
        let exact = solve_multi_ilp(&p).expect("feasible");
        exact.validate(&p, Policy::Multiple).expect("valid");
        // If capacity were not shared, both objects would pay only the
        // cheap hub (cost 2); sharing forces extra root replicas.
        assert!(exact.cost(&p) > 2);
        let loads = exact.node_loads(&p);
        assert!(loads[1] <= 7);
    }

    #[test]
    fn greedy_fails_gracefully_when_an_object_cannot_fit() {
        let tree = small_tree();
        let p = MultiObjectProblem::new(tree, vec![vec![50, 0, 0]], vec![10, 8], vec![vec![1, 1]]);
        assert!(solve_multi_greedy(&p, &MultiGreedyOptions::default()).is_none());
        assert!(solve_multi_ilp(&p).is_none());
    }

    #[test]
    fn validation_rejects_overloaded_shared_capacity() {
        let p = two_object_problem();
        // Route everything of both objects to the hub (node 1, capacity 8):
        // per-object placements are fine structurally but the combined
        // load 3+2+1? (client 2 is not below the hub) — use the root
        // instead, capacity 10 with total demand 13.
        let tree = p.tree();
        let root = tree.root();
        let mut per_object = Vec::new();
        for object in p.object_ids() {
            let mut placement = Placement::empty(tree.num_clients());
            placement.add_replica(root);
            for client in tree.client_ids() {
                placement.assign(client, root, p.requests(object, client));
            }
            per_object.push(placement);
        }
        let placement = MultiPlacement { per_object };
        let error = placement.validate(&p, Policy::Multiple).unwrap_err();
        assert!(error.contains("combined load"));
    }

    #[test]
    fn declaration_order_option_is_respected() {
        let p = two_object_problem();
        let in_order = solve_multi_greedy(
            &p,
            &MultiGreedyOptions {
                largest_demand_first: false,
                ..MultiGreedyOptions::default()
            },
        )
        .unwrap();
        in_order.validate(&p, Policy::Multiple).expect("valid");
    }

    #[test]
    #[should_panic(expected = "one request count per client")]
    fn mismatched_request_vectors_are_rejected() {
        let _ = MultiObjectProblem::new(
            small_tree(),
            vec![vec![1, 2]],
            vec![10, 8],
            vec![vec![1, 1]],
        );
    }
}
