//! Richer objective functions — the extension sketched in Section 8.2 of
//! the paper.
//!
//! The core problem only charges for the replicas themselves
//! (`Σ s_j`). Realistic deployments also care about
//!
//! * the **read cost** — the communication incurred by routing requests
//!   to their servers (here: requests × hops, the QoS=distance metric);
//! * the **write cost** — propagating an update to every replica, which
//!   travels along the minimal subtree of the tree spanning the replica
//!   set (the paper follows Wolfson & Milo in using this spanning
//!   structure);
//! * a **linear combination** `α·storage + β·read + γ·write` of the
//!   three.
//!
//! The placement algorithms do not optimise these quantities (the paper
//! leaves that as future work), but the evaluators below make it easy to
//! compare placements under richer objectives — see the
//! `objective_tradeoffs` example.

use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Weights of the combined objective `α·storage + β·read + γ·write`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectiveWeights {
    /// Weight of the replica storage cost (the paper's base objective).
    pub storage: f64,
    /// Weight of the read (request-routing) cost.
    pub read: f64,
    /// Weight of the write (update-propagation) cost.
    pub write: f64,
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        ObjectiveWeights {
            storage: 1.0,
            read: 0.0,
            write: 0.0,
        }
    }
}

/// Read cost of a placement: every request pays one unit per hop between
/// its client and the replica that serves it (requests served by the
/// client's own parent pay 1).
pub fn read_cost(problem: &ProblemInstance, placement: &Placement) -> u64 {
    let tree = problem.tree();
    let mut total = 0u64;
    for client in tree.client_ids() {
        for assignment in placement.assignments(client) {
            let hops = tree
                .client_distance(client, assignment.server)
                .expect("assignments are validated to lie on the client's path");
            total += assignment.amount * u64::from(hops);
        }
    }
    total
}

/// Write cost of a placement: the number of tree links in the minimal
/// subtree connecting all replicas (0 or 1 replica costs nothing),
/// multiplied by `updates` — the number of updates per time unit.
///
/// In a tree the minimal connecting subtree is exactly the set of links
/// whose lower subtree contains *some but not all* replicas, so the cost
/// is computed in one bottom-up pass.
pub fn write_cost(problem: &ProblemInstance, placement: &Placement, updates: u64) -> u64 {
    let tree = problem.tree();
    let total_replicas = placement.num_replicas();
    if total_replicas <= 1 || updates == 0 {
        return 0;
    }
    let mut below = vec![0usize; tree.num_nodes()];
    for &node in tree.postorder_nodes() {
        let mut count = usize::from(placement.has_replica(node));
        for &child in tree.child_nodes(node) {
            count += below[child.index()];
        }
        below[node.index()] = count;
    }
    let spanning_links = tree
        .node_ids()
        .filter(|&node| !tree.is_root(node))
        .filter(|&node| below[node.index()] > 0 && below[node.index()] < total_replicas)
        .count() as u64;
    spanning_links * updates
}

/// The combined objective `α·storage + β·read + γ·write` for a given
/// update rate.
pub fn combined_cost(
    problem: &ProblemInstance,
    placement: &Placement,
    weights: &ObjectiveWeights,
    updates: u64,
) -> f64 {
    weights.storage * placement.cost(problem) as f64
        + weights.read * read_cost(problem, placement) as f64
        + weights.write * write_cost(problem, placement, updates) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use rp_tree::{NodeId, TreeBuilder};

    /// root(n0) -> n1 -> n2 -> {c0}; root -> {c1}
    fn chain_problem() -> (ProblemInstance, Vec<NodeId>) {
        let mut b = TreeBuilder::new();
        let n0 = b.add_root();
        let n1 = b.add_node(n0);
        let n2 = b.add_node(n1);
        b.add_client(n2);
        b.add_client(n0);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_counting(tree, vec![4, 2], 10);
        (p, vec![n0, n1, n2])
    }

    #[test]
    fn read_cost_counts_requests_times_hops() {
        let (p, n) = chain_problem();
        let clients: Vec<_> = p.tree().client_ids().collect();
        // Serve c0 (4 requests) at the root: 3 hops; c1 (2 requests) at
        // the root: 1 hop. Read cost = 4*3 + 2*1 = 14.
        let mut far = Placement::empty(2);
        far.add_replica(n[0]);
        far.assign(clients[0], n[0], 4);
        far.assign(clients[1], n[0], 2);
        assert!(far.is_valid(&p, Policy::Upwards));
        assert_eq!(read_cost(&p, &far), 14);

        // Serve c0 at its parent instead: 4*1 + 2*1 = 6.
        let mut near = Placement::empty(2);
        near.add_replica(n[2]);
        near.add_replica(n[0]);
        near.assign(clients[0], n[2], 4);
        near.assign(clients[1], n[0], 2);
        assert!(near.is_valid(&p, Policy::Upwards));
        assert_eq!(read_cost(&p, &near), 6);
    }

    #[test]
    fn write_cost_is_the_spanning_subtree_size() {
        let (p, n) = chain_problem();
        let clients: Vec<_> = p.tree().client_ids().collect();
        let mut placement = Placement::empty(2);
        placement.add_replica(n[0]);
        placement.add_replica(n[2]);
        placement.assign(clients[0], n[2], 4);
        placement.assign(clients[1], n[0], 2);
        // The spanning subtree between n0 and n2 uses the two links
        // n2 -> n1 and n1 -> n0.
        assert_eq!(write_cost(&p, &placement, 1), 2);
        assert_eq!(write_cost(&p, &placement, 5), 10);
    }

    #[test]
    fn single_replica_has_no_write_cost() {
        let (p, n) = chain_problem();
        let clients: Vec<_> = p.tree().client_ids().collect();
        let mut placement = Placement::empty(2);
        placement.add_replica(n[0]);
        placement.assign(clients[0], n[0], 4);
        placement.assign(clients[1], n[0], 2);
        assert_eq!(write_cost(&p, &placement, 7), 0);
        assert_eq!(write_cost(&p, &Placement::empty(2), 7), 0);
    }

    #[test]
    fn combined_cost_weights_the_three_components() {
        let (p, n) = chain_problem();
        let clients: Vec<_> = p.tree().client_ids().collect();
        let mut placement = Placement::empty(2);
        placement.add_replica(n[0]);
        placement.add_replica(n[2]);
        placement.assign(clients[0], n[2], 4);
        placement.assign(clients[1], n[0], 2);

        let storage_only = combined_cost(&p, &placement, &ObjectiveWeights::default(), 3);
        assert!((storage_only - 2.0).abs() < 1e-12); // unit costs, 2 replicas

        let weights = ObjectiveWeights {
            storage: 1.0,
            read: 0.5,
            write: 2.0,
        };
        // storage 2, read 4*1 + 2*1 = 6, write 2 links * 3 updates = 6.
        let combined = combined_cost(&p, &placement, &weights, 3);
        assert!((combined - (2.0 + 0.5 * 6.0 + 2.0 * 6.0)).abs() < 1e-12);
    }

    #[test]
    fn closer_placements_trade_write_cost_for_read_cost() {
        // The classic trade-off: replicas near the clients lower the read
        // cost but enlarge the spanning subtree that updates must cover.
        let (p, n) = chain_problem();
        let clients: Vec<_> = p.tree().client_ids().collect();

        let mut near = Placement::empty(2);
        near.add_replica(n[2]);
        near.add_replica(n[0]);
        near.assign(clients[0], n[2], 4);
        near.assign(clients[1], n[0], 2);

        let mut far = Placement::empty(2);
        far.add_replica(n[0]);
        far.assign(clients[0], n[0], 4);
        far.assign(clients[1], n[0], 2);

        assert!(read_cost(&p, &near) < read_cost(&p, &far));
        assert!(write_cost(&p, &near, 1) > write_cost(&p, &far, 1));
    }
}
