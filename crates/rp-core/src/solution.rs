//! Placements (solutions) and their validation.
//!
//! A [`Placement`] records the replica set `R` and, for every client, how
//! many of its requests each replica serves. [`Placement::validate`]
//! checks the solution against a [`ProblemInstance`] under a given
//! [`Policy`], covering every constraint of Section 2.2: request
//! coverage, path eligibility, the single-server / closest-server rules,
//! server capacities, QoS bounds and link bandwidths.

use std::fmt;

use rp_tree::{ClientId, LinkId, LinkMap, NodeId, NodeMap};

use crate::policy::Policy;
use crate::problem::ProblemInstance;

/// One client-to-server assignment: `amount` requests of the client are
/// processed by `server`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Assignment {
    /// The serving replica.
    pub server: NodeId,
    /// Number of requests routed to `server`.
    pub amount: u64,
}

/// A replica placement together with the request assignment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Placement {
    replicas: Vec<NodeId>,
    /// `assignments[c]` lists the servers of client `c`; empty when the
    /// placement does not serve the client (which validation rejects).
    assignments: Vec<Vec<Assignment>>,
}

impl Placement {
    /// Creates an empty placement for a problem over `num_clients` clients.
    pub fn empty(num_clients: usize) -> Self {
        Placement {
            replicas: Vec::new(),
            assignments: vec![Vec::new(); num_clients],
        }
    }

    /// Empties the placement (no replicas, no assignments) while keeping
    /// every buffer's capacity, so a solver can rebuild into it without
    /// reallocating. The client count is preserved.
    pub fn clear(&mut self) {
        self.replicas.clear();
        for list in &mut self.assignments {
            list.clear();
        }
    }

    /// Re-targets the placement to a problem over `num_clients` clients,
    /// clearing all replicas and assignments while keeping every
    /// buffer's capacity (the pooled counterpart of [`Placement::empty`];
    /// assignment lists only grow on the first encounter with a larger
    /// client count).
    pub fn reset_for(&mut self, num_clients: usize) {
        self.replicas.clear();
        for list in &mut self.assignments {
            list.clear();
        }
        if self.assignments.len() > num_clients {
            self.assignments.truncate(num_clients);
        } else {
            self.assignments.resize_with(num_clients, Vec::new);
        }
    }

    /// Copies `source` into `self`, reusing the replica list and every
    /// per-client assignment list. Unlike the derived
    /// `Clone::clone_from` (which falls back to a fresh `clone`), this
    /// never allocates once the buffers have grown to the source's
    /// shape — it is what lets `MixedBest` keep one pooled incumbent
    /// across a whole sweep.
    pub fn copy_from(&mut self, source: &Placement) {
        self.replicas.clear();
        self.replicas.extend_from_slice(&source.replicas);
        self.assignments.truncate(source.assignments.len());
        for (dst, src) in self.assignments.iter_mut().zip(&source.assignments) {
            dst.clear();
            dst.extend_from_slice(src);
        }
        for src in &source.assignments[self.assignments.len()..] {
            self.assignments.push(src.clone());
        }
    }

    /// Adds a replica to the set `R` (idempotent).
    pub fn add_replica(&mut self, node: NodeId) {
        if let Err(pos) = self.replicas.binary_search(&node) {
            self.replicas.insert(pos, node);
        }
    }

    /// Returns `true` when `node` carries a replica.
    pub fn has_replica(&self, node: NodeId) -> bool {
        self.replicas.binary_search(&node).is_ok()
    }

    /// The replica set, sorted by node index.
    pub fn replicas(&self) -> &[NodeId] {
        &self.replicas
    }

    /// Number of replicas (the Replica Counting objective when nodes are
    /// homogeneous).
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Routes `amount` requests of `client` to `server`, merging with any
    /// existing assignment to the same server.
    pub fn assign(&mut self, client: ClientId, server: NodeId, amount: u64) {
        if amount == 0 {
            return;
        }
        let list = &mut self.assignments[client.index()];
        match list.iter_mut().find(|a| a.server == server) {
            Some(existing) => existing.amount += amount,
            None => list.push(Assignment { server, amount }),
        }
    }

    /// Removes up to `amount` requests of `client` from `server`,
    /// dropping the entry entirely when it reaches zero. Returns the
    /// number of requests actually removed (0 when no such assignment
    /// exists). The repair passes use this together with
    /// [`Placement::assign`] to re-home requests.
    pub fn unassign(&mut self, client: ClientId, server: NodeId, amount: u64) -> u64 {
        let list = &mut self.assignments[client.index()];
        let Some(position) = list.iter().position(|a| a.server == server) else {
            return 0;
        };
        let removed = list[position].amount.min(amount);
        list[position].amount -= removed;
        if list[position].amount == 0 {
            list.swap_remove(position);
        }
        removed
    }

    /// Removes `node` from the replica set (idempotent). The caller is
    /// responsible for having re-homed any assignments served there —
    /// validation reports [`Violation::ServerWithoutReplica`] otherwise.
    pub fn remove_replica(&mut self, node: NodeId) {
        if let Ok(position) = self.replicas.binary_search(&node) {
            self.replicas.remove(position);
        }
    }

    /// The assignments of a client.
    pub fn assignments(&self, client: ClientId) -> &[Assignment] {
        &self.assignments[client.index()]
    }

    /// Total requests of `client` covered by this placement.
    pub fn assigned_requests(&self, client: ClientId) -> u64 {
        self.assignments[client.index()]
            .iter()
            .map(|a| a.amount)
            .sum()
    }

    /// The single server of `client`, if it has exactly one.
    pub fn single_server(&self, client: ClientId) -> Option<NodeId> {
        match self.assignments[client.index()].as_slice() {
            [only] => Some(only.server),
            _ => None,
        }
    }

    /// Total load (requests served) of every node, as a dense map over
    /// all `num_nodes` internal nodes (nodes without a replica or an
    /// assignment report load 0).
    pub fn server_loads(&self, num_nodes: usize) -> NodeMap<u64> {
        let mut loads: NodeMap<u64> = NodeMap::filled(num_nodes, 0);
        self.accumulate_server_loads(&mut loads);
        loads
    }

    /// Adds this placement's per-server loads into a caller-provided
    /// dense buffer (zero allocations; used by the validation and
    /// multi-object hot paths).
    pub fn accumulate_server_loads(&self, loads: &mut NodeMap<u64>) {
        for list in &self.assignments {
            for a in list {
                loads[a.server] += a.amount;
            }
        }
    }

    /// Flow of requests through every link implied by the assignment, as
    /// a dense map over all links (unused links report flow 0).
    pub fn link_flows(&self, problem: &ProblemInstance) -> LinkMap<u64> {
        let tree = problem.tree();
        let mut flows: LinkMap<u64> =
            LinkMap::filled(tree.num_clients(), tree.num_nodes(), tree.root().index(), 0);
        for client in tree.client_ids() {
            for a in self.assignments(client) {
                if let Some(links) = tree.client_path_links(client, a.server) {
                    for link in links {
                        flows[link] += a.amount;
                    }
                }
            }
        }
        flows
    }

    /// Total storage cost `Σ s_j` of the replica set.
    pub fn cost(&self, problem: &ProblemInstance) -> u64 {
        self.replicas.iter().map(|&n| problem.storage_cost(n)).sum()
    }

    /// Validates the placement against `problem` under `policy`.
    pub fn validate(&self, problem: &ProblemInstance, policy: Policy) -> Result<(), Violations> {
        let mut violations = Vec::new();
        let tree = problem.tree();

        if self.assignments.len() != tree.num_clients() {
            violations.push(Violation::WrongClientCount {
                expected: tree.num_clients(),
                actual: self.assignments.len(),
            });
            return Err(Violations(violations));
        }

        // Per-client checks.
        for client in tree.client_ids() {
            let requests = problem.requests(client);
            let assigned = self.assigned_requests(client);
            if assigned != requests {
                violations.push(Violation::RequestsNotCovered {
                    client,
                    requested: requests,
                    assigned,
                });
            }
            let list = self.assignments(client);
            if policy.is_single_server() && requests > 0 && list.len() > 1 {
                violations.push(Violation::MultipleServersUnderSingleServerPolicy {
                    client,
                    servers: list.iter().map(|a| a.server).collect(),
                });
            }
            for a in list {
                if !self.has_replica(a.server) {
                    violations.push(Violation::ServerWithoutReplica {
                        client,
                        server: a.server,
                    });
                }
                if !tree.is_on_client_path(client, a.server) {
                    violations.push(Violation::ServerOffPath {
                        client,
                        server: a.server,
                    });
                }
                if let Some(q) = problem.qos(client) {
                    if let Some(d) = tree.client_distance(client, a.server) {
                        if d > q {
                            violations.push(Violation::QosExceeded {
                                client,
                                server: a.server,
                                distance: d,
                                bound: q,
                            });
                        }
                    }
                }
            }
            // The Closest rule: the chosen server must be the first
            // replica on the path from the client to the root.
            if policy == Policy::Closest && requests > 0 {
                if let Some(server) = list.first().map(|a| a.server) {
                    if let Some(first_replica) = tree
                        .ancestors_of_client(client)
                        .into_iter()
                        .find(|n| self.has_replica(*n))
                    {
                        if first_replica != server {
                            violations.push(Violation::NotClosestReplica {
                                client,
                                server,
                                closest: first_replica,
                            });
                        }
                    }
                }
            }
        }

        // Server capacities.
        for (server, &load) in self.server_loads(tree.num_nodes()).iter() {
            let capacity = problem.capacity(server);
            if load > capacity {
                violations.push(Violation::CapacityExceeded {
                    server,
                    load,
                    capacity,
                });
            }
        }

        // Link bandwidths.
        if problem.has_bandwidth_limits() {
            for (link, &flow) in self.link_flows(problem).iter() {
                if let Some(bw) = problem.bandwidth(link) {
                    if flow > bw {
                        violations.push(Violation::BandwidthExceeded {
                            link,
                            flow,
                            bandwidth: bw,
                        });
                    }
                }
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(Violations(violations))
        }
    }

    /// `true` when [`validate`](Placement::validate) succeeds.
    pub fn is_valid(&self, problem: &ProblemInstance, policy: Policy) -> bool {
        self.validate(problem, policy).is_ok()
    }
}

/// A single constraint violation found by [`Placement::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// The placement was built for a different number of clients.
    WrongClientCount {
        /// Clients in the problem.
        expected: usize,
        /// Clients in the placement.
        actual: usize,
    },
    /// A client's requests are not exactly covered.
    RequestsNotCovered {
        /// The client.
        client: ClientId,
        /// Requests issued.
        requested: u64,
        /// Requests assigned.
        assigned: u64,
    },
    /// A single-server policy but the client uses several servers.
    MultipleServersUnderSingleServerPolicy {
        /// The client.
        client: ClientId,
        /// The servers it uses.
        servers: Vec<NodeId>,
    },
    /// A client is served by a node that carries no replica.
    ServerWithoutReplica {
        /// The client.
        client: ClientId,
        /// The offending server.
        server: NodeId,
    },
    /// A client is served by a node outside its path to the root.
    ServerOffPath {
        /// The client.
        client: ClientId,
        /// The offending server.
        server: NodeId,
    },
    /// Under Closest, a client skipped a replica located closer to it.
    NotClosestReplica {
        /// The client.
        client: ClientId,
        /// The server actually used.
        server: NodeId,
        /// The first replica on the client's path.
        closest: NodeId,
    },
    /// A server processes more requests than its capacity.
    CapacityExceeded {
        /// The server.
        server: NodeId,
        /// Requests assigned to it.
        load: u64,
        /// Its capacity `W_j`.
        capacity: u64,
    },
    /// A client is served farther away than its QoS bound allows.
    QosExceeded {
        /// The client.
        client: ClientId,
        /// The server used.
        server: NodeId,
        /// Hops between them.
        distance: u32,
        /// The bound `q_i`.
        bound: u32,
    },
    /// More requests flow through a link than its bandwidth allows.
    BandwidthExceeded {
        /// The link.
        link: LinkId,
        /// Requests flowing through it.
        flow: u64,
        /// Its bandwidth `BW_l`.
        bandwidth: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongClientCount { expected, actual } => {
                write!(
                    f,
                    "placement covers {actual} clients, problem has {expected}"
                )
            }
            Violation::RequestsNotCovered {
                client,
                requested,
                assigned,
            } => write!(
                f,
                "client {client}: {assigned}/{requested} requests assigned"
            ),
            Violation::MultipleServersUnderSingleServerPolicy { client, servers } => write!(
                f,
                "client {client} uses {} servers under a single-server policy",
                servers.len()
            ),
            Violation::ServerWithoutReplica { client, server } => {
                write!(f, "client {client} served by {server} which has no replica")
            }
            Violation::ServerOffPath { client, server } => {
                write!(
                    f,
                    "client {client} served by {server} which is not on its path to the root"
                )
            }
            Violation::NotClosestReplica {
                client,
                server,
                closest,
            } => write!(
                f,
                "client {client} served by {server} but the closest replica is {closest}"
            ),
            Violation::CapacityExceeded {
                server,
                load,
                capacity,
            } => write!(f, "server {server} load {load} exceeds capacity {capacity}"),
            Violation::QosExceeded {
                client,
                server,
                distance,
                bound,
            } => write!(
                f,
                "client {client} served by {server} at distance {distance} > QoS bound {bound}"
            ),
            Violation::BandwidthExceeded {
                link,
                flow,
                bandwidth,
            } => write!(f, "{link} carries {flow} requests > bandwidth {bandwidth}"),
        }
    }
}

/// The full list of violations found by [`Placement::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violations(pub Vec<Violation>);

impl Violations {
    /// Number of violations.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always `false`: a `Violations` value is only built when non-empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the violations.
    pub fn iter(&self) -> impl Iterator<Item = &Violation> {
        self.0.iter()
    }
}

impl fmt::Display for Violations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} constraint violation(s):", self.0.len())?;
        for v in &self.0 {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Violations {}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::{TreeBuilder, TreeNetwork};

    /// root(n0) -> n1 -> {c0 (3 req), c1 (5 req)}; root -> c2 (2 req).
    fn sample() -> (ProblemInstance, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let n1 = b.add_node(root);
        let c0 = b.add_client(n1);
        let c1 = b.add_client(n1);
        let c2 = b.add_client(root);
        let tree: TreeNetwork = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![3, 5, 2], vec![10, 10]);
        (p, vec![root, n1], vec![c0, c1, c2])
    }

    fn full_single_server_placement(
        p: &ProblemInstance,
        server_for: impl Fn(ClientId) -> NodeId,
    ) -> Placement {
        let mut placement = Placement::empty(p.tree().num_clients());
        for c in p.tree().client_ids() {
            let s = server_for(c);
            placement.add_replica(s);
            placement.assign(c, s, p.requests(c));
        }
        placement
    }

    #[test]
    fn valid_closest_placement_passes_all_policies() {
        let (p, n, _) = sample();
        // Replica at n1 serves c0+c1 (8 <= 10); replica at root serves c2.
        let placement =
            full_single_server_placement(&p, |c| if c.index() == 2 { n[0] } else { n[1] });
        for policy in Policy::ALL {
            assert!(placement.is_valid(&p, policy), "policy {policy}");
        }
        assert_eq!(placement.cost(&p), 20);
        assert_eq!(placement.num_replicas(), 2);
    }

    #[test]
    fn upwards_only_placement_fails_closest_validation() {
        let (p, n, c) = sample();
        // Replicas at n1 and root, but c0 is served by the root even
        // though n1 (a closer replica) exists: legal under Upwards and
        // Multiple, illegal under Closest.
        let mut placement = Placement::empty(3);
        placement.add_replica(n[0]);
        placement.add_replica(n[1]);
        placement.assign(c[0], n[0], 3);
        placement.assign(c[1], n[1], 5);
        placement.assign(c[2], n[0], 2);
        assert!(placement.is_valid(&p, Policy::Upwards));
        assert!(placement.is_valid(&p, Policy::Multiple));
        let err = placement.validate(&p, Policy::Closest).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::NotClosestReplica { .. })));
    }

    #[test]
    fn split_assignment_fails_single_server_policies() {
        let (p, n, c) = sample();
        let mut placement = Placement::empty(3);
        placement.add_replica(n[0]);
        placement.add_replica(n[1]);
        // c1's 5 requests split between n1 and the root.
        placement.assign(c[0], n[1], 3);
        placement.assign(c[1], n[1], 2);
        placement.assign(c[1], n[0], 3);
        placement.assign(c[2], n[0], 2);
        assert!(placement.is_valid(&p, Policy::Multiple));
        for policy in [Policy::Closest, Policy::Upwards] {
            let err = placement.validate(&p, policy).unwrap_err();
            assert!(err
                .iter()
                .any(|v| matches!(v, Violation::MultipleServersUnderSingleServerPolicy { .. })));
        }
    }

    #[test]
    fn uncovered_requests_are_reported() {
        let (p, n, c) = sample();
        let mut placement = Placement::empty(3);
        placement.add_replica(n[0]);
        placement.assign(c[0], n[0], 3);
        placement.assign(c[1], n[0], 5);
        // c2 not assigned at all.
        let err = placement.validate(&p, Policy::Multiple).unwrap_err();
        assert!(err.iter().any(|v| matches!(
            v,
            Violation::RequestsNotCovered { client, assigned: 0, .. } if *client == c[2]
        )));
    }

    #[test]
    fn capacity_violations_are_reported() {
        let (p, n, _) = sample();
        // Everything on n1: 10 requests (3+5) is fine, but adding c2 is
        // impossible (not on path) — instead overload the root with all 10.
        let placement = full_single_server_placement(&p, |_| n[0]);
        // Root load is 3 + 5 + 2 = 10 <= 10 => fine. Shrink capacity to 9.
        let p_small = ProblemInstance::replica_cost(p.tree_arc(), vec![3, 5, 2], vec![9, 10]);
        let err = placement.validate(&p_small, Policy::Upwards).unwrap_err();
        assert!(err.iter().any(|v| matches!(
            v,
            Violation::CapacityExceeded {
                load: 10,
                capacity: 9,
                ..
            }
        )));
    }

    #[test]
    fn assignment_to_non_replica_or_off_path_is_reported() {
        let (p, n, c) = sample();
        let mut placement = Placement::empty(3);
        placement.add_replica(n[0]);
        placement.assign(c[0], n[1], 3); // n1 has no replica
        placement.assign(c[1], n[0], 5);
        placement.assign(c[2], n[1], 2); // n1 is not on c2's path
        let err = placement.validate(&p, Policy::Multiple).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::ServerWithoutReplica { .. })));
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::ServerOffPath { .. })));
    }

    #[test]
    fn qos_violations_are_reported() {
        let (p, n, _) = sample();
        let p = ProblemInstance::builder(p.tree_arc())
            .requests(vec![3, 5, 2])
            .capacities(vec![10, 10])
            .qos(vec![Some(1), Some(2), Some(1)])
            .build();
        // Serve everything from the root: c0 is at distance 2 > 1.
        let placement = full_single_server_placement(&p, |_| n[0]);
        let err = placement.validate(&p, Policy::Upwards).unwrap_err();
        assert!(err.iter().any(|v| matches!(
            v,
            Violation::QosExceeded {
                distance: 2,
                bound: 1,
                ..
            }
        )));
    }

    #[test]
    fn bandwidth_violations_are_reported() {
        let (p, n, _) = sample();
        let p = ProblemInstance::builder(p.tree_arc())
            .requests(vec![3, 5, 2])
            .capacities(vec![10, 10])
            // The link n1 -> root can only carry 4 requests.
            .node_link_bandwidths(vec![None, Some(4)])
            .build();
        // Serve everything from the root: 8 requests cross the n1 link.
        let placement = full_single_server_placement(&p, |_| n[0]);
        let err = placement.validate(&p, Policy::Upwards).unwrap_err();
        assert!(err.iter().any(|v| matches!(
            v,
            Violation::BandwidthExceeded {
                flow: 8,
                bandwidth: 4,
                ..
            }
        )));
    }

    #[test]
    fn server_loads_and_link_flows_are_computed() {
        let (p, n, c) = sample();
        let mut placement = Placement::empty(3);
        placement.add_replica(n[0]);
        placement.add_replica(n[1]);
        placement.assign(c[0], n[1], 3);
        placement.assign(c[1], n[1], 2);
        placement.assign(c[1], n[0], 3);
        placement.assign(c[2], n[0], 2);
        let loads = placement.server_loads(p.tree().num_nodes());
        assert_eq!(loads[n[1]], 5);
        assert_eq!(loads[n[0]], 5);
        let flows = placement.link_flows(&p);
        assert_eq!(flows[LinkId::Client(c[1])], 5);
        // Only c1's 3 root-bound requests cross the n1 -> root link.
        assert_eq!(flows[LinkId::Node(n[1])], 3);
        // The dense maps enumerate every link/server exactly once.
        assert_eq!(flows.iter().count(), p.tree().num_links());
        assert_eq!(loads.iter().count(), p.tree().num_nodes());
    }

    #[test]
    fn assign_merges_duplicate_servers_and_ignores_zero() {
        let (_, n, c) = sample();
        let mut placement = Placement::empty(3);
        placement.add_replica(n[0]);
        placement.assign(c[0], n[0], 2);
        placement.assign(c[0], n[0], 3);
        placement.assign(c[0], n[0], 0);
        assert_eq!(placement.assignments(c[0]).len(), 1);
        assert_eq!(placement.assigned_requests(c[0]), 5);
        assert_eq!(placement.single_server(c[0]), Some(n[0]));
    }

    #[test]
    fn unassign_and_remove_replica_undo_assignments() {
        let (p, n, c) = sample();
        let mut placement = Placement::empty(3);
        placement.add_replica(n[0]);
        placement.add_replica(n[1]);
        placement.assign(c[0], n[1], 3);
        placement.assign(c[1], n[1], 5);
        // Partial removal keeps the entry; removing the rest drops it.
        assert_eq!(placement.unassign(c[1], n[1], 2), 2);
        assert_eq!(placement.assigned_requests(c[1]), 3);
        assert_eq!(placement.unassign(c[1], n[1], 99), 3);
        assert!(placement.assignments(c[1]).is_empty());
        // Unassigning a non-existent pair is a no-op.
        assert_eq!(placement.unassign(c[1], n[0], 1), 0);
        // Re-homing the requests restores validity for the other client.
        placement.assign(c[1], n[0], 5);
        placement.remove_replica(n[1]);
        placement.remove_replica(n[1]); // idempotent
        assert!(!placement.has_replica(n[1]));
        // c0 is still pointed at the dropped replica: validation flags it.
        let err = placement.validate(&p, Policy::Multiple).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::ServerWithoutReplica { .. })));
    }

    #[test]
    fn add_replica_is_idempotent_and_sorted() {
        let (_, n, _) = sample();
        let mut placement = Placement::empty(3);
        placement.add_replica(n[1]);
        placement.add_replica(n[0]);
        placement.add_replica(n[1]);
        assert_eq!(placement.replicas(), &[n[0], n[1]]);
    }

    #[test]
    fn violations_display_is_informative() {
        let (p, n, _) = sample();
        let placement = Placement::empty(3);
        let _ = n;
        let err = placement.validate(&p, Policy::Multiple).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("constraint violation"));
        assert!(text.contains("requests assigned"));
        assert_eq!(err.len(), 3);
        assert!(!err.is_empty());
    }

    #[test]
    fn wrong_client_count_is_detected_early() {
        let (p, _, _) = sample();
        let placement = Placement::empty(1);
        let err = placement.validate(&p, Policy::Multiple).unwrap_err();
        assert!(matches!(err.0[0], Violation::WrongClientCount { .. }));
    }
}
