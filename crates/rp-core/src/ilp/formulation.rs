//! The integer-linear-program formulations of Section 5.
//!
//! For every policy the decision variables are:
//!
//! * `x_j` — 1 when node `j` hosts a replica (always integral in the
//!   exact solves; kept integral in the *mixed* lower bound of
//!   Section 7.1, relaxed in the fully rational bound);
//! * `y_{i,j}` — under the single-server policies, 1 when `j` serves
//!   client `i`; under Multiple, the number of requests of `i` served by
//!   `j`. Only created for `j` on the path from `i` to the root and
//!   within the client's QoS bound (other `y_{i,j}` are fixed to 0 in
//!   the paper, so we simply do not create them);
//! * `z_{i,l}` — the requests of `i` flowing through link `l`. These are
//!   only materialised when needed (bandwidth constraints, or the
//!   Closest exclusion constraints), as allowed by the paper's remark
//!   that they can be eliminated otherwise.
//!
//! The objective is the total storage cost `Σ_j s_j · x_j`.

use rp_lp::{Cmp, LinExpr, Model, VarId};
use rp_tree::{ClientId, LinkId, NodeId};

use crate::policy::Policy;
use crate::problem::ProblemInstance;

/// How integral the variables should be.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Integrality {
    /// Everything integral: solving the model yields an exact optimal
    /// placement.
    Exact,
    /// Only the `x_j` are integral; `y` and `z` are rational. This is the
    /// refined lower bound used in the paper's experiments (Section 7.1).
    MixedBound,
    /// Fully rational relaxation: the cheapest bound.
    RationalBound,
}

/// The model plus the bookkeeping needed to interpret its solution.
pub struct IlpFormulation {
    /// The LP/MILP model.
    pub model: Model,
    /// `x_j` variables, indexed by node index.
    pub x: Vec<VarId>,
    /// For every client, its eligible servers and the matching `y_{i,j}`.
    pub y: Vec<Vec<(NodeId, VarId)>>,
    /// For every client, the links of its path to the root and the
    /// matching `z_{i,l}` (empty when `z` variables were not needed).
    pub z: Vec<Vec<(LinkId, VarId)>>,
    policy: Policy,
}

impl IlpFormulation {
    /// The policy this formulation encodes.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The `y` variable for a given client/server pair, if it exists.
    pub fn y_var(&self, client: ClientId, server: NodeId) -> Option<VarId> {
        self.y[client.index()]
            .iter()
            .find(|(node, _)| *node == server)
            .map(|(_, var)| *var)
    }
}

/// Builds the formulation of `problem` under `policy` with the requested
/// integrality.
pub fn build_model(
    problem: &ProblemInstance,
    policy: Policy,
    integrality: Integrality,
) -> IlpFormulation {
    let tree = problem.tree();
    let mut model = Model::minimize();

    let x_integral = matches!(integrality, Integrality::Exact | Integrality::MixedBound);
    let yz_integral = matches!(integrality, Integrality::Exact);

    // x_j: replica indicators, weighted by storage cost in the objective.
    let x: Vec<VarId> = tree
        .node_ids()
        .map(|node| {
            let cost = problem.storage_cost(node) as f64;
            if x_integral {
                model.add_binary_var(format!("x_{node}"), cost)
            } else {
                model.add_var(format!("x_{node}"), 0.0, Some(1.0), cost)
            }
        })
        .collect();

    // Do we need explicit z variables?
    let need_z = problem.has_bandwidth_limits() || policy == Policy::Closest;

    // y_{i,j} for eligible servers only.
    let mut y: Vec<Vec<(NodeId, VarId)>> = Vec::with_capacity(tree.num_clients());
    for client in tree.client_ids() {
        let mut row = Vec::new();
        for server in problem.eligible_servers(client) {
            let requests = problem.requests(client) as f64;
            let var = match policy {
                Policy::Closest | Policy::Upwards => {
                    if yz_integral {
                        model.add_binary_var(format!("y_{client}_{server}"), 0.0)
                    } else {
                        model.add_var(format!("y_{client}_{server}"), 0.0, Some(1.0), 0.0)
                    }
                }
                Policy::Multiple => {
                    if yz_integral {
                        model.add_int_var(format!("y_{client}_{server}"), 0.0, Some(requests), 0.0)
                    } else {
                        model.add_var(format!("y_{client}_{server}"), 0.0, Some(requests), 0.0)
                    }
                }
            };
            row.push((server, var));
        }
        y.push(row);
    }

    // z_{i,l} along each client's path, when needed.
    let mut z: Vec<Vec<(LinkId, VarId)>> = vec![Vec::new(); tree.num_clients()];
    if need_z {
        for client in tree.client_ids() {
            let requests = problem.requests(client) as f64;
            let mut row = Vec::new();
            for link in tree.client_path_to_root(client) {
                let upper = match policy {
                    Policy::Closest | Policy::Upwards => 1.0,
                    Policy::Multiple => requests,
                };
                let var = if yz_integral {
                    model.add_int_var(format!("z_{client}_{link}"), 0.0, Some(upper), 0.0)
                } else {
                    model.add_var(format!("z_{client}_{link}"), 0.0, Some(upper), 0.0)
                };
                row.push((link, var));
            }
            z[client.index()] = row;
        }
    }

    // --- Coverage: every client (or every request) is assigned. ---
    for client in tree.client_ids() {
        let requests = problem.requests(client);
        let rhs = match policy {
            Policy::Closest | Policy::Upwards => {
                if requests == 0 {
                    continue;
                }
                1.0
            }
            Policy::Multiple => requests as f64,
        };
        let expr = rp_lp::lin_sum(y[client.index()].iter().map(|&(_, var)| (1.0, var)));
        model.add_constraint(format!("cover_{client}"), expr, Cmp::Eq, rhs);
    }

    // --- Server capacities (also tie y to x). ---
    for node in tree.node_ids() {
        let mut expr = LinExpr::new();
        for client in tree.client_ids() {
            if let Some(var) = y_lookup(&y, client, node) {
                let coeff = match policy {
                    Policy::Closest | Policy::Upwards => problem.requests(client) as f64,
                    Policy::Multiple => 1.0,
                };
                expr.add_term(coeff, var);
            }
        }
        expr.add_term(-(problem.capacity(node) as f64), x[node.index()]);
        model.add_constraint(format!("capacity_{node}"), expr, Cmp::Le, 0.0);
    }

    // --- Link-flow recurrences and bandwidths (only when z exists). ---
    if need_z {
        for client in tree.client_ids() {
            let requests = problem.requests(client);
            let path = &z[client.index()];
            if path.is_empty() {
                continue;
            }
            // First link: everything the client sends crosses it.
            let first_rhs = match policy {
                Policy::Closest | Policy::Upwards => {
                    if requests == 0 {
                        0.0
                    } else {
                        1.0
                    }
                }
                Policy::Multiple => requests as f64,
            };
            model.add_constraint(
                format!("first_link_{client}"),
                LinExpr::var(path[0].1),
                Cmp::Eq,
                first_rhs,
            );
            // succ(l) = z_l - y_{i, upper(l)}.
            for window in 0..path.len() {
                let (link, z_var) = path[window];
                let upper = tree.link_upper(link);
                let y_upper = y_lookup(&y, client, upper);
                let next = path.get(window + 1).map(|&(_, var)| var);
                let mut expr = LinExpr::var(z_var);
                if let Some(y_var) = y_upper {
                    expr.add_term(-1.0, y_var);
                }
                match next {
                    Some(next_var) => {
                        expr.add_term(-1.0, next_var);
                        model.add_constraint(format!("flow_{client}_{link}"), expr, Cmp::Eq, 0.0);
                    }
                    None => {
                        // Topmost link: whatever crosses it must be served
                        // by the root.
                        model.add_constraint(format!("flow_{client}_{link}"), expr, Cmp::Eq, 0.0);
                    }
                }
            }
        }
        // Bandwidths: bucket every z variable by its link in one pass
        // (a per-link scan over all client paths would cost
        // O(links · clients · depth) on everything-bounded instances).
        if problem.has_bandwidth_limits() {
            let mut per_link: rp_tree::LinkMap<Vec<(f64, VarId)>> = rp_tree::LinkMap::filled(
                tree.num_clients(),
                tree.num_nodes(),
                tree.root().index(),
                Vec::new(),
            );
            for client in tree.client_ids() {
                let coeff = match policy {
                    Policy::Closest | Policy::Upwards => problem.requests(client) as f64,
                    Policy::Multiple => 1.0,
                };
                for &(link, var) in &z[client.index()] {
                    per_link[link].push((coeff, var));
                }
            }
            for link in tree.link_ids() {
                if let Some(bw) = problem.bandwidth(link) {
                    let terms = &per_link[link];
                    if !terms.is_empty() {
                        let expr = rp_lp::lin_sum(terms.iter().copied());
                        model.add_constraint(format!("bandwidth_{link}"), expr, Cmp::Le, bw as f64);
                    }
                }
            }
        }
    }

    // --- Closest exclusion constraints (Section 5.1). ---
    // If node j serves client i, then no client i' below j may send
    // requests across the link j -> parent(j):
    //   y_{i,j} <= 1 - z_{i', j -> parent(j)}.
    if policy == Policy::Closest {
        for client in tree.client_ids() {
            if problem.requests(client) == 0 {
                continue;
            }
            for &(server, y_var) in &y[client.index()] {
                if tree.is_root(server) {
                    continue;
                }
                let blocking_link = LinkId::Node(server);
                for &other in tree.subtree_clients(server) {
                    if other == client || problem.requests(other) == 0 {
                        continue;
                    }
                    if let Some(&(_, z_var)) =
                        z[other.index()].iter().find(|(l, _)| *l == blocking_link)
                    {
                        let expr = LinExpr::var(y_var).plus(1.0, z_var);
                        model.add_constraint(
                            format!("closest_{client}_{server}_{other}"),
                            expr,
                            Cmp::Le,
                            1.0,
                        );
                    }
                }
            }
        }
    }

    IlpFormulation {
        model,
        x,
        y,
        z,
        policy,
    }
}

fn y_lookup(y: &[Vec<(NodeId, VarId)>], client: ClientId, node: NodeId) -> Option<VarId> {
    y[client.index()]
        .iter()
        .find(|(n, _)| *n == node)
        .map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    fn sample() -> ProblemInstance {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(mid);
        b.add_client(root);
        ProblemInstance::replica_cost(b.build().unwrap(), vec![3, 5, 2], vec![10, 10])
    }

    #[test]
    fn multiple_formulation_without_bandwidth_has_no_z() {
        let p = sample();
        let f = build_model(&p, Policy::Multiple, Integrality::Exact);
        assert!(f.z.iter().all(|row| row.is_empty()));
        // x per node plus y per (client, eligible server):
        // c0: 2 servers, c1: 2, c2: 1 => 5 y vars + 2 x vars.
        assert_eq!(f.model.num_vars(), 7);
        assert_eq!(f.policy(), Policy::Multiple);
    }

    #[test]
    fn closest_formulation_materialises_z() {
        let p = sample();
        let f = build_model(&p, Policy::Closest, Integrality::Exact);
        assert!(f.z.iter().any(|row| !row.is_empty()));
        // The exclusion constraints must reference the link below the
        // candidate server.
        let text = f.model.to_string();
        assert!(text.contains("closest_"));
    }

    #[test]
    fn qos_restricts_the_y_variables() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![4])
            .capacities(vec![10, 10])
            .qos(vec![Some(1)])
            .build();
        let f = build_model(&p, Policy::Upwards, Integrality::Exact);
        // Only the parent (distance 1) is eligible, not the root.
        assert_eq!(f.y[0].len(), 1);
    }

    #[test]
    fn mixed_bound_keeps_x_integral_and_relaxes_y() {
        let p = sample();
        let f = build_model(&p, Policy::Multiple, Integrality::MixedBound);
        for &x in &f.x {
            assert!(f.model.variable(x).integer);
        }
        for row in &f.y {
            for &(_, var) in row {
                assert!(!f.model.variable(var).integer);
            }
        }
        let relaxed = build_model(&p, Policy::Multiple, Integrality::RationalBound);
        assert!(relaxed.model.is_pure_lp());
    }

    #[test]
    fn y_var_lookup_matches_registry() {
        let p = sample();
        let f = build_model(&p, Policy::Multiple, Integrality::Exact);
        let client = p.tree().client_ids().next().unwrap();
        let server = p.tree().parent_of_client(client);
        assert!(f.y_var(client, server).is_some());
        // The root is also eligible for this client.
        assert!(f.y_var(client, p.tree().root()).is_some());
    }

    #[test]
    fn bandwidth_limits_generate_constraints() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![4])
            .capacities(vec![10, 10])
            .node_link_bandwidths(vec![None, Some(2)])
            .build();
        let f = build_model(&p, Policy::Multiple, Integrality::Exact);
        let text = f.model.to_string();
        assert!(text.contains("bandwidth_"));
        assert!(text.contains("first_link_"));
    }
}
