//! The multi-object ILP/LP formulation (the Section 8.1 extension,
//! materialised).
//!
//! With `K` object types the decision variables of the single-object
//! Multiple formulation gain an object index:
//!
//! * `x_{k,j}` — 1 when node `j` hosts a replica of object `k`, paying
//!   the per-object storage cost `s_j^{(k)}`;
//! * `y_{k,i,j}` — requests of client `i` for object `k` served by `j`
//!   (created for `j` on the path from `i` to the root only);
//! * `z_{k,i,l}` — requests of `i` for `k` crossing link `l`, created
//!   only when the instance bounds at least one link.
//!
//! Coverage and the replica-activation rows are per object; the node
//! capacity and link bandwidth rows are **shared** — every object's
//! requests drain the same `W_j` and cross the same wire — which is
//! exactly the coupling that makes the multi-object problem harder than
//! `K` independent single-object ones. On wide-range platforms the
//! shared rows mix unit coefficients with capacities spanning several
//! decades, the ill-scaled regime the LP engine's equilibration pass
//! ([`rp_lp::Scaling`]) exists for.

use rp_lp::{lin_sum, Cmp, LinExpr, Model, VarId};
use rp_tree::{LinkId, NodeId};

use super::Integrality;
use crate::multi::MultiObjectProblem;

/// The multi-object model plus the bookkeeping needed to interpret its
/// solution (all indexed object-major).
pub struct MultiIlpFormulation {
    /// The LP/MILP model.
    pub model: Model,
    /// `x[k][j]`: replica indicators by object and node index.
    pub x: Vec<Vec<VarId>>,
    /// `y[k][i]`: per object and client, the eligible servers and the
    /// matching request variables.
    pub y: Vec<Vec<Vec<(NodeId, VarId)>>>,
    /// `z[k][i]`: per object and client, the links of the path to the
    /// root and the matching flow variables (empty without bandwidth
    /// bounds).
    pub z: Vec<Vec<Vec<(LinkId, VarId)>>>,
}

/// Builds the multi-object formulation of `problem` under the Multiple
/// policy with the requested integrality ([`Integrality::MixedBound`]
/// keeps the `x_{k,j}` integral and relaxes `y`/`z`, the multi-object
/// analogue of the paper's refined bound).
pub fn build_multi_model(
    problem: &MultiObjectProblem,
    integrality: Integrality,
) -> MultiIlpFormulation {
    let tree = problem.tree();
    let mut model = Model::minimize();

    let x_integral = matches!(integrality, Integrality::Exact | Integrality::MixedBound);
    let yz_integral = matches!(integrality, Integrality::Exact);
    let need_z = problem.has_bandwidth_limits();

    let mut x: Vec<Vec<VarId>> = Vec::with_capacity(problem.num_objects());
    let mut y: Vec<Vec<Vec<(NodeId, VarId)>>> = Vec::with_capacity(problem.num_objects());
    let mut z: Vec<Vec<Vec<(LinkId, VarId)>>> = Vec::with_capacity(problem.num_objects());
    for object in problem.object_ids() {
        let x_row: Vec<VarId> = tree
            .node_ids()
            .map(|node| {
                let cost = problem.storage_cost(object, node) as f64;
                if x_integral {
                    model.add_binary_var(format!("x_{object}_{node}"), cost)
                } else {
                    model.add_var(format!("x_{object}_{node}"), 0.0, Some(1.0), cost)
                }
            })
            .collect();
        let mut y_rows = Vec::with_capacity(tree.num_clients());
        let mut z_rows = Vec::with_capacity(tree.num_clients());
        for client in tree.client_ids() {
            let requests = problem.requests(object, client) as f64;
            let row: Vec<(NodeId, VarId)> = tree
                .ancestors_of_client(client)
                .map(|server| {
                    let name = format!("y_{object}_{client}_{server}");
                    let var = if yz_integral {
                        model.add_int_var(name, 0.0, Some(requests), 0.0)
                    } else {
                        model.add_var(name, 0.0, Some(requests), 0.0)
                    };
                    (server, var)
                })
                .collect();
            y_rows.push(row);
            let links: Vec<(LinkId, VarId)> = if need_z {
                tree.client_path_to_root(client)
                    .map(|link| {
                        let name = format!("z_{object}_{client}_{link}");
                        let var = if yz_integral {
                            model.add_int_var(name, 0.0, Some(requests), 0.0)
                        } else {
                            model.add_var(name, 0.0, Some(requests), 0.0)
                        };
                        (link, var)
                    })
                    .collect()
            } else {
                Vec::new()
            };
            z_rows.push(links);
        }
        x.push(x_row);
        y.push(y_rows);
        z.push(z_rows);
    }

    // --- Coverage: every request of every object is assigned. ---
    for object in problem.object_ids() {
        for client in tree.client_ids() {
            let requests = problem.requests(object, client);
            let expr = lin_sum(
                y[object.index()][client.index()]
                    .iter()
                    .map(|&(_, var)| (1.0, var)),
            );
            model.add_constraint(
                format!("cover_{object}_{client}"),
                expr,
                Cmp::Eq,
                requests as f64,
            );
        }
    }

    // --- Replica activation (per object) and shared capacities. ---
    for node in tree.node_ids() {
        let mut shared = LinExpr::new();
        for object in problem.object_ids() {
            let mut per_object = LinExpr::new();
            for client in tree.client_ids() {
                if let Some(&(_, var)) = y[object.index()][client.index()]
                    .iter()
                    .find(|(server, _)| *server == node)
                {
                    shared.add_term(1.0, var);
                    per_object.add_term(1.0, var);
                }
            }
            // A replica of the object must be bought before serving any
            // of its requests at this node.
            per_object.add_term(
                -(problem.capacity(node) as f64),
                x[object.index()][node.index()],
            );
            model.add_constraint(format!("replica_{object}_{node}"), per_object, Cmp::Le, 0.0);
        }
        model.add_constraint(
            format!("capacity_{node}"),
            shared,
            Cmp::Le,
            problem.capacity(node) as f64,
        );
    }

    // --- Link-flow recurrences and shared bandwidths. ---
    if need_z {
        for object in problem.object_ids() {
            for client in tree.client_ids() {
                let path = &z[object.index()][client.index()];
                if path.is_empty() {
                    continue;
                }
                // First link: everything the client requests crosses it.
                model.add_constraint(
                    format!("first_link_{object}_{client}"),
                    LinExpr::var(path[0].1),
                    Cmp::Eq,
                    problem.requests(object, client) as f64,
                );
                // succ(l) = z_l − y_{i, upper(l)} (the topmost link's
                // residual is served by the root).
                for window in 0..path.len() {
                    let (link, z_var) = path[window];
                    let upper = tree.link_upper(link);
                    let mut expr = LinExpr::var(z_var);
                    if let Some(&(_, y_var)) = y[object.index()][client.index()]
                        .iter()
                        .find(|(server, _)| *server == upper)
                    {
                        expr.add_term(-1.0, y_var);
                    }
                    if let Some(&(_, next_var)) = path.get(window + 1) {
                        expr.add_term(-1.0, next_var);
                    }
                    model.add_constraint(
                        format!("flow_{object}_{client}_{link}"),
                        expr,
                        Cmp::Eq,
                        0.0,
                    );
                }
            }
        }
        // Shared bandwidth rows: one pass over all z variables into
        // per-link buckets (a per-link scan of every client's path
        // would cost O(links · objects · clients · depth) on the
        // everything-bounded instance families).
        let mut per_link: rp_tree::LinkMap<Vec<VarId>> = rp_tree::LinkMap::filled(
            tree.num_clients(),
            tree.num_nodes(),
            tree.root().index(),
            Vec::new(),
        );
        for object_rows in &z {
            for path in object_rows {
                for &(link, var) in path {
                    per_link[link].push(var);
                }
            }
        }
        for link in tree.link_ids() {
            if let Some(bw) = problem.bandwidth(link) {
                let vars = &per_link[link];
                if !vars.is_empty() {
                    let expr = lin_sum(vars.iter().map(|&var| (1.0, var)));
                    model.add_constraint(format!("bandwidth_{link}"), expr, Cmp::Le, bw as f64);
                }
            }
        }
    }

    MultiIlpFormulation { model, x, y, z }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    /// root -> hub -> {c0, c1}; root -> c2.
    fn two_object_problem() -> MultiObjectProblem {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let hub = b.add_node(root);
        b.add_client(hub);
        b.add_client(hub);
        b.add_client(root);
        MultiObjectProblem::new(
            b.build().unwrap(),
            vec![vec![3, 2, 1], vec![1, 4, 2]],
            vec![10, 8],
            vec![vec![5, 4], vec![6, 3]],
        )
    }

    #[test]
    fn bandwidth_free_formulation_has_no_z() {
        let p = two_object_problem();
        let f = build_multi_model(&p, Integrality::Exact);
        assert!(f.z.iter().flatten().all(|row| row.is_empty()));
        // 2 objects × (2 x vars + 5 y vars) = 14 variables.
        assert_eq!(f.model.num_vars(), 14);
        // 2×3 cover + 2×2 replica + 2 shared capacity rows.
        assert_eq!(f.model.num_constraints(), 12);
    }

    #[test]
    fn bandwidth_bounds_materialise_per_object_z_and_shared_rows() {
        let p = two_object_problem().with_link_bandwidths(
            vec![None, None, None],
            vec![None, Some(4)], // hub -> root
        );
        let f = build_multi_model(&p, Integrality::Exact);
        assert!(p.has_bandwidth_limits());
        assert!(f.z.iter().flatten().any(|row| !row.is_empty()));
        let text = f.model.to_string();
        assert!(text.contains("bandwidth_"));
        assert!(text.contains("first_link_obj0"));
        assert!(text.contains("first_link_obj1"));
        // The shared bandwidth row references z variables of both objects.
        let bandwidth_row = f
            .model
            .constraint_ids()
            .map(|id| f.model.constraint(id))
            .find(|c| c.name.starts_with("bandwidth_"))
            .expect("one bounded link");
        assert!(bandwidth_row.terms.len() >= 4, "{:?}", bandwidth_row.terms);
    }

    #[test]
    fn mixed_bound_keeps_x_integral_and_relaxes_y_and_z() {
        let p = two_object_problem()
            .with_link_bandwidths(vec![Some(5), Some(5), Some(5)], vec![None, Some(6)]);
        let f = build_multi_model(&p, Integrality::MixedBound);
        for x in f.x.iter().flatten() {
            assert!(f.model.variable(*x).integer);
        }
        for &(_, var) in f.y.iter().flatten().flatten() {
            assert!(!f.model.variable(var).integer);
        }
        for &(_, var) in f.z.iter().flatten().flatten() {
            assert!(!f.model.variable(var).integer);
        }
        let relaxed = build_multi_model(&p, Integrality::RationalBound);
        assert!(relaxed.model.is_pure_lp());
    }
}
