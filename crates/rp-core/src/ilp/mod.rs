//! ILP-based exact solves and LP-based lower bounds (Sections 5 and
//! 7.1), for the single-object formulations — bandwidth-constrained
//! variants included — and the multi-object extension of Section 8.1
//! ([`build_multi_model`], [`multi_lower_bound`]).

mod formulation;
mod multi_formulation;

pub use formulation::{build_model, IlpFormulation, Integrality};
pub use multi_formulation::{build_multi_model, MultiIlpFormulation};

use rp_lp::{
    solve_lp_engine, solve_milp_reusing, solve_milp_with, BranchBoundOptions, LpEngine,
    LpWorkspace, SimplexOptions, Status,
};

use crate::multi::MultiObjectProblem;
use crate::policy::Policy;
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Options for the ILP solver.
#[derive(Clone, Copy, Debug)]
pub struct IlpOptions {
    /// Options of the underlying branch-and-bound / simplex, including
    /// the [`LpEngine`] that solves the relaxations (revised simplex by
    /// default; the dense tableau remains available as the
    /// differential-testing oracle).
    pub branch_bound: BranchBoundOptions,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            branch_bound: BranchBoundOptions {
                max_nodes: 20_000,
                ..BranchBoundOptions::default()
            },
        }
    }
}

impl IlpOptions {
    /// Default options running on the given LP engine.
    pub fn with_engine(engine: LpEngine) -> Self {
        let mut options = IlpOptions::default();
        options.branch_bound.engine = engine;
        options
    }
}

/// Result of an exact ILP solve.
#[derive(Clone, Debug)]
pub enum IlpOutcome {
    /// An optimal placement was found and extracted.
    Optimal(Placement),
    /// The instance is infeasible under the requested policy.
    Infeasible,
    /// The node limit was hit before optimality was proven; the best
    /// incumbent (if any) is returned.
    NodeLimit(Option<Placement>),
}

impl IlpOutcome {
    /// The placement, when one is available (optimal or incumbent).
    pub fn into_placement(self) -> Option<Placement> {
        match self {
            IlpOutcome::Optimal(p) => Some(p),
            IlpOutcome::Infeasible => None,
            IlpOutcome::NodeLimit(p) => p,
        }
    }
}

/// Solves the exact ILP for `problem` under `policy` and extracts the
/// placement.
pub fn solve_exact_ilp(problem: &ProblemInstance, policy: Policy) -> IlpOutcome {
    solve_exact_ilp_with(problem, policy, &IlpOptions::default())
}

/// [`solve_exact_ilp`] with explicit options.
pub fn solve_exact_ilp_with(
    problem: &ProblemInstance,
    policy: Policy,
    options: &IlpOptions,
) -> IlpOutcome {
    let formulation = build_model(problem, policy, Integrality::Exact);
    let outcome = solve_milp_with(&formulation.model, &options.branch_bound);
    match outcome.status {
        Status::Infeasible => IlpOutcome::Infeasible,
        Status::Optimal => {
            let incumbent = outcome
                .incumbent
                .expect("optimal status implies an incumbent");
            IlpOutcome::Optimal(extract_placement(
                problem,
                policy,
                &formulation,
                &incumbent.values,
            ))
        }
        _ => IlpOutcome::NodeLimit(
            outcome
                .incumbent
                .map(|s| extract_placement(problem, policy, &formulation, &s.values)),
        ),
    }
}

/// Which LP relaxation to use for the lower bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoundKind {
    /// Fully rational relaxation of the Multiple formulation — cheapest
    /// to compute, weakest bound.
    Rational,
    /// The paper's refined bound (Section 7.1): `x_j` integral, request
    /// variables rational. Falls back to the weakest open-node
    /// relaxation when the branch-and-bound node limit is hit, which is
    /// still a valid lower bound.
    Mixed,
}

/// An LP-based lower bound on the optimal replica cost.
///
/// The bound is computed on the **Multiple** formulation: since any
/// Closest or Upwards solution is also a Multiple solution, the value is
/// a valid lower bound for all three policies (this is exactly how the
/// paper's experiments use it). Returns `None` when even the Multiple
/// relaxation is infeasible (no policy has a solution).
pub fn lower_bound(problem: &ProblemInstance, kind: BoundKind) -> Option<f64> {
    lower_bound_with(problem, kind, &IlpOptions::default())
}

/// [`lower_bound`] with explicit options.
pub fn lower_bound_with(
    problem: &ProblemInstance,
    kind: BoundKind,
    options: &IlpOptions,
) -> Option<f64> {
    let mut workspace = LpWorkspace::new();
    lower_bound_reusing(problem, kind, options, &mut workspace)
}

/// [`lower_bound`] reusing the LP buffers of `workspace` across calls —
/// the path the sweep harness drives, with one workspace pinned per
/// worker thread.
pub fn lower_bound_reusing(
    problem: &ProblemInstance,
    kind: BoundKind,
    options: &IlpOptions,
    workspace: &mut LpWorkspace,
) -> Option<f64> {
    match kind {
        BoundKind::Rational => {
            let formulation = build_model(problem, Policy::Multiple, Integrality::RationalBound);
            let solution = solve_lp_engine(
                &formulation.model,
                options.branch_bound.engine,
                &options.branch_bound.simplex,
                workspace,
            );
            match solution.status {
                Status::Optimal => Some(solution.objective),
                Status::Infeasible => None,
                // A failed solve yields no usable bound; fall back to 0,
                // which is always valid.
                _ => Some(0.0),
            }
        }
        BoundKind::Mixed => {
            let formulation = build_model(problem, Policy::Multiple, Integrality::MixedBound);
            let outcome = solve_milp_reusing(&formulation.model, &options.branch_bound, workspace);
            match outcome.status {
                Status::Infeasible => None,
                Status::Unbounded => Some(0.0),
                _ => outcome.bound.or(Some(0.0)),
            }
        }
    }
}

/// The fractional optimum of the rational Multiple relaxation — the
/// part of an LP solve that [`lower_bound`] used to discard.
///
/// This is the raw material of the LP-guided rounding heuristics
/// ([`crate::heuristics::lp_guided`]): besides the bound itself it
/// carries the per-node replica mass `x_j ∈ [0, 1]` and, per client,
/// the fractional request split `y_{i,j}` over its eligible servers
/// (entries below the extraction tolerance are dropped — on the
/// near-degenerate replica LPs most `y` values are exactly zero).
#[derive(Clone, Debug)]
pub struct FractionalLp {
    /// The rational LP bound (the objective of the relaxation).
    pub bound: f64,
    /// `replica_mass[j]` = the fractional `x_j`, indexed by node index.
    pub replica_mass: Vec<f64>,
    /// `assignment[i]` = the servers with positive fractional
    /// `y_{i,j}`, in path order (closest ancestor first).
    pub assignment: Vec<Vec<(rp_tree::NodeId, f64)>>,
}

/// Extraction tolerance: fractional values at or below this are treated
/// as structural zeros.
const FRACTIONAL_TOLERANCE: f64 = 1e-7;

/// Solves the rational Multiple relaxation and surfaces the full
/// fractional optimum (bound, per-node `x`, per-client `y`). Returns
/// `None` when the relaxation is infeasible **or** did not reach
/// optimality — unlike [`lower_bound`], a truncated solve yields no
/// usable fractional point, so no fallback bound is reported.
pub fn lower_bound_fractional(
    problem: &ProblemInstance,
    options: &IlpOptions,
) -> Option<FractionalLp> {
    let mut workspace = LpWorkspace::new();
    lower_bound_fractional_reusing(problem, options, &mut workspace)
}

/// [`lower_bound_fractional`] reusing the LP buffers of `workspace` —
/// the path the scenario sweep drives, one workspace per worker.
pub fn lower_bound_fractional_reusing(
    problem: &ProblemInstance,
    options: &IlpOptions,
    workspace: &mut LpWorkspace,
) -> Option<FractionalLp> {
    let formulation = build_model(problem, Policy::Multiple, Integrality::RationalBound);
    let solution = solve_lp_engine(
        &formulation.model,
        options.branch_bound.engine,
        &options.branch_bound.simplex,
        workspace,
    );
    if solution.status != Status::Optimal {
        return None;
    }
    let replica_mass = formulation
        .x
        .iter()
        .map(|&var| solution.value(var).clamp(0.0, 1.0))
        .collect();
    let assignment = formulation
        .y
        .iter()
        .map(|row| {
            solution
                .fractional_assignment(row, FRACTIONAL_TOLERANCE)
                .collect()
        })
        .collect();
    Some(FractionalLp {
        bound: solution.objective,
        replica_mass,
        assignment,
    })
}

/// The multi-object counterpart of [`FractionalLp`]: everything is
/// object-major, mirroring [`MultiIlpFormulation`].
#[derive(Clone, Debug)]
pub struct MultiFractionalLp {
    /// The rational LP bound of the shared relaxation.
    pub bound: f64,
    /// `replica_mass[k][j]` = the fractional `x_{k,j}`.
    pub replica_mass: Vec<Vec<f64>>,
    /// `assignment[k][i]` = servers with positive fractional
    /// `y_{k,i,j}`, in path order.
    pub assignment: Vec<Vec<Vec<(rp_tree::NodeId, f64)>>>,
}

/// Solves the rational multi-object relaxation and surfaces the full
/// fractional optimum. Same contract as [`lower_bound_fractional`].
pub fn multi_lower_bound_fractional(
    problem: &MultiObjectProblem,
    options: &IlpOptions,
) -> Option<MultiFractionalLp> {
    let mut workspace = LpWorkspace::new();
    multi_lower_bound_fractional_reusing(problem, options, &mut workspace)
}

/// [`multi_lower_bound_fractional`] reusing the LP buffers of
/// `workspace`.
pub fn multi_lower_bound_fractional_reusing(
    problem: &MultiObjectProblem,
    options: &IlpOptions,
    workspace: &mut LpWorkspace,
) -> Option<MultiFractionalLp> {
    let formulation = build_multi_model(problem, Integrality::RationalBound);
    let solution = solve_lp_engine(
        &formulation.model,
        options.branch_bound.engine,
        &options.branch_bound.simplex,
        workspace,
    );
    if solution.status != Status::Optimal {
        return None;
    }
    let replica_mass = formulation
        .x
        .iter()
        .map(|row| {
            row.iter()
                .map(|&var| solution.value(var).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    let assignment = formulation
        .y
        .iter()
        .map(|object_rows| {
            object_rows
                .iter()
                .map(|row| {
                    solution
                        .fractional_assignment(row, FRACTIONAL_TOLERANCE)
                        .collect()
                })
                .collect()
        })
        .collect();
    Some(MultiFractionalLp {
        bound: solution.objective,
        replica_mass,
        assignment,
    })
}

/// An LP-based lower bound on the optimal **multi-object** replica cost
/// (the Section 8.1 extension): the relaxation of
/// [`build_multi_model`]'s Multiple-policy formulation, shared link
/// bandwidths included when the instance bounds its links. Returns
/// `None` when even the relaxation is infeasible.
pub fn multi_lower_bound(problem: &MultiObjectProblem, kind: BoundKind) -> Option<f64> {
    multi_lower_bound_with(problem, kind, &IlpOptions::default())
}

/// [`multi_lower_bound`] with explicit options.
pub fn multi_lower_bound_with(
    problem: &MultiObjectProblem,
    kind: BoundKind,
    options: &IlpOptions,
) -> Option<f64> {
    let mut workspace = LpWorkspace::new();
    multi_lower_bound_reusing(problem, kind, options, &mut workspace)
}

/// [`multi_lower_bound`] reusing the LP buffers of `workspace` — the
/// path the multi-object scenario sweep drives, one workspace per
/// worker.
pub fn multi_lower_bound_reusing(
    problem: &MultiObjectProblem,
    kind: BoundKind,
    options: &IlpOptions,
    workspace: &mut LpWorkspace,
) -> Option<f64> {
    match kind {
        BoundKind::Rational => {
            let formulation = build_multi_model(problem, Integrality::RationalBound);
            let solution = solve_lp_engine(
                &formulation.model,
                options.branch_bound.engine,
                &options.branch_bound.simplex,
                workspace,
            );
            match solution.status {
                Status::Optimal => Some(solution.objective),
                Status::Infeasible => None,
                _ => Some(0.0),
            }
        }
        BoundKind::Mixed => {
            let formulation = build_multi_model(problem, Integrality::MixedBound);
            let outcome = solve_milp_reusing(&formulation.model, &options.branch_bound, workspace);
            match outcome.status {
                Status::Infeasible => None,
                Status::Unbounded => Some(0.0),
                _ => outcome.bound.or(Some(0.0)),
            }
        }
    }
}

/// Rounds an LP lower bound up to the next integer (all storage costs
/// are integral, so this is still a valid bound), guarding against
/// floating-point noise.
pub fn integral_lower_bound(bound: f64) -> u64 {
    (bound - 1e-6).ceil().max(0.0) as u64
}

/// Turns an (integral) ILP solution back into a [`Placement`].
fn extract_placement(
    problem: &ProblemInstance,
    policy: Policy,
    formulation: &IlpFormulation,
    values: &[f64],
) -> Placement {
    let tree = problem.tree();
    let mut placement = Placement::empty(tree.num_clients());
    for (index, &x_var) in formulation.x.iter().enumerate() {
        if values[x_var.index()] > 0.5 {
            placement.add_replica(rp_tree::NodeId::from_index(index));
        }
    }
    for client in tree.client_ids() {
        let requests = problem.requests(client);
        if requests == 0 {
            continue;
        }
        for &(server, y_var) in &formulation.y[client.index()] {
            let value = values[y_var.index()];
            let amount = match policy {
                Policy::Closest | Policy::Upwards => {
                    if value > 0.5 {
                        requests
                    } else {
                        0
                    }
                }
                Policy::Multiple => value.round().max(0.0) as u64,
            };
            if amount > 0 {
                placement.assign(client, server, amount);
            }
        }
    }
    placement
}

/// Convenience: the cost of the exact ILP optimum, if feasible and
/// proven optimal within the node limit.
pub fn exact_optimal_cost(problem: &ProblemInstance, policy: Policy) -> Option<u64> {
    match solve_exact_ilp(problem, policy) {
        IlpOutcome::Optimal(p) => Some(p.cost(problem)),
        _ => None,
    }
}

/// Simplex options tuned for the larger relaxations used in experiment
/// sweeps (looser tolerance, higher iteration budget).
pub fn sweep_simplex_options() -> SimplexOptions {
    SimplexOptions {
        tolerance: 1e-6,
        max_iterations: Some(200_000),
        bland_after: 20_000,
        ..SimplexOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{optimal_cost, solve_multiple_homogeneous};
    use rp_tree::TreeBuilder;

    fn small_instance() -> ProblemInstance {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let c = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(c);
        b.add_client(root);
        ProblemInstance::replica_cost(b.build().unwrap(), vec![3, 2, 4, 1], vec![6, 5, 4])
    }

    #[test]
    fn ilp_matches_the_exhaustive_oracle_on_all_policies() {
        let p = small_instance();
        for policy in Policy::ALL {
            let ilp = exact_optimal_cost(&p, policy);
            let oracle = optimal_cost(&p, policy);
            assert_eq!(ilp, oracle, "policy {policy}");
            if let IlpOutcome::Optimal(placement) = solve_exact_ilp(&p, policy) {
                assert!(
                    placement.is_valid(&p, policy),
                    "ILP placement invalid for {policy}"
                );
            }
        }
    }

    #[test]
    fn ilp_matches_the_polynomial_multiple_algorithm() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let c = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(c);
        b.add_client(root);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![3, 1, 2, 2], 4);
        let algorithmic = solve_multiple_homogeneous(&p)
            .into_placement()
            .map(|pl| pl.cost(&p));
        assert_eq!(exact_optimal_cost(&p, Policy::Multiple), algorithmic);
    }

    #[test]
    fn infeasible_instances_are_reported() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![5], 2);
        for policy in Policy::ALL {
            assert!(matches!(
                solve_exact_ilp(&p, policy),
                IlpOutcome::Infeasible
            ));
        }
        assert_eq!(lower_bound(&p, BoundKind::Rational), None);
        assert_eq!(lower_bound(&p, BoundKind::Mixed), None);
    }

    #[test]
    fn bounds_never_exceed_the_optimum_and_mixed_dominates_rational() {
        let p = small_instance();
        let optimum = optimal_cost(&p, Policy::Multiple).unwrap() as f64;
        let rational = lower_bound(&p, BoundKind::Rational).unwrap();
        let mixed = lower_bound(&p, BoundKind::Mixed).unwrap();
        assert!(rational <= optimum + 1e-6);
        assert!(mixed <= optimum + 1e-6);
        assert!(mixed + 1e-6 >= rational);
    }

    #[test]
    fn bounds_agree_between_the_revised_and_dense_engines() {
        let p = small_instance();
        for kind in [BoundKind::Rational, BoundKind::Mixed] {
            let revised = lower_bound_with(&p, kind, &IlpOptions::with_engine(LpEngine::Revised));
            let dense =
                lower_bound_with(&p, kind, &IlpOptions::with_engine(LpEngine::DenseTableau));
            match (revised, dense) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6, "{kind:?}: {a} vs {b}"),
                other => panic!("engine disagreement for {kind:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn reused_workspace_reports_the_same_bounds() {
        let p = small_instance();
        let options = IlpOptions::default();
        let mut workspace = LpWorkspace::new();
        for kind in [BoundKind::Rational, BoundKind::Mixed, BoundKind::Rational] {
            let reused = lower_bound_reusing(&p, kind, &options, &mut workspace);
            let fresh = lower_bound_with(&p, kind, &options);
            match (reused, fresh) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6, "{kind:?}: {a} vs {b}"),
                other => panic!("workspace reuse changed the bound for {kind:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn integral_lower_bound_rounds_up_safely() {
        assert_eq!(integral_lower_bound(3.0000001), 3);
        assert_eq!(integral_lower_bound(3.2), 4);
        assert_eq!(integral_lower_bound(0.0), 0);
        assert_eq!(integral_lower_bound(-0.5), 0);
    }

    #[test]
    fn closest_ilp_detects_figure_1b_infeasibility() {
        let mut b = TreeBuilder::new();
        let s2 = b.add_root();
        let s1 = b.add_node(s2);
        b.add_client(s1);
        b.add_client(s1);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![1, 1], 1);
        assert!(matches!(
            solve_exact_ilp(&p, Policy::Closest),
            IlpOutcome::Infeasible
        ));
        assert_eq!(exact_optimal_cost(&p, Policy::Upwards), Some(2));
        assert_eq!(exact_optimal_cost(&p, Policy::Multiple), Some(2));
    }

    #[test]
    fn qos_constrained_ilp_matches_oracle() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![2, 1])
            .capacities(vec![3, 3])
            .storage_costs(vec![3, 3])
            .qos(vec![Some(1), Some(1)])
            .build();
        // The mid client may only use mid; the root client only the root.
        for policy in Policy::ALL {
            assert_eq!(exact_optimal_cost(&p, policy), Some(6), "policy {policy}");
        }
    }

    #[test]
    fn multi_object_bounds_never_exceed_the_exact_optimum() {
        use crate::multi::{solve_multi_ilp, MultiObjectProblem};
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let hub = b.add_node(root);
        b.add_client(hub);
        b.add_client(hub);
        b.add_client(root);
        let p = MultiObjectProblem::new(
            b.build().unwrap(),
            vec![vec![3, 2, 1], vec![1, 4, 2]],
            vec![10, 8],
            vec![vec![5, 4], vec![6, 3]],
        );
        let optimum = solve_multi_ilp(&p).expect("feasible").cost(&p) as f64;
        let rational = multi_lower_bound(&p, BoundKind::Rational).unwrap();
        let mixed = multi_lower_bound(&p, BoundKind::Mixed).unwrap();
        assert!(rational <= optimum + 1e-6);
        assert!(mixed <= optimum + 1e-6);
        assert!(mixed + 1e-6 >= rational);
        // Both engines agree on the multi-object relaxation.
        for kind in [BoundKind::Rational, BoundKind::Mixed] {
            let revised =
                multi_lower_bound_with(&p, kind, &IlpOptions::with_engine(LpEngine::Revised));
            let dense =
                multi_lower_bound_with(&p, kind, &IlpOptions::with_engine(LpEngine::DenseTableau));
            match (revised, dense) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6, "{kind:?}: {a} vs {b}"),
                other => panic!("engine disagreement for {kind:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn multi_object_bandwidth_bound_detects_link_starvation() {
        use crate::multi::MultiObjectProblem;
        // Two objects of 4 requests each under the hub (capacity 4): at
        // most 4 served locally, the rest crosses hub -> root. Link
        // bandwidth 4 leaves exactly enough; 3 starves the uplink.
        let build = |uplink: u64| {
            let mut b = TreeBuilder::new();
            let root = b.add_root();
            let hub = b.add_node(root);
            b.add_client(hub);
            b.add_client(hub);
            MultiObjectProblem::new(
                b.build().unwrap(),
                vec![vec![4, 0], vec![0, 4]],
                vec![10, 4],
                vec![vec![10, 1], vec![6, 5]],
            )
            .with_link_bandwidths(vec![None, None], vec![None, Some(uplink)])
        };
        assert!(multi_lower_bound(&build(4), BoundKind::Rational).is_some());
        assert_eq!(multi_lower_bound(&build(3), BoundKind::Rational), None);
        assert_eq!(multi_lower_bound(&build(3), BoundKind::Mixed), None);
    }

    #[test]
    fn bandwidth_constrained_ilp_is_tighter() {
        // One client with 4 requests under mid; the link mid -> root only
        // carries 1 request. Serving from the root alone is impossible.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let tree = b.build().unwrap();
        let unconstrained = ProblemInstance::builder(tree.clone())
            .requests(vec![4])
            .capacities(vec![10, 3])
            .storage_costs(vec![10, 3])
            .build();
        // Without bandwidth limits the cheapest solution serves the whole
        // client from the root (cost 10).
        assert_eq!(
            exact_optimal_cost(&unconstrained, Policy::Multiple),
            Some(10)
        );
        let constrained = ProblemInstance::builder(tree)
            .requests(vec![4])
            .capacities(vec![10, 3])
            .storage_costs(vec![10, 3])
            .node_link_bandwidths(vec![None, Some(0)])
            .build();
        // With a dead link above mid, everything must be served at mid,
        // whose capacity (3) is too small: infeasible.
        assert!(matches!(
            solve_exact_ilp(&constrained, Policy::Multiple),
            IlpOutcome::Infeasible
        ));
    }
}
