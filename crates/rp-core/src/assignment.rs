//! Request-to-server assignment procedures for a *fixed* replica set.
//!
//! Several components need to answer the question "given this set of
//! replicas, can the clients' requests be routed to them, and how?":
//!
//! * under **Closest** the assignment is forced (every client uses the
//!   first replica on its path), so feasibility is a simple check;
//! * under **Multiple** a greedy bottom-up pass is optimal: serving
//!   requests as low as possible never hurts the nodes above;
//! * under **Upwards** feasibility is a bin-packing-like question
//!   (NP-hard in general, Section 4.2), solved here by backtracking for
//!   the small instances used by the exhaustive oracle.
//!
//! These procedures are shared by the exact solvers, the Multiple Greedy
//! heuristic and several tests.

use rp_tree::{ClientId, NodeId, NodeMap};

use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Computes the (forced) Closest assignment for a replica set, checking
/// capacities and QoS. Returns `None` when the replica set is infeasible
/// under the Closest policy.
pub fn closest_assignment(problem: &ProblemInstance, replicas: &[NodeId]) -> Option<Placement> {
    let tree = problem.tree();
    let mut placement = Placement::empty(tree.num_clients());
    for &r in replicas {
        placement.add_replica(r);
    }
    let mut loads: NodeMap<u64> = NodeMap::filled(tree.num_nodes(), 0);
    for client in tree.client_ids() {
        let requests = problem.requests(client);
        if requests == 0 {
            continue;
        }
        let server = tree
            .ancestors_of_client(client)
            .into_iter()
            .find(|n| placement.has_replica(*n))?;
        if let Some(q) = problem.qos(client) {
            let distance = tree
                .client_distance(client, server)
                .expect("server is an ancestor of the client");
            if distance > q {
                return None;
            }
        }
        loads[server] += requests;
        placement.assign(client, server, requests);
    }
    for node in tree.node_ids() {
        if loads[node] > problem.capacity(node) {
            return None;
        }
    }
    Some(placement)
}

/// Computes a Multiple assignment for a replica set by a greedy
/// bottom-up pass: each replica serves as many pending requests from its
/// subtree as its remaining capacity allows, prioritising the clients
/// with the least QoS headroom. Returns `None` when some requests cannot
/// be served.
///
/// Without QoS constraints this greedy is exact: if any assignment
/// exists, the greedy finds one (serving a request at the lowest
/// possible replica only decreases the flow seen higher up). With the
/// QoS-by-distance extension, serving the most constrained clients first
/// preserves exactness by the usual exchange argument on nested paths.
pub fn greedy_multiple_assignment(
    problem: &ProblemInstance,
    replicas: &[NodeId],
) -> Option<Placement> {
    let tree = problem.tree();
    let mut placement = Placement::empty(tree.num_clients());
    for &r in replicas {
        placement.add_replica(r);
    }

    // Remaining requests per client.
    let mut remaining: Vec<u64> = tree.client_ids().map(|c| problem.requests(c)).collect();
    // Pending clients per node: clients of the node's subtree that still
    // have unassigned requests, accumulated bottom-up.
    let mut pending: Vec<Vec<ClientId>> = vec![Vec::new(); tree.num_nodes()];

    let node_depth: Vec<u32> = tree.node_ids().map(|n| tree.node_depth(n)).collect();

    for &node in tree.postorder_nodes() {
        // Gather pending clients from direct client children and child nodes.
        let mut clients: Vec<ClientId> = Vec::new();
        for &c in tree.child_clients(node) {
            if remaining[c.index()] > 0 {
                clients.push(c);
            }
        }
        for &child in tree.child_nodes(node) {
            clients.append(&mut pending[child.index()]);
        }

        if placement.has_replica(node) {
            let mut capacity_left = problem.capacity(node);
            // Serve the clients with the smallest QoS headroom first.
            clients.sort_by_key(|&c| qos_headroom(problem, c, node_depth[node.index()]));
            for &client in &clients {
                if capacity_left == 0 {
                    break;
                }
                if remaining[client.index()] == 0 {
                    continue;
                }
                if !client_may_use(problem, client, node, node_depth[node.index()]) {
                    continue;
                }
                let amount = remaining[client.index()].min(capacity_left);
                placement.assign(client, node, amount);
                remaining[client.index()] -= amount;
                capacity_left -= amount;
            }
        }

        clients.retain(|&c| remaining[c.index()] > 0);
        pending[node.index()] = clients;
    }

    if remaining.iter().all(|&r| r == 0) {
        Some(placement)
    } else {
        None
    }
}

/// QoS headroom of `client` when served at a node of depth `server_depth`:
/// the number of additional hops the client could still climb. Clients
/// without a QoS bound get the maximum headroom (served last).
fn qos_headroom(problem: &ProblemInstance, client: ClientId, server_depth: u32) -> i64 {
    match problem.qos(client) {
        None => i64::MAX,
        Some(q) => {
            let distance = problem.tree().client_depth(client) as i64 - server_depth as i64;
            q as i64 - distance
        }
    }
}

fn client_may_use(
    problem: &ProblemInstance,
    client: ClientId,
    server: NodeId,
    server_depth: u32,
) -> bool {
    match problem.qos(client) {
        None => true,
        Some(q) => {
            let distance = problem.tree().client_depth(client) as i64 - server_depth as i64;
            let _ = server;
            distance <= q as i64
        }
    }
}

/// Options for the Upwards backtracking assignment.
#[derive(Clone, Copy, Debug)]
pub struct UpwardsSearchOptions {
    /// Maximum number of explored branches before giving up (treated as
    /// infeasible; generous enough for oracle-sized instances).
    pub max_steps: usize,
}

impl Default for UpwardsSearchOptions {
    fn default() -> Self {
        UpwardsSearchOptions {
            max_steps: 2_000_000,
        }
    }
}

/// Searches for a single-server (Upwards) assignment onto a fixed
/// replica set by backtracking over the clients in non-increasing
/// request order. Exact for small instances; intended as a test oracle.
pub fn upwards_assignment_backtracking(
    problem: &ProblemInstance,
    replicas: &[NodeId],
    options: &UpwardsSearchOptions,
) -> Option<Placement> {
    let tree = problem.tree();
    let mut placement = Placement::empty(tree.num_clients());
    for &r in replicas {
        placement.add_replica(r);
    }

    let mut clients: Vec<ClientId> = tree
        .client_ids()
        .filter(|&c| problem.requests(c) > 0)
        .collect();
    clients.sort_by_key(|&c| std::cmp::Reverse(problem.requests(c)));

    // Eligible replica ancestors per client (respecting QoS).
    let candidates: Vec<Vec<NodeId>> = clients
        .iter()
        .map(|&c| {
            problem
                .eligible_servers(c)
                .filter(|n| placement.has_replica(*n))
                .collect()
        })
        .collect();

    let mut remaining_capacity: NodeMap<u64> =
        NodeMap::from_vec(tree.node_ids().map(|n| problem.capacity(n)).collect());
    let mut chosen: Vec<Option<NodeId>> = vec![None; clients.len()];
    let mut steps = 0usize;

    if !backtrack(
        problem,
        &clients,
        &candidates,
        &mut remaining_capacity,
        &mut chosen,
        0,
        &mut steps,
        options.max_steps,
    ) {
        return None;
    }

    for (idx, &client) in clients.iter().enumerate() {
        let server = chosen[idx].expect("assignment chosen for every client");
        placement.assign(client, server, problem.requests(client));
    }
    Some(placement)
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    problem: &ProblemInstance,
    clients: &[ClientId],
    candidates: &[Vec<NodeId>],
    remaining: &mut NodeMap<u64>,
    chosen: &mut Vec<Option<NodeId>>,
    index: usize,
    steps: &mut usize,
    max_steps: usize,
) -> bool {
    if index == clients.len() {
        return true;
    }
    if *steps >= max_steps {
        return false;
    }
    let client = clients[index];
    let requests = problem.requests(client);
    for &server in &candidates[index] {
        if remaining[server] >= requests {
            *steps += 1;
            remaining[server] -= requests;
            chosen[index] = Some(server);
            if backtrack(
                problem,
                clients,
                candidates,
                remaining,
                chosen,
                index + 1,
                steps,
                max_steps,
            ) {
                return true;
            }
            chosen[index] = None;
            remaining[server] += requests;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use rp_tree::TreeBuilder;

    /// Figure 1's two-node chain: s2 (root) -> s1, with `children` clients
    /// below s1, each issuing `requests` requests; W = 1.
    fn figure1(children: usize, requests: u64) -> (ProblemInstance, NodeId, NodeId) {
        let mut b = TreeBuilder::new();
        let s2 = b.add_root();
        let s1 = b.add_node(s2);
        for _ in 0..children {
            b.add_client(s1);
        }
        let tree = b.build().unwrap();
        let reqs = vec![requests; children];
        let p = ProblemInstance::replica_counting(tree, reqs, 1);
        (p, s1, s2)
    }

    #[test]
    fn closest_assignment_on_figure_1a() {
        let (p, s1, s2) = figure1(1, 1);
        // A single replica on s1 (or s2) serves the single request.
        for server in [s1, s2] {
            let placement = closest_assignment(&p, &[server]).unwrap();
            assert!(placement.is_valid(&p, Policy::Closest));
            assert_eq!(placement.cost(&p), 1);
        }
    }

    #[test]
    fn closest_assignment_fails_on_figure_1b() {
        let (p, s1, s2) = figure1(2, 1);
        // Two unit clients, W = 1: Closest cannot split them even with
        // replicas on both nodes (both clients are forced onto s1).
        assert!(closest_assignment(&p, &[s1, s2]).is_none());
        assert!(closest_assignment(&p, &[s1]).is_none());
        assert!(closest_assignment(&p, &[s2]).is_none());
    }

    #[test]
    fn upwards_assignment_succeeds_on_figure_1b() {
        let (p, s1, s2) = figure1(2, 1);
        let placement =
            upwards_assignment_backtracking(&p, &[s1, s2], &UpwardsSearchOptions::default())
                .unwrap();
        assert!(placement.is_valid(&p, Policy::Upwards));
        assert_eq!(placement.num_replicas(), 2);
    }

    #[test]
    fn upwards_assignment_fails_on_figure_1c() {
        let (p, s1, s2) = figure1(1, 2);
        // A single client with 2 requests cannot be served by a single
        // W = 1 server.
        assert!(
            upwards_assignment_backtracking(&p, &[s1, s2], &UpwardsSearchOptions::default())
                .is_none()
        );
    }

    #[test]
    fn multiple_assignment_succeeds_on_figure_1c() {
        let (p, s1, s2) = figure1(1, 2);
        let placement = greedy_multiple_assignment(&p, &[s1, s2]).unwrap();
        assert!(placement.is_valid(&p, Policy::Multiple));
        let client = p.tree().client_ids().next().unwrap();
        assert_eq!(placement.assignments(client).len(), 2);
    }

    #[test]
    fn multiple_assignment_fails_when_capacity_is_short() {
        let (p, s1, s2) = figure1(3, 1);
        // 3 requests, total reachable capacity 2.
        assert!(greedy_multiple_assignment(&p, &[s1, s2]).is_none());
    }

    #[test]
    fn greedy_multiple_respects_qos() {
        // root -> mid -> leaf-node -> client(2), with W = 1 per node.
        // With q = 1 the client may only use its parent, so even three
        // replicas cannot serve 2 requests.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        let low = b.add_node(mid);
        b.add_client(low);
        let tree = b.build().unwrap();
        let nodes = [root, mid, low];
        let p = ProblemInstance::builder(tree.clone())
            .requests(vec![2])
            .capacities(vec![1, 1, 1])
            .storage_costs(vec![1, 1, 1])
            .qos(vec![Some(1)])
            .build();
        assert!(greedy_multiple_assignment(&p, &nodes).is_none());

        // With q = 2 the client reaches low and mid: feasible.
        let p2 = ProblemInstance::builder(tree)
            .requests(vec![2])
            .capacities(vec![1, 1, 1])
            .storage_costs(vec![1, 1, 1])
            .qos(vec![Some(2)])
            .build();
        let placement = greedy_multiple_assignment(&p2, &nodes).unwrap();
        assert!(placement.is_valid(&p2, Policy::Multiple));
    }

    #[test]
    fn greedy_multiple_prioritises_constrained_clients() {
        // Two clients under the same node `low`: one with a tight QoS
        // (q = 1, can only use `low`), one without QoS. Capacity 1 per
        // node. The greedy must give `low` to the constrained client and
        // send the other one up.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let low = b.add_node(root);
        b.add_client(low);
        b.add_client(low);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![1, 1])
            .capacities(vec![1, 1])
            .storage_costs(vec![1, 1])
            .qos(vec![Some(1), None])
            .build();
        let placement = greedy_multiple_assignment(&p, &[root, low]).unwrap();
        assert!(placement.is_valid(&p, Policy::Multiple));
        let clients: Vec<_> = p.tree().client_ids().collect();
        assert_eq!(placement.single_server(clients[0]), Some(low));
        assert_eq!(placement.single_server(clients[1]), Some(root));
    }

    #[test]
    fn upwards_backtracking_finds_non_greedy_packings() {
        // Node chain root(cap 4) -> mid(cap 3); clients: 3 and 2 and 2.
        // c0 (3 requests) under mid; c1, c2 (2 each) under mid as well.
        // Greedy "biggest to smallest remaining" could mis-assign; the
        // backtracking must find: mid <- 3, root <- 2 + 2.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(mid);
        b.add_client(mid);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![3, 2, 2], vec![4, 3]);
        let placement =
            upwards_assignment_backtracking(&p, &[root, mid], &UpwardsSearchOptions::default())
                .unwrap();
        assert!(placement.is_valid(&p, Policy::Upwards));
    }

    #[test]
    fn upwards_backtracking_respects_step_limit() {
        let (p, s1, s2) = figure1(2, 1);
        let placement =
            upwards_assignment_backtracking(&p, &[s1, s2], &UpwardsSearchOptions { max_steps: 0 });
        assert!(placement.is_none());
    }

    #[test]
    fn zero_request_clients_are_ignored() {
        let (p, s1, _) = figure1(2, 0);
        let placement = closest_assignment(&p, &[s1]).unwrap();
        for c in p.tree().client_ids() {
            assert!(placement.assignments(c).is_empty());
        }
        assert!(placement.is_valid(&p, Policy::Closest));
    }
}
