//! Plain-text (de)serialisation of whole problem instances.
//!
//! Builds on `rp_tree::text` (which covers the topology) and adds the
//! per-client and per-node attributes, so generated workloads can be
//! archived next to experiment results and re-solved later:
//!
//! ```text
//! problem v1
//! kind cost                     # or: counting
//! tree v1
//! node 0 root
//! node 1 parent 0
//! client 0 parent 1
//! client 1 parent 0
//! endtree
//! client 0 requests 12 qos 3
//! client 1 requests 4
//! node 0 capacity 100 cost 100
//! node 1 capacity 50 cost 50 bandwidth 80
//! ```
//!
//! Omitted attributes default to: no QoS bound, unbounded link bandwidth
//! (the root's `bandwidth`, having no upwards link, is ignored).

use rp_tree::text::{parse_tree, write_tree};
use rp_tree::TreeError;

use crate::problem::{ProblemInstance, ProblemKind};

/// Serialises a problem instance into the text format.
pub fn write_problem(problem: &ProblemInstance) -> String {
    let tree = problem.tree();
    let mut out = String::from("problem v1\n");
    out.push_str(match problem.kind() {
        ProblemKind::ReplicaCounting => "kind counting\n",
        ProblemKind::ReplicaCost => "kind cost\n",
    });
    out.push_str(&write_tree(tree));
    out.push_str("endtree\n");
    for client in tree.client_ids() {
        out.push_str(&format!(
            "client {} requests {}",
            client.index(),
            problem.requests(client)
        ));
        if let Some(q) = problem.qos(client) {
            out.push_str(&format!(" qos {q}"));
        }
        if let Some(bw) = problem.bandwidth(rp_tree::LinkId::Client(client)) {
            out.push_str(&format!(" bandwidth {bw}"));
        }
        out.push('\n');
    }
    for node in tree.node_ids() {
        out.push_str(&format!(
            "node {} capacity {} cost {}",
            node.index(),
            problem.capacity(node),
            problem.storage_cost(node)
        ));
        if !tree.is_root(node) {
            if let Some(bw) = problem.bandwidth(rp_tree::LinkId::Node(node)) {
                out.push_str(&format!(" bandwidth {bw}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a problem instance from the text format produced by
/// [`write_problem`].
pub fn parse_problem(input: &str) -> Result<ProblemInstance, TreeError> {
    let mut lines = input.lines().enumerate();

    // Header.
    let mut kind = ProblemKind::ReplicaCost;
    let mut tree_text = String::new();
    let mut saw_problem_header = false;
    let mut saw_kind = false;
    let mut in_tree = false;
    let mut tree_done = false;
    let mut attribute_lines: Vec<(usize, String)> = Vec::new();

    for (line_no, raw) in lines.by_ref() {
        let line_no = line_no + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if !saw_problem_header {
            if line != "problem v1" {
                return Err(parse_err(line_no, "expected header `problem v1`"));
            }
            saw_problem_header = true;
            continue;
        }
        if !saw_kind {
            kind = match line.as_str() {
                "kind counting" => ProblemKind::ReplicaCounting,
                "kind cost" => ProblemKind::ReplicaCost,
                _ => {
                    return Err(parse_err(
                        line_no,
                        "expected `kind counting` or `kind cost`",
                    ))
                }
            };
            saw_kind = true;
            continue;
        }
        if !tree_done && !in_tree {
            if line == "tree v1" {
                in_tree = true;
                tree_text.push_str("tree v1\n");
                continue;
            }
            return Err(parse_err(line_no, "expected the embedded `tree v1` block"));
        }
        if in_tree {
            if line == "endtree" {
                in_tree = false;
                tree_done = true;
            } else {
                tree_text.push_str(&line);
                tree_text.push('\n');
            }
            continue;
        }
        attribute_lines.push((line_no, line));
    }

    if tree_text.is_empty() {
        return Err(parse_err(0, "missing embedded tree block"));
    }
    let tree = parse_tree(&tree_text)?;

    let num_clients = tree.num_clients();
    let num_nodes = tree.num_nodes();
    let mut requests = vec![None::<u64>; num_clients];
    let mut qos = vec![None::<u32>; num_clients];
    let mut client_bw = vec![None::<u64>; num_clients];
    let mut capacities = vec![None::<u64>; num_nodes];
    let mut costs = vec![None::<u64>; num_nodes];
    let mut node_bw = vec![None::<u64>; num_nodes];

    for (line_no, line) in attribute_lines {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["client", index, rest @ ..] => {
                let index: usize = index
                    .parse()
                    .map_err(|_| parse_err(line_no, "invalid client index"))?;
                if index >= num_clients {
                    return Err(parse_err(line_no, "client index out of range"));
                }
                let attrs = parse_attributes(rest, line_no)?;
                for (key, value) in attrs {
                    match key {
                        "requests" => requests[index] = Some(value),
                        "qos" => qos[index] = Some(value as u32),
                        "bandwidth" => client_bw[index] = Some(value),
                        _ => return Err(parse_err(line_no, "unknown client attribute")),
                    }
                }
            }
            ["node", index, rest @ ..] => {
                let index: usize = index
                    .parse()
                    .map_err(|_| parse_err(line_no, "invalid node index"))?;
                if index >= num_nodes {
                    return Err(parse_err(line_no, "node index out of range"));
                }
                let attrs = parse_attributes(rest, line_no)?;
                for (key, value) in attrs {
                    match key {
                        "capacity" => capacities[index] = Some(value),
                        "cost" => costs[index] = Some(value),
                        "bandwidth" => node_bw[index] = Some(value),
                        _ => return Err(parse_err(line_no, "unknown node attribute")),
                    }
                }
            }
            _ => return Err(parse_err(line_no, "expected `client ...` or `node ...`")),
        }
    }

    let requests: Vec<u64> = requests
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.ok_or_else(|| parse_err(0, &format!("client {i} has no `requests`"))))
        .collect::<Result<_, _>>()?;
    let capacities: Vec<u64> = capacities
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.ok_or_else(|| parse_err(0, &format!("node {i} has no `capacity`"))))
        .collect::<Result<_, _>>()?;
    let costs: Vec<u64> = costs
        .into_iter()
        .zip(capacities.iter())
        .map(|(cost, &capacity)| cost.unwrap_or(capacity))
        .collect();

    Ok(ProblemInstance::builder(tree)
        .requests(requests)
        .capacities(capacities)
        .storage_costs(costs)
        .qos(qos)
        .client_link_bandwidths(client_bw)
        .node_link_bandwidths(node_bw)
        .kind(kind)
        .build())
}

fn parse_attributes<'a>(
    tokens: &[&'a str],
    line_no: usize,
) -> Result<Vec<(&'a str, u64)>, TreeError> {
    if !tokens.len().is_multiple_of(2) {
        return Err(parse_err(
            line_no,
            "attributes must come in `key value` pairs",
        ));
    }
    let mut out = Vec::with_capacity(tokens.len() / 2);
    for pair in tokens.chunks(2) {
        let value: u64 = pair[1]
            .parse()
            .map_err(|_| parse_err(line_no, "attribute values must be non-negative integers"))?;
        out.push((pair[0], value));
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_err(line: usize, message: &str) -> TreeError {
    TreeError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::{LinkId, TreeBuilder};

    fn sample_problem() -> ProblemInstance {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let hub = b.add_node(root);
        b.add_client(hub);
        b.add_client(root);
        let tree = b.build().unwrap();
        ProblemInstance::builder(tree)
            .requests(vec![12, 4])
            .capacities(vec![100, 50])
            .storage_costs(vec![90, 50])
            .qos(vec![Some(3), None])
            .node_link_bandwidths(vec![None, Some(80)])
            .kind(ProblemKind::ReplicaCost)
            .build()
    }

    fn problems_equal(a: &ProblemInstance, b: &ProblemInstance) -> bool {
        if a.tree() != b.tree() || a.kind() != b.kind() {
            return false;
        }
        a.tree().client_ids().all(|c| {
            a.requests(c) == b.requests(c)
                && a.qos(c) == b.qos(c)
                && a.bandwidth(LinkId::Client(c)) == b.bandwidth(LinkId::Client(c))
        }) && a.tree().node_ids().all(|n| {
            a.capacity(n) == b.capacity(n)
                && a.storage_cost(n) == b.storage_cost(n)
                && (a.tree().is_root(n)
                    || a.bandwidth(LinkId::Node(n)) == b.bandwidth(LinkId::Node(n)))
        })
    }

    #[test]
    fn write_then_parse_round_trips() {
        let p = sample_problem();
        let text = write_problem(&p);
        let parsed = parse_problem(&text).unwrap();
        assert!(problems_equal(&p, &parsed), "round-trip mismatch:\n{text}");
    }

    #[test]
    fn counting_kind_round_trips() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_clients(root, 2);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![1, 2], 5);
        let parsed = parse_problem(&write_problem(&p)).unwrap();
        assert_eq!(parsed.kind(), ProblemKind::ReplicaCounting);
        assert!(problems_equal(&p, &parsed));
    }

    #[test]
    fn missing_cost_defaults_to_capacity() {
        let text = "problem v1\nkind cost\ntree v1\nnode 0 root\nclient 0 parent 0\nendtree\n\
                    client 0 requests 7\nnode 0 capacity 10\n";
        let p = parse_problem(text).unwrap();
        let node = p.tree().node_ids().next().unwrap();
        assert_eq!(p.capacity(node), 10);
        assert_eq!(p.storage_cost(node), 10);
    }

    #[test]
    fn comments_and_blank_lines_are_tolerated() {
        let text = "\n# archived workload\nproblem v1\nkind cost\ntree v1\nnode 0 root\n\
                    client 0 parent 0\nendtree\nclient 0 requests 3  # peak rate\nnode 0 capacity 5\n";
        let p = parse_problem(text).unwrap();
        assert_eq!(p.total_requests(), 3);
    }

    #[test]
    fn missing_attributes_are_reported() {
        let no_requests =
            "problem v1\nkind cost\ntree v1\nnode 0 root\nclient 0 parent 0\nendtree\n\
                           node 0 capacity 5\n";
        assert!(parse_problem(no_requests)
            .unwrap_err()
            .to_string()
            .contains("no `requests`"));
        let no_capacity =
            "problem v1\nkind cost\ntree v1\nnode 0 root\nclient 0 parent 0\nendtree\n\
                           client 0 requests 1\n";
        assert!(parse_problem(no_capacity)
            .unwrap_err()
            .to_string()
            .contains("no `capacity`"));
    }

    #[test]
    fn malformed_headers_and_attributes_are_rejected() {
        assert!(parse_problem("tree v1\n").is_err());
        assert!(parse_problem("problem v1\nbogus\n").is_err());
        let bad_attr = "problem v1\nkind cost\ntree v1\nnode 0 root\nclient 0 parent 0\nendtree\n\
                        client 0 requests\nnode 0 capacity 5\n";
        assert!(parse_problem(bad_attr).is_err());
        let bad_index = "problem v1\nkind cost\ntree v1\nnode 0 root\nclient 0 parent 0\nendtree\n\
                         client 9 requests 1\nnode 0 capacity 5\n";
        assert!(parse_problem(bad_index).is_err());
    }

    #[test]
    fn parsed_instances_are_solvable() {
        let p = sample_problem();
        let parsed = parse_problem(&write_problem(&p)).unwrap();
        let placement = crate::Heuristic::MixedBest.run(&parsed).expect("feasible");
        assert!(placement.is_valid(&parsed, crate::Policy::Multiple));
    }
}
