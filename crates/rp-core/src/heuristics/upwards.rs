//! Heuristics for the **Upwards** policy (Section 6.2).
//!
//! Under Upwards every client is still served by a single replica, but
//! that replica may sit anywhere on its path to the root, so a server no
//! longer has to absorb its whole subtree.

use rp_tree::NodeId;

use crate::heuristics::state::HeuristicState;
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// *Upwards Top Down* (UTD): two depth-first passes.
///
/// The first pass (Algorithm 7) places a replica on every node whose
/// subtree holds at least `W_j` unserved requests and immediately
/// affects to it as many **whole** clients as fit (largest first,
/// Algorithm 6). The second pass (Algorithm 8) walks down from the root
/// and adds a replica on each highest node that still sees unserved
/// requests, again affecting whole clients.
pub fn utd(problem: &ProblemInstance) -> Option<Placement> {
    let mut state = HeuristicState::new(problem);
    utd_on(&mut state);
    state.into_solution()
}

pub(crate) fn utd_on(state: &mut HeuristicState<'_>) -> bool {
    let problem = state.problem();
    let tree = problem.tree();

    // First pass: depth-first preorder, exhausted nodes become servers.
    // (With QoS bounds, only the requests that may legally be served at
    // the node count towards exhausting it.)
    for &node in tree.dfs_preorder_nodes() {
        let inreq = state.eligible_inreq(node);
        if inreq > 0 && inreq >= problem.capacity(node) {
            state.add_replica(node);
            state.delete_requests_single(node, problem.capacity(node));
        }
    }

    // Second pass: for each root-most node that still sees pending
    // requests and has no replica, add one.
    utd_second_pass(problem, state, tree.root());
    state.all_served()
}

fn utd_second_pass(problem: &ProblemInstance, state: &mut HeuristicState<'_>, node: NodeId) {
    if state.inreq(node) == 0 {
        return;
    }
    if !state.has_replica(node) {
        state.add_replica(node);
        let budget = state.eligible_inreq(node).min(problem.capacity(node));
        state.delete_requests_single(node, budget);
    } else {
        for &child in problem.tree().child_nodes(node) {
            if state.inreq(child) > 0 {
                utd_second_pass(problem, state, child);
            }
        }
    }
}

/// *Upwards Big Client First* (UBCF, Algorithm 9): clients are processed
/// by non-increasing request count; each is assigned to the eligible
/// ancestor with the smallest remaining capacity that can still hold all
/// of its requests (a best-fit rule). The heuristic fails as soon as
/// some client fits nowhere.
pub fn ubcf(problem: &ProblemInstance) -> Option<Placement> {
    let mut state = HeuristicState::new(problem);
    if ubcf_on(&mut state) {
        state.into_solution()
    } else {
        None
    }
}

pub(crate) fn ubcf_on(state: &mut HeuristicState<'_>) -> bool {
    let problem = state.problem();
    let tree = problem.tree();
    // Remaining capacity per node (capacities shrink as clients are
    // placed), in the state's reusable per-node scratch.
    let mut capacity_left = std::mem::take(&mut state.scratch_node_u64);
    capacity_left.clear();
    capacity_left.extend(tree.node_ids().map(|n| problem.capacity(n)));

    let mut clients = std::mem::take(&mut state.scratch_clients);
    clients.clear();
    clients.extend(tree.client_ids().filter(|&c| problem.requests(c) > 0));
    // Tie-break by client id: the list starts in id order, so this
    // reproduces what a stable sort would do while staying in place.
    clients.sort_unstable_by_key(|&c| (std::cmp::Reverse(problem.requests(c)), c));

    let mut solved = true;
    for &client in &clients {
        let requests = problem.requests(client);
        let best = problem
            .eligible_servers(client)
            .filter(|&a| capacity_left[a.index()] >= requests)
            .min_by_key(|&a| capacity_left[a.index()]);
        match best {
            None => {
                solved = false;
                break;
            }
            Some(server) => {
                capacity_left[server.index()] -= requests;
                state.add_replica(server);
                state.assign(client, server, requests);
            }
        }
    }
    state.scratch_node_u64 = capacity_left;
    state.scratch_clients = clients;
    solved && state.all_served()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_cost;
    use crate::policy::Policy;
    use rp_tree::TreeBuilder;

    fn check_valid(problem: &ProblemInstance, placement: &Placement) {
        if let Err(violations) = placement.validate(problem, Policy::Upwards) {
            panic!("invalid Upwards placement: {violations}");
        }
    }

    /// Figure 1(b): two stacked W = 1 nodes, two unit clients under the
    /// lower one. Upwards needs both replicas; Closest has no solution.
    fn figure1b() -> ProblemInstance {
        let mut b = TreeBuilder::new();
        let s2 = b.add_root();
        let s1 = b.add_node(s2);
        b.add_client(s1);
        b.add_client(s1);
        ProblemInstance::replica_counting(b.build().unwrap(), vec![1, 1], 1)
    }

    #[test]
    fn both_heuristics_solve_figure_1b() {
        let p = figure1b();
        for (name, heuristic) in [
            ("utd", utd as fn(&ProblemInstance) -> Option<Placement>),
            ("ubcf", ubcf),
        ] {
            let placement = heuristic(&p).unwrap_or_else(|| panic!("{name} failed"));
            check_valid(&p, &placement);
            assert_eq!(placement.num_replicas(), 2, "{name}");
        }
    }

    #[test]
    fn single_request_only_needs_one_replica() {
        let mut b = TreeBuilder::new();
        let s2 = b.add_root();
        let s1 = b.add_node(s2);
        b.add_client(s1);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![1], 1);
        for heuristic in [utd, ubcf] {
            let placement = heuristic(&p).unwrap();
            check_valid(&p, &placement);
            assert_eq!(placement.num_replicas(), 1);
        }
    }

    #[test]
    fn upwards_cannot_split_a_client() {
        // Figure 1(c): one client with 2 requests, two W = 1 nodes.
        let mut b = TreeBuilder::new();
        let s2 = b.add_root();
        let s1 = b.add_node(s2);
        b.add_client(s1);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![2], 1);
        assert!(utd(&p).is_none());
        assert!(ubcf(&p).is_none());
    }

    #[test]
    fn ubcf_uses_best_fit_on_heterogeneous_capacities() {
        // Figure 4: s1 (W = n) above the 2-client chain, s2 (W = n),
        // s3 (W = Kn) at the top. The client under s1 issues n - 1
        // requests, the client under s2 issues n + 1 requests... here we
        // reuse the spirit: a big client must go to the big server, and
        // the small client should fill the *smallest* fitting server so
        // that the expensive server is not bought unnecessarily.
        let mut b = TreeBuilder::new();
        let s3 = b.add_root();
        let s2 = b.add_node(s3);
        let s1 = b.add_node(s2);
        b.add_client(s1); // 4 requests
        b.add_client(s2); // 6 requests
        let p = ProblemInstance::replica_cost(
            b.build().unwrap(),
            vec![4, 6],
            vec![100, 6, 5], // s3 = 100, s2 = 6, s1 = 5
        );
        let placement = ubcf(&p).unwrap();
        check_valid(&p, &placement);
        // Big client (6) -> s2 (best fit 6); small client (4) -> s1 (5).
        assert_eq!(placement.cost(&p), 11);
        assert!(!placement.has_replica(s3));
    }

    #[test]
    fn utd_handles_multi_level_overflow() {
        // A deep chain where each level is exhausted in turn.
        // root(5) -> a(5) -> b(5) -> {c0: 5, c1: 5, c2: 3}
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let bb = b.add_node(a);
        b.add_client(bb);
        b.add_client(bb);
        b.add_client(bb);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![5, 5, 3], 5);
        let placement = utd(&p).unwrap();
        check_valid(&p, &placement);
        assert_eq!(placement.num_replicas(), 3);
    }

    #[test]
    fn heuristic_costs_never_beat_the_exhaustive_optimum() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let c = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(c);
        b.add_client(root);
        let p = ProblemInstance::replica_cost(b.build().unwrap(), vec![3, 2, 4, 1], vec![6, 5, 4]);
        let optimum = optimal_cost(&p, Policy::Upwards).unwrap();
        for heuristic in [utd, ubcf] {
            if let Some(placement) = heuristic(&p) {
                check_valid(&p, &placement);
                assert!(placement.cost(&p) >= optimum);
            }
        }
    }

    #[test]
    fn ubcf_respects_qos_bounds() {
        // The client with a tight QoS cannot climb to the root even if
        // that is the only node with remaining capacity.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(mid);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![3, 3])
            .capacities(vec![10, 3])
            .storage_costs(vec![10, 3])
            .qos(vec![Some(1), Some(1)])
            .build();
        // Both clients may only use `mid` (capacity 3): infeasible.
        assert!(ubcf(&p).is_none());
    }

    #[test]
    fn zero_requests_need_no_replicas() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_clients(root, 2);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![0, 0], 4);
        for heuristic in [utd, ubcf] {
            assert_eq!(heuristic(&p).unwrap().num_replicas(), 0);
        }
    }
}
