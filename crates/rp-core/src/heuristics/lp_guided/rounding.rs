//! The single-object LP-guided rounding: fractional optimum → feasible
//! integral placement under the **Multiple** policy.
//!
//! The driver runs a two-strategy portfolio and keeps the cheapest
//! feasible result (both attempts are pure integer bookkeeping — a
//! fraction of the LP solve that fed them):
//!
//! * **CommitSaturate** reads the LP as a replica *selector*: nodes
//!   with mass ≥ ½ are opened, in postorder, and each absorbs demand
//!   up to the LP's own load there (its clients first, then the rest
//!   of its subtree). Bottom-up filling keeps the upper tree's
//!   capacity and bandwidth free, and the budget cap stops any node
//!   from stealing what the relaxation allotted elsewhere.
//! * **ThinGuided** reads the LP as an *assignment*: every
//!   positive-mass node gets exactly the ceilinged `y` splits, in mass
//!   order — the faithful-but-thin reading that almost never strands a
//!   client.
//!
//! Both modes then share the same clean-up pipeline, every step driven
//! by the exact accounting of [`super::accounting`]:
//!
//! 1. **Overflow re-homing** — leftovers walk up their ancestor path
//!    onto open replicas, closest first.
//! 2. **Escalation** — still-unserved requests open the ancestor with
//!    the best cost-per-absorbed-pending-request and fill it; a dead
//!    end triggers the depth-1 augmenting [`rescue`] (relocate other
//!    clients' load off the stranded path) before the mode gives up.
//! 3. **Push-down** — load drains towards the leaves among the open
//!    replicas, freeing the top of the tree (which is on every path).
//! 4. **Pruning** — replicas whose whole load re-homes onto the rest
//!    for free are dropped, most expensive (then lightest) first.
//! 5. **Consolidation** — the move pruning cannot make: open a fresh
//!    ancestor that fully absorbs replicas of its subtree at a net
//!    saving, then prune again. This is what recovers e.g. the
//!    "serve everything at the root" optimum from a thinly spread LP.

use rp_tree::{ClientId, NodeId};

use rp_lp::LpWorkspace;

use crate::heuristics::lp_guided::accounting::FeasAccounting;
use crate::heuristics::lp_guided::guide::{guided_amount, mass_guide};
use crate::ilp::{lower_bound_fractional_reusing, FractionalLp, IlpOptions};
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// LP-guided rounding with default options (revised engine).
pub fn lp_guided(problem: &ProblemInstance) -> Option<Placement> {
    lp_guided_with(problem, &IlpOptions::default())
}

/// [`lp_guided`] with explicit LP options (engine selection included).
pub fn lp_guided_with(problem: &ProblemInstance, options: &IlpOptions) -> Option<Placement> {
    let mut workspace = LpWorkspace::new();
    lp_guided_reusing(problem, options, &mut workspace)
}

/// [`lp_guided`] reusing the LP buffers of `workspace` — the path the
/// scenario sweep drives, one workspace per worker. Returns `None` when
/// the relaxation is infeasible (no policy has a solution) or the
/// rounding cannot serve every request.
pub fn lp_guided_reusing(
    problem: &ProblemInstance,
    options: &IlpOptions,
    workspace: &mut LpWorkspace,
) -> Option<Placement> {
    let fractional = lower_bound_fractional_reusing(problem, options, workspace)?;
    round_fractional(problem, &fractional)
}

/// How aggressively phase 1 follows the fractional mass.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RoundingMode {
    /// Open only the LP's *committed* nodes (mass ≥ ½) and saturate
    /// each with its subtree's pending demand. Consolidates hard —
    /// usually the cheaper placement — but the eager saturation can
    /// strand a remote client on tightly link-bounded instances.
    CommitSaturate,
    /// Open every positive-mass node with exactly the ceilinged guided
    /// splits. Tracks the LP's (feasible) flow pattern closely, so it
    /// almost never strands anyone, at the price of thinner replicas.
    ThinGuided,
}

/// Rounds an explicit fractional optimum (the composable core of
/// [`lp_guided`]; exposed so tests and the multi-object driver can
/// inject hand-built fractional points).
///
/// Runs a two-strategy portfolio — consolidate-hard, then
/// follow-the-LP — and keeps the cheapest feasible result; the
/// rounding itself is pure integer bookkeeping, so both attempts
/// together cost a fraction of the LP solve that fed them.
pub fn round_fractional(problem: &ProblemInstance, fractional: &FractionalLp) -> Option<Placement> {
    let _span = rp_obs::span(rp_obs::SpanKind::LpGuidedRound);
    rp_obs::incr(rp_obs::Counter::CoreLpgRounds);
    let a = round_fractional_mode(problem, fractional, RoundingMode::CommitSaturate);
    let b = round_fractional_mode(problem, fractional, RoundingMode::ThinGuided);
    let (winner, win_counter) = match (a, b) {
        (Some(a), Some(b)) => {
            if a.cost(problem) <= b.cost(problem) {
                (Some(a), Some(rp_obs::Counter::CoreLpgWinCommitSaturate))
            } else {
                (Some(b), Some(rp_obs::Counter::CoreLpgWinThinGuided))
            }
        }
        (Some(a), None) => (Some(a), Some(rp_obs::Counter::CoreLpgWinCommitSaturate)),
        (None, Some(b)) => (Some(b), Some(rp_obs::Counter::CoreLpgWinThinGuided)),
        (None, None) => (None, None),
    };
    match win_counter {
        Some(counter) => rp_obs::incr(counter),
        None => rp_obs::incr(rp_obs::Counter::CoreLpgInfeasible),
    }
    winner
}

fn round_fractional_mode(
    problem: &ProblemInstance,
    fractional: &FractionalLp,
    mode: RoundingMode,
) -> Option<Placement> {
    let tree = problem.tree();
    let mut accounting = FeasAccounting::for_problem(problem);
    let mut placement = Placement::empty(tree.num_clients());
    let mut remaining: Vec<u64> = tree.client_ids().map(|c| problem.requests(c)).collect();

    // --- Phase 1. Two readings of the fractional optimum:
    //
    // * CommitSaturate — the LP *selects* the replica set (nodes with
    //   mass ≥ ½) and a bottom-up MG-style fill assigns the requests:
    //   each committed node, in postorder, absorbs its subtree's
    //   pending demand up to its capacity. Serving as low as possible
    //   keeps both the capacity and the bandwidth of the upper tree
    //   available (a request served at depth consumes no link above
    //   it), so the aggressive consolidation stays safe.
    // * ThinGuided — the LP *assigns*: every positive-mass node gets
    //   exactly the ceilinged `y` splits, tracking the relaxation's
    //   (feasible) flow pattern as closely as integers allow. ---
    let guide = mass_guide(&fractional.replica_mass, &fractional.assignment, |n| {
        problem.storage_cost(n)
    });
    match mode {
        RoundingMode::CommitSaturate => {
            for &server in tree.postorder_nodes() {
                if fractional.replica_mass[server.index()]
                    < crate::heuristics::lp_guided::guide::COMMIT_THRESHOLD
                {
                    continue;
                }
                // The LP's total load at this node, rounded up: filling
                // past it would steal capacity (or bandwidth) the
                // relaxation allotted to requests elsewhere.
                let lp_load: f64 = guide.per_server[server.index()]
                    .iter()
                    .map(|&(_, y)| y)
                    .sum();
                let mut budget = guided_amount(lp_load);
                // The LP's own clients first (it routed their flow here;
                // their alternatives may have no budget elsewhere), then
                // top off with other subtree demand, largest first.
                for &(client, y) in &guide.per_server[server.index()] {
                    if budget == 0 {
                        break;
                    }
                    let amount = remaining[client.index()]
                        .min(guided_amount(y))
                        .min(budget)
                        .min(accounting.max_assignable(tree, client, server));
                    if amount > 0 {
                        placement.add_replica(server);
                        accounting.assign(tree, client, server, amount);
                        placement.assign(client, server, amount);
                        remaining[client.index()] -= amount;
                        budget -= amount;
                    }
                }
                let mut fill: Vec<ClientId> = tree
                    .subtree_clients(server)
                    .iter()
                    .copied()
                    .filter(|&c| remaining[c.index()] > 0 && within_qos(problem, c, server))
                    .collect();
                fill.sort_by_key(|&c| (std::cmp::Reverse(remaining[c.index()]), c.index()));
                for client in fill {
                    if budget == 0 {
                        break;
                    }
                    let amount = remaining[client.index()]
                        .min(budget)
                        .min(accounting.max_assignable(tree, client, server));
                    if amount > 0 {
                        placement.add_replica(server);
                        accounting.assign(tree, client, server, amount);
                        placement.assign(client, server, amount);
                        remaining[client.index()] -= amount;
                        budget -= amount;
                    }
                }
            }
        }
        RoundingMode::ThinGuided => {
            for &server in &guide.order {
                for &(client, y) in &guide.per_server[server.index()] {
                    let left = remaining[client.index()];
                    if left == 0 {
                        continue;
                    }
                    let amount = left
                        .min(guided_amount(y))
                        .min(accounting.max_assignable(tree, client, server));
                    if amount > 0 {
                        placement.add_replica(server);
                        accounting.assign(tree, client, server, amount);
                        placement.assign(client, server, amount);
                        remaining[client.index()] -= amount;
                    }
                }
            }
        }
    }

    // --- Phases 2 and 3: re-home the overflow, largest clients first. ---
    let mut pending: Vec<ClientId> = tree
        .client_ids()
        .filter(|c| remaining[c.index()] > 0)
        .collect();
    pending.sort_by_key(|&c| std::cmp::Reverse(remaining[c.index()]));
    for client in pending {
        // Open replicas on the path, closest first.
        for server in problem.eligible_servers(client) {
            if remaining[client.index()] == 0 {
                break;
            }
            if !placement.has_replica(server) {
                continue;
            }
            let amount =
                remaining[client.index()].min(accounting.max_assignable(tree, client, server));
            if amount > 0 {
                rp_obs::incr(rp_obs::Counter::CoreLpgMovesRehome);
                accounting.assign(tree, client, server, amount);
                placement.assign(client, server, amount);
                remaining[client.index()] -= amount;
            }
        }
        // Escalation: open the eligible ancestor with the best
        // cost-per-absorbed-request (capacity-capped pending demand of
        // its subtree), serve this client from it first and then fill
        // it with the rest of its subtree's pending demand — one paid
        // replica should soak up as much stranded demand as it can,
        // not just the client that triggered it.
        while remaining[client.index()] > 0 {
            let mut best: Option<(NodeId, u64, u64)> = None; // (node, headroom, absorbable)
            for server in problem.eligible_servers(client) {
                if placement.has_replica(server) {
                    continue;
                }
                let headroom = accounting.max_assignable(tree, client, server);
                if headroom == 0 {
                    continue;
                }
                let pending: u64 = tree
                    .subtree_clients(server)
                    .iter()
                    .filter(|&&c| remaining[c.index()] > 0 && within_qos(problem, c, server))
                    .map(|&c| remaining[c.index()])
                    .sum();
                let absorbable = pending.min(accounting.node_residual(server).max(0) as u64);
                let better = match best {
                    None => true,
                    Some((incumbent, _, incumbent_absorbable)) => {
                        let challenger = problem.storage_cost(server) as u128
                            * incumbent_absorbable.max(1) as u128;
                        let reigning =
                            problem.storage_cost(incumbent) as u128 * absorbable.max(1) as u128;
                        challenger < reigning
                            || (challenger == reigning
                                && (problem.storage_cost(server), server.index())
                                    < (problem.storage_cost(incumbent), incumbent.index()))
                    }
                };
                if better {
                    best = Some((server, headroom, absorbable));
                }
            }
            let Some((server, headroom, _)) = best else {
                // Dead end: every path node is open-and-full or
                // unreachable. Ceiling overshoot elsewhere may have
                // eaten the path's slack — try freeing it by relocating
                // other clients' load off this path before giving up.
                if rescue(
                    problem,
                    &mut placement,
                    &mut accounting,
                    &mut remaining,
                    client,
                ) {
                    continue;
                }
                return None;
            };
            rp_obs::incr(rp_obs::Counter::CoreLpgMovesEscalateOpen);
            placement.add_replica(server);
            let amount = remaining[client.index()].min(headroom);
            accounting.assign(tree, client, server, amount);
            placement.assign(client, server, amount);
            remaining[client.index()] -= amount;
            // Fill the fresh replica with its subtree's pending demand,
            // largest clients first.
            let mut fill: Vec<ClientId> = tree
                .subtree_clients(server)
                .iter()
                .copied()
                .filter(|&c| remaining[c.index()] > 0 && within_qos(problem, c, server))
                .collect();
            fill.sort_by_key(|&c| (std::cmp::Reverse(remaining[c.index()]), c.index()));
            for c in fill {
                let take = remaining[c.index()].min(accounting.max_assignable(tree, c, server));
                if take > 0 {
                    accounting.assign(tree, c, server, take);
                    placement.assign(c, server, take);
                    remaining[c.index()] -= take;
                }
            }
        }
    }

    // --- Phase 4: push-down, then pruning. Draining load off the high
    // replicas (towards the leaves) concentrates the free capacity at
    // the top of the tree — and the top is on *every* client's path, so
    // the pruning pass that follows finds room to re-home far more
    // often. Moving a request down only removes links from its route,
    // so the pass can never break bandwidth feasibility. ---
    push_down(problem, &mut placement, &mut accounting);
    prune_replicas(problem, &mut placement, &mut accounting);
    consolidate_replicas(problem, &mut placement, &mut accounting);
    prune_replicas(problem, &mut placement, &mut accounting);

    debug_assert!(
        placement.is_valid(problem, crate::policy::Policy::Multiple),
        "rounded placement failed validation: {:?}",
        placement.validate(problem, crate::policy::Policy::Multiple)
    );
    Some(placement)
}

/// The replace move the pruning pass cannot make: open a **fresh**
/// ancestor and migrate whole open replicas of its subtree onto it,
/// whenever the dropped replicas cost more than the new one. This is
/// what consolidates placements whose LP guidance was spread thin over
/// many cheap nodes with no open ancestor to prune into (the
/// replica-counting families are the extreme case: all costs equal, so
/// absorbing any two replicas into one pays).
fn consolidate_replicas(
    problem: &ProblemInstance,
    placement: &mut Placement,
    accounting: &mut FeasAccounting,
) {
    let tree = problem.tree();
    for &candidate in tree.postorder_nodes() {
        if placement.has_replica(candidate) {
            continue;
        }
        // Open replicas strictly inside the candidate's subtree, small
        // loads first (the easiest to absorb fully). The replica scan
        // is O(replicas) per candidate; the load table is only built
        // once a candidate actually has something to absorb.
        let mut inside: Vec<NodeId> = placement
            .replicas()
            .iter()
            .copied()
            .filter(|&r| r != candidate && tree.node_is_ancestor_or_self(r, candidate))
            .collect();
        if inside.is_empty() {
            continue;
        }
        let mut loads = rp_tree::NodeMap::filled(tree.num_nodes(), 0u64);
        placement.accumulate_server_loads(&mut loads);
        inside.sort_by_key(|&r| (loads[r], r.index()));
        let mut absorbed: Vec<NodeId> = Vec::new();
        let mut moved: Vec<(ClientId, NodeId, u64)> = Vec::new();
        let mut saved: u64 = 0;
        for r in inside {
            // Try to move replica r's entire load onto the candidate.
            let served: Vec<(ClientId, u64)> = tree
                .client_ids()
                .filter_map(|client| {
                    placement
                        .assignments(client)
                        .iter()
                        .find(|a| a.server == r)
                        .map(|a| (client, a.amount))
                })
                .collect();
            let mut r_moves: Vec<(ClientId, u64)> = Vec::new();
            let mut ok = true;
            for &(client, amount) in &served {
                if !within_qos(problem, client, candidate) {
                    ok = false;
                    break;
                }
                // Unassign first: the old route shares its prefix with
                // the new one, so headroom must be measured without the
                // old charge in place.
                accounting.unassign(tree, client, r, amount);
                placement.unassign(client, r, amount);
                if accounting.max_assignable(tree, client, candidate) < amount {
                    accounting.assign(tree, client, r, amount);
                    placement.assign(client, r, amount);
                    ok = false;
                    break;
                }
                accounting.assign(tree, client, candidate, amount);
                placement.assign(client, candidate, amount);
                r_moves.push((client, amount));
            }
            if ok {
                placement.remove_replica(r);
                absorbed.push(r);
                saved += problem.storage_cost(r);
                for (client, amount) in r_moves {
                    moved.push((client, r, amount));
                }
            } else {
                for &(client, amount) in &r_moves {
                    accounting.unassign(tree, client, candidate, amount);
                    placement.unassign(client, candidate, amount);
                    accounting.assign(tree, client, r, amount);
                    placement.assign(client, r, amount);
                }
            }
        }
        if absorbed.is_empty() {
            continue;
        }
        if saved > problem.storage_cost(candidate) {
            rp_obs::add(
                rp_obs::Counter::CoreLpgMovesConsolidate,
                absorbed.len() as u64,
            );
            placement.add_replica(candidate);
        } else {
            // Not worth it: restore every absorbed replica.
            for &(client, r, amount) in &moved {
                accounting.unassign(tree, client, candidate, amount);
                placement.unassign(client, candidate, amount);
                accounting.assign(tree, client, r, amount);
                placement.assign(client, r, amount);
            }
            for r in absorbed {
                placement.add_replica(r);
            }
        }
    }
}

/// Depth-1 augmenting rescue for a stranded client: walk its path and
/// relocate other clients' assignments onto open replicas elsewhere on
/// *their* paths (keeping them fully served), then hand the freed
/// capacity to the stranded client. Returns `true` once the client is
/// fully served. Every move goes through the accounting, so
/// feasibility is preserved throughout.
fn rescue(
    problem: &ProblemInstance,
    placement: &mut Placement,
    accounting: &mut FeasAccounting,
    remaining: &mut [u64],
    client: ClientId,
) -> bool {
    let tree = problem.tree();
    while remaining[client.index()] > 0 {
        let mut progressed = false;
        for server in problem.eligible_servers(client) {
            if remaining[client.index()] == 0 {
                break;
            }
            if !placement.has_replica(server) {
                continue;
            }
            let others: Vec<(ClientId, u64)> = tree
                .subtree_clients(server)
                .iter()
                .copied()
                .filter(|&c| c != client)
                .filter_map(|c| {
                    placement
                        .assignments(c)
                        .iter()
                        .find(|a| a.server == server)
                        .map(|a| (c, a.amount))
                })
                .collect();
            for (other, amount) in others {
                if remaining[client.index()] == 0 {
                    break;
                }
                let mut left = amount;
                for target in problem.eligible_servers(other) {
                    if left == 0 {
                        break;
                    }
                    if target == server || !placement.has_replica(target) {
                        continue;
                    }
                    let take = left.min(accounting.max_assignable(tree, other, target));
                    if take == 0 {
                        continue;
                    }
                    rp_obs::incr(rp_obs::Counter::CoreLpgMovesRescue);
                    accounting.unassign(tree, other, server, take);
                    placement.unassign(other, server, take);
                    accounting.assign(tree, other, target, take);
                    placement.assign(other, target, take);
                    left -= take;
                    let give = remaining[client.index()]
                        .min(accounting.max_assignable(tree, client, server));
                    if give > 0 {
                        accounting.assign(tree, client, server, give);
                        placement.assign(client, server, give);
                        remaining[client.index()] -= give;
                        progressed = true;
                    }
                }
            }
        }
        if !progressed {
            return false;
        }
    }
    true
}

/// `true` when `server` lies within `client`'s QoS bound (clients
/// without a bound accept any ancestor; off-path servers are rejected).
fn within_qos(problem: &ProblemInstance, client: ClientId, server: NodeId) -> bool {
    match problem.qos(client) {
        None => true,
        Some(q) => problem
            .tree()
            .client_distance(client, server)
            .is_some_and(|d| d <= q),
    }
}

/// Moves every assignment as low as it can go among the **open**
/// replicas of each client's path (closest first), within the residual
/// capacities. No replica is opened or closed; the pass only re-packs
/// load downwards so the high nodes regain headroom.
fn push_down(
    problem: &ProblemInstance,
    placement: &mut Placement,
    accounting: &mut FeasAccounting,
) {
    let tree = problem.tree();
    for client in tree.client_ids() {
        let assignments: Vec<(NodeId, u64)> = placement
            .assignments(client)
            .iter()
            .map(|a| (a.server, a.amount))
            .collect();
        for (server, amount) in assignments {
            let mut left = amount;
            for target in problem.eligible_servers(client) {
                if target == server || left == 0 {
                    break;
                }
                if !placement.has_replica(target) {
                    continue;
                }
                // The path to `target` is a strict prefix of the path
                // to `server`, so the moved flow itself charges the
                // shared prefix: measure the target's headroom with the
                // old charge lifted, then put back whatever stays.
                accounting.unassign(tree, client, server, left);
                placement.unassign(client, server, left);
                let take = left.min(accounting.max_assignable(tree, client, target));
                if take > 0 {
                    rp_obs::incr(rp_obs::Counter::CoreLpgMovesPushDown);
                    accounting.assign(tree, client, target, take);
                    placement.assign(client, target, take);
                }
                let stays = left - take;
                if stays > 0 {
                    accounting.assign(tree, client, server, stays);
                    placement.assign(client, server, stays);
                }
                left = stays;
            }
        }
    }
}

/// Drops every replica whose entire load re-homes onto the remaining
/// replicas within the residual capacities and bandwidths, most
/// expensive replicas first. A replica serving nothing is always
/// dropped.
fn prune_replicas(
    problem: &ProblemInstance,
    placement: &mut Placement,
    accounting: &mut FeasAccounting,
) {
    let tree = problem.tree();
    let mut loads = rp_tree::NodeMap::filled(tree.num_nodes(), 0u64);
    placement.accumulate_server_loads(&mut loads);
    let mut candidates: Vec<NodeId> = placement.replicas().to_vec();
    // Most expensive first, lightest load within a price: the cheap
    // drops come first and the hard (heavily loaded) ones are attempted
    // only after the easy wins freed nothing they needed.
    candidates.sort_by_key(|&node| {
        (
            std::cmp::Reverse(problem.storage_cost(node)),
            loads[node],
            node.index(),
        )
    });
    for node in candidates {
        // The load currently served at this replica.
        let served: Vec<(ClientId, u64)> = tree
            .client_ids()
            .filter_map(|client| {
                placement
                    .assignments(client)
                    .iter()
                    .find(|a| a.server == node)
                    .map(|a| (client, a.amount))
            })
            .collect();
        // Tentatively evict everything from the candidate.
        for &(client, amount) in &served {
            accounting.unassign(tree, client, node, amount);
            placement.unassign(client, node, amount);
        }
        let mut moved: Vec<(ClientId, NodeId, u64)> = Vec::new();
        let mut stuck = false;
        'rehome: for &(client, amount) in &served {
            let mut left = amount;
            for server in problem.eligible_servers(client) {
                if left == 0 {
                    break;
                }
                if server == node || !placement.has_replica(server) {
                    continue;
                }
                let take = left.min(accounting.max_assignable(tree, client, server));
                if take > 0 {
                    accounting.assign(tree, client, server, take);
                    placement.assign(client, server, take);
                    moved.push((client, server, take));
                    left -= take;
                }
            }
            if left > 0 {
                stuck = true;
                break 'rehome;
            }
        }
        if stuck {
            // Roll everything back: undo the moves, restore the evictions.
            for &(client, server, take) in &moved {
                accounting.unassign(tree, client, server, take);
                placement.unassign(client, server, take);
            }
            for &(client, amount) in &served {
                accounting.assign(tree, client, node, amount);
                placement.assign(client, node, amount);
            }
        } else {
            rp_obs::incr(rp_obs::Counter::CoreLpgMovesPruneDrop);
            placement.remove_replica(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilp::{exact_optimal_cost, lower_bound, BoundKind};
    use crate::policy::Policy;
    use rp_tree::TreeBuilder;

    #[test]
    fn rounding_matches_the_optimum_on_a_plain_instance() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(mid);
        b.add_client(root);
        let p = ProblemInstance::replica_cost(b.build().unwrap(), vec![3, 5, 2], vec![10, 10]);
        let placement = lp_guided(&p).expect("feasible");
        assert!(placement.is_valid(&p, Policy::Multiple));
        let bound = lower_bound(&p, BoundKind::Rational).unwrap();
        assert!(placement.cost(&p) as f64 + 1e-6 >= bound);
    }

    #[test]
    fn pruning_recovers_the_all_at_root_optimum() {
        // root (W = s = 10) -> mid (W = s = 3), one 4-request client
        // below mid, bandwidth 4 on the uplink: serving everything at
        // the root (cost 10) beats buying both replicas (cost 13). The
        // LP mass prefers the cheap mid, so only the pruning pass finds
        // the exact optimum.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let p = ProblemInstance::builder(b.build().unwrap())
            .requests(vec![4])
            .capacities(vec![10, 3])
            .storage_costs(vec![10, 3])
            .node_link_bandwidths(vec![None, Some(4)])
            .build();
        let placement = lp_guided(&p).expect("feasible");
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert_eq!(placement.cost(&p), 10);
        assert_eq!(exact_optimal_cost(&p, Policy::Multiple), Some(10));
    }

    #[test]
    fn infeasible_relaxations_round_to_none() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![5], 2);
        assert!(lp_guided(&p).is_none());
    }

    #[test]
    fn bandwidth_bound_instances_round_feasibly() {
        // A binding uplink forces a split the accounting must respect.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let p = ProblemInstance::builder(b.build().unwrap())
            .requests(vec![4])
            .capacities(vec![10, 3])
            .storage_costs(vec![10, 3])
            .node_link_bandwidths(vec![None, Some(2)])
            .build();
        let placement = lp_guided(&p).expect("feasible: 2 up, 2 at mid");
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert_eq!(placement.cost(&p), 13);
    }

    #[test]
    fn qos_bounds_restrict_the_rounding() {
        // The mid client may only be served at mid (q = 1).
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(root);
        let p = ProblemInstance::builder(b.build().unwrap())
            .requests(vec![2, 1])
            .capacities(vec![3, 3])
            .storage_costs(vec![3, 3])
            .qos(vec![Some(1), Some(1)])
            .build();
        let placement = lp_guided(&p).expect("feasible");
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert_eq!(placement.cost(&p), 6);
    }
}
