//! Post-hoc bandwidth repair for the classic heuristics.
//!
//! The Section 4/6 heuristics reason about capacities only; on a
//! bandwidth-constrained platform their placements may push more flow
//! over a link than it carries. The repair exploits a monotonicity of
//! tree routing: **moving a request's server down** (towards the
//! client) only ever *removes* links from its route — so re-homing flow
//! below a saturated link can never create a new violation elsewhere.
//!
//! [`repair_bandwidth`] walks the saturated links bottom-up and, per
//! link, moves crossing assignments to servers below it: open replicas
//! with residual capacity first (free), then the cheapest new replica
//! on the client's path. Under the single-server policies whole clients
//! move to a single new server; under Multiple the flow may split.
//! [`BandwidthRepair`] packages this as a drop-in wrapper around any
//! heuristic, re-validating the repaired placement under the wrapped
//! heuristic's own policy (a Closest repair that breaks the
//! closest-replica rule is reported as a failure, not silently
//! downgraded).

use rp_tree::{ClientId, LinkId, NodeId};

use crate::heuristics::lp_guided::accounting::FeasAccounting;
use crate::heuristics::Heuristic;
use crate::policy::Policy;
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Anything that can be run as a placement heuristic — the hook that
/// lets [`BandwidthRepair`] wrap the classic enum as well as custom
/// strategies.
pub trait RunnableHeuristic {
    /// The access policy the produced placements obey.
    fn policy(&self) -> Policy;
    /// Runs the heuristic on `problem`.
    fn run(&self, problem: &ProblemInstance) -> Option<Placement>;
}

impl RunnableHeuristic for Heuristic {
    fn policy(&self) -> Policy {
        Heuristic::policy(*self)
    }

    fn run(&self, problem: &ProblemInstance) -> Option<Placement> {
        Heuristic::run(*self, problem)
    }
}

/// Retrofit adapter: runs the wrapped heuristic, then repairs any link
/// bandwidth violations by re-homing flow below the saturated links.
///
/// On instances without bandwidth bounds this is exactly the wrapped
/// heuristic. With bounds, the adapter returns a placement only when it
/// is fully valid under the wrapped heuristic's policy — so the classic
/// Figure success/cost experiments can run unchanged on the
/// bandwidth-constrained families.
pub struct BandwidthRepair<H = Heuristic>(pub H);

impl<H: RunnableHeuristic> BandwidthRepair<H> {
    /// The wrapped heuristic's policy.
    pub fn policy(&self) -> Policy {
        self.0.policy()
    }

    /// Runs the wrapped heuristic and repairs its placement.
    pub fn run(&self, problem: &ProblemInstance) -> Option<Placement> {
        let mut placement = self.0.run(problem)?;
        if !problem.has_bandwidth_limits() {
            return Some(placement);
        }
        let policy = self.0.policy();
        if placement.is_valid(problem, policy) {
            return Some(placement);
        }
        if !repair_bandwidth(problem, &mut placement, policy) {
            return None;
        }
        placement.is_valid(problem, policy).then_some(placement)
    }
}

/// Repairs the link-bandwidth violations of `placement` in place.
///
/// Returns `true` when every link residual is non-negative afterwards;
/// capacity and path constraints are preserved throughout (every move
/// goes through the exact accounting), but policy-specific rules — the
/// Closest first-replica rule in particular — are *not* re-checked
/// here: callers validate afterwards (see [`BandwidthRepair::run`]).
pub fn repair_bandwidth(
    problem: &ProblemInstance,
    placement: &mut Placement,
    policy: Policy,
) -> bool {
    if !problem.has_bandwidth_limits() {
        return true;
    }
    let tree = problem.tree();
    let mut accounting = FeasAccounting::for_problem(problem);
    for client in tree.client_ids() {
        // Snapshot: `assign` only reads the tree, but the borrow checker
        // cannot see that, and assignment lists are tiny.
        let assignments: Vec<(NodeId, u64)> = placement
            .assignments(client)
            .iter()
            .map(|a| (a.server, a.amount))
            .collect();
        for (server, amount) in assignments {
            accounting.assign(tree, client, server, amount);
        }
    }

    // A violated client link is irreparable: the client's own demand
    // crosses it no matter where it is served.
    for client in tree.client_ids() {
        if accounting.link_residual(LinkId::Client(client)) < 0 {
            return false;
        }
    }

    // Saturated node links, bottom-up. Re-homing below a link only
    // sheds flow from it and its ancestors, so links already processed
    // stay repaired.
    let single_server = policy.is_single_server();
    for &node in tree.postorder_nodes() {
        if tree.is_root(node) {
            continue;
        }
        let link = LinkId::Node(node);
        if accounting.link_residual(link) >= 0 {
            continue;
        }
        // Assignments crossing the link: clients inside subtree(node)
        // served strictly above it.
        let mut crossing: Vec<(ClientId, NodeId, u64)> = Vec::new();
        for &client in tree.subtree_clients(node) {
            for a in placement.assignments(client) {
                if !tree.node_is_ancestor_or_self(a.server, node) {
                    crossing.push((client, a.server, a.amount));
                }
            }
        }
        // Largest flows first: fewer moves shed the excess.
        crossing.sort_by_key(|&(client, _, amount)| {
            (std::cmp::Reverse(amount), tree.client_preorder_rank(client))
        });
        for (client, server, amount) in crossing {
            let deficit = -accounting.link_residual(link);
            if deficit <= 0 {
                break;
            }
            // Single-server policies must move the whole client;
            // Multiple moves just enough to close the deficit.
            let move_total = if single_server {
                amount
            } else {
                amount.min(deficit as u64)
            };
            move_below(
                problem,
                placement,
                &mut accounting,
                client,
                server,
                move_total,
                node,
                single_server,
            );
        }
        if accounting.link_residual(link) < 0 {
            return false;
        }
    }

    // Replicas left without any load cost money (and, under Closest,
    // can shadow the real server): drop them.
    let mut loads = rp_tree::NodeMap::filled(tree.num_nodes(), 0u64);
    placement.accumulate_server_loads(&mut loads);
    let idle: Vec<NodeId> = placement
        .replicas()
        .iter()
        .copied()
        .filter(|&n| loads[n] == 0)
        .collect();
    for node in idle {
        placement.remove_replica(node);
    }
    true
}

/// Tries to move `move_total` requests of `client` from `server` to
/// servers on the client's path at or below `ceiling` (all strictly
/// below the violated link). Rolls back entirely when the amount cannot
/// be placed; returns whether the move happened.
#[allow(clippy::too_many_arguments)]
fn move_below(
    problem: &ProblemInstance,
    placement: &mut Placement,
    accounting: &mut FeasAccounting,
    client: ClientId,
    server: NodeId,
    move_total: u64,
    ceiling: NodeId,
    single_server: bool,
) -> bool {
    if move_total == 0 {
        return false;
    }
    let tree = problem.tree();
    accounting.unassign(tree, client, server, move_total);
    let removed = placement.unassign(client, server, move_total);
    debug_assert_eq!(removed, move_total);

    // Candidate targets: the path from the client up to (and including)
    // the lower end of the violated link. They are all closer than the
    // old server, so any QoS bound the old assignment satisfied stays
    // satisfied.
    let mut targets: Vec<NodeId> = Vec::new();
    for ancestor in tree.ancestors_of_client(client) {
        targets.push(ancestor);
        if ancestor == ceiling {
            break;
        }
    }

    let mut moved: Vec<(NodeId, u64)> = Vec::new();
    let mut left = move_total;
    if single_server {
        // One target must take everything: prefer an open replica
        // (closest first), else the cheapest node worth opening.
        let target = targets
            .iter()
            .copied()
            .find(|&v| {
                placement.has_replica(v) && accounting.max_assignable(tree, client, v) >= left
            })
            .or_else(|| {
                targets
                    .iter()
                    .copied()
                    .filter(|&v| {
                        !placement.has_replica(v)
                            && accounting.max_assignable(tree, client, v) >= left
                    })
                    .min_by_key(|&v| (problem.storage_cost(v), v.index()))
            });
        if let Some(v) = target {
            placement.add_replica(v);
            accounting.assign(tree, client, v, left);
            placement.assign(client, v, left);
            moved.push((v, left));
            left = 0;
        }
    } else {
        // Multiple: drain open replicas closest-first, then open the
        // cheapest helpful nodes.
        for &v in &targets {
            if left == 0 {
                break;
            }
            if !placement.has_replica(v) {
                continue;
            }
            let take = left.min(accounting.max_assignable(tree, client, v));
            if take > 0 {
                accounting.assign(tree, client, v, take);
                placement.assign(client, v, take);
                moved.push((v, take));
                left -= take;
            }
        }
        while left > 0 {
            let best = targets
                .iter()
                .copied()
                .filter(|&v| !placement.has_replica(v))
                .map(|v| (v, accounting.max_assignable(tree, client, v)))
                .filter(|&(_, headroom)| headroom > 0)
                .min_by_key(|&(v, _)| (problem.storage_cost(v), v.index()));
            let Some((v, headroom)) = best else {
                break;
            };
            let take = left.min(headroom);
            placement.add_replica(v);
            accounting.assign(tree, client, v, take);
            placement.assign(client, v, take);
            moved.push((v, take));
            left -= take;
        }
    }

    if left > 0 {
        // Roll back: undo the partial moves, restore the old assignment.
        for &(v, take) in &moved {
            accounting.unassign(tree, client, v, take);
            placement.unassign(client, v, take);
        }
        accounting.assign(tree, client, server, move_total);
        placement.assign(client, server, move_total);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    /// root (W=10) -> mid (W=5) -> {c0: 4}; root -> c1: 1. Uplink of mid
    /// bounded at `bw`.
    fn chain(bw: u64) -> ProblemInstance {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(root);
        ProblemInstance::builder(b.build().unwrap())
            .requests(vec![4, 1])
            .capacities(vec![10, 5])
            .storage_costs(vec![10, 5])
            .node_link_bandwidths(vec![None, Some(bw)])
            .build()
    }

    #[test]
    fn repair_moves_flow_below_the_saturated_link() {
        let p = chain(1);
        // An "all at the root" placement violates the bw-1 uplink by 3.
        let tree = p.tree();
        let clients: Vec<ClientId> = tree.client_ids().collect();
        let mut placement = Placement::empty(2);
        placement.add_replica(tree.root());
        placement.assign(clients[0], tree.root(), 4);
        placement.assign(clients[1], tree.root(), 1);
        assert!(!placement.is_valid(&p, Policy::Multiple));
        assert!(repair_bandwidth(&p, &mut placement, Policy::Multiple));
        assert!(placement.is_valid(&p, Policy::Multiple));
        // 3 of c0's requests must now be served at mid.
        let mid = tree.node_ids().nth(1).unwrap();
        assert!(placement.has_replica(mid));
    }

    #[test]
    fn repair_moves_whole_clients_under_single_server_policies() {
        let p = chain(1);
        let tree = p.tree();
        let clients: Vec<ClientId> = tree.client_ids().collect();
        let mut placement = Placement::empty(2);
        placement.add_replica(tree.root());
        placement.assign(clients[0], tree.root(), 4);
        placement.assign(clients[1], tree.root(), 1);
        assert!(repair_bandwidth(&p, &mut placement, Policy::Upwards));
        assert!(placement.is_valid(&p, Policy::Upwards));
        // c0 (4 requests) moved entirely to mid — no split allowed.
        assert_eq!(placement.assignments(clients[0]).len(), 1);
    }

    #[test]
    fn irreparable_links_fail_cleanly() {
        // bw = 0 and mid too small for the whole client: no repair can
        // help (4 requests, mid holds 5 — wait, it can. Shrink mid.)
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let p = ProblemInstance::builder(b.build().unwrap())
            .requests(vec![4])
            .capacities(vec![10, 3])
            .storage_costs(vec![10, 3])
            .node_link_bandwidths(vec![None, Some(0)])
            .build();
        let tree = p.tree();
        let client = tree.client_ids().next().unwrap();
        let mut placement = Placement::empty(1);
        placement.add_replica(tree.root());
        placement.assign(client, tree.root(), 4);
        assert!(!repair_bandwidth(&p, &mut placement, Policy::Multiple));
    }

    #[test]
    fn bandwidth_repair_wrapper_fixes_the_classic_heuristics() {
        let p = chain(1);
        // UBCF serves everything as high as it fits — here it ignores
        // the bw-1 uplink. The wrapper must hand back a valid placement
        // or a clean failure, never a violating one.
        for heuristic in Heuristic::BASE {
            if let Some(placement) = BandwidthRepair(heuristic).run(&p) {
                assert!(
                    placement.is_valid(&p, heuristic.policy()),
                    "{heuristic} returned an invalid repaired placement"
                );
            }
        }
        // MG with repair must succeed here (a feasible Multiple
        // placement exists: 3 at mid, 1 up, c1 at root).
        let repaired = BandwidthRepair(Heuristic::Mg).run(&p);
        assert!(repaired.is_some());
    }

    #[test]
    fn wrapper_is_transparent_without_bandwidth_limits() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(root);
        let p = ProblemInstance::replica_cost(b.build().unwrap(), vec![3, 2], vec![6, 4]);
        for heuristic in Heuristic::BASE {
            let plain = heuristic.run(&p).map(|pl| pl.cost(&p));
            let wrapped = BandwidthRepair(heuristic).run(&p).map(|pl| pl.cost(&p));
            assert_eq!(plain, wrapped, "{heuristic}");
        }
    }
}
