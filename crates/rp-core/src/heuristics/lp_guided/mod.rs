//! LP-guided rounding & repair heuristics — a decision layer on top of
//! the LP engine that covers **every** problem family, including the
//! two the paper's Section 4/6 heuristics cannot see: link-bandwidth
//! bounds and multiple object types.
//!
//! # Why LP-guided
//!
//! The classic eight heuristics reason about capacities only; on
//! bandwidth-constrained platforms they happily route more requests
//! over a link than it carries, and the multi-object problem (whose
//! heuristics the paper leaves open) has no classic counterpart at all.
//! The revised simplex, however, solves the *rational relaxation* of
//! either formulation in milliseconds — and its fractional optimum
//! already encodes where replicas want to be (`x_j` mass) and how the
//! requests want to split (`y_{i,j}`), bandwidth and shared-capacity
//! constraints included. The pipeline here turns that fractional
//! guidance into feasible integral placements:
//!
//! 1. **Extract** ([`crate::ilp::lower_bound_fractional_reusing`],
//!    [`crate::ilp::multi_lower_bound_fractional_reusing`]) — solve the
//!    rational relaxation and keep the full fractional point instead of
//!    just its objective.
//! 2. **Round** ([`lp_guided`], [`lp_guided_multi`]) — a two-strategy
//!    portfolio (commit to the LP's replica set and fill it bottom-up
//!    within the LP's load budgets, or copy the ceilinged fractional
//!    splits; see [`rounding`]) guided by the mass ordering of
//!    [`guide`], with every single assignment metered by the exact
//!    feasibility accounting of [`accounting`]: residual node
//!    capacities *and* residual link bandwidths (shared across objects
//!    in the multi-object case), down to the unit.
//! 3. **Repair** — requests the rounding left unserved are re-homed
//!    along their ancestor paths (open replicas first, then the
//!    best-cost-per-absorbed new ancestor, then a depth-1 augmenting
//!    rescue that relocates blocking load); afterwards a push-down /
//!    prune / consolidate pipeline drops every replica whose load
//!    re-homes for free and opens fresh ancestors that absorb thin
//!    replicas at a net saving — which is what recovers the "serve
//!    everything at the root" optima that pure mass-ordered greedy
//!    misses.
//! 4. **Retrofit** ([`BandwidthRepair`], [`repair_bandwidth`]) — the
//!    classic heuristics get a post-hoc bandwidth repair that moves
//!    saturating flows *down* (below the violated link), so the
//!    original Figure success/cost experiments run on
//!    bandwidth-constrained platforms too.
//!
//! # When LP-guided beats the classic eight
//!
//! * **Bandwidth-bound instances** — the classic heuristics only
//!   succeed when the repair pass can untangle their placements; the
//!   LP-guided rounding starts from a point that satisfies every link
//!   constraint fractionally, so its success rate tracks LP
//!   feasibility.
//! * **Multi-object instances** — the LP sees the shared capacity and
//!   link rows that couple the objects; the sequential greedy
//!   ([`crate::multi::solve_multi_greedy`]) allocates object by object
//!   and can paint itself into a corner.
//! * **Heterogeneous cost structure** — the fractional `x` mass points
//!   at the cost-efficient nodes; the classic heuristics' structural
//!   orders (top-down, bottom-up) ignore cost ratios entirely.
//!
//! On easy capacity-only instances the classic eight remain the better
//! *per-microsecond* choice (no LP solve); `MixedBest::
//! full_sweep_lp_guided` runs both and keeps the cheapest.

pub mod accounting;
pub mod guide;
pub mod multi;
pub mod repair;
pub mod rounding;

pub use multi::{lp_guided_multi, lp_guided_multi_reusing, lp_guided_multi_with};
pub use repair::{repair_bandwidth, BandwidthRepair, RunnableHeuristic};
pub use rounding::{lp_guided, lp_guided_reusing, lp_guided_with};
