//! Turning a fractional optimum into rounding guidance: which servers
//! to visit, in what order, and which request splits the LP suggested
//! at each of them.
//!
//! The ordering heuristic is *mass first*: a node whose `x_j` is close
//! to 1 is one the relaxation genuinely wants open (on the replica
//! LPs, capacity rows force `x_j ≥ load_j / W_j`, so mass is load in
//! disguise). Ties break towards the cheaper node, then the lower
//! index — making the whole pipeline deterministic.

use rp_tree::{ClientId, NodeId};

/// Fractional mass below this is treated as "the LP does not want this
/// node".
pub const MASS_TOLERANCE: f64 = 1e-6;

/// Mass at or above this marks a node the LP is *committed* to: the
/// rounding opens it eagerly (and saturates it). Nodes below the
/// threshold are the LP's thin tail — cost-shaving fractions that an
/// integral solution should consolidate, not copy — and are only
/// opened by the escalation phase when the committed set cannot absorb
/// the demand.
pub const COMMIT_THRESHOLD: f64 = 0.5;

/// The rounding guidance extracted from one fractional optimum.
pub struct MassGuide {
    /// Nodes with positive fractional mass, in visit order (decreasing
    /// mass, then increasing storage cost, then index).
    pub order: Vec<NodeId>,
    /// Per node index: the clients whose fractional `y` is positive at
    /// that node, sorted by decreasing `y` (ties by client index), with
    /// the suggested fractional amount.
    pub per_server: Vec<Vec<(ClientId, f64)>>,
}

/// Builds the guidance for one (object's) fractional optimum.
///
/// `mass[j]` is the fractional `x_j` per node index; `assignment[i]`
/// lists the positive fractional `y_{i,j}` per client; `cost(j)` is the
/// storage cost used to break mass ties.
pub fn mass_guide(
    mass: &[f64],
    assignment: &[Vec<(NodeId, f64)>],
    cost: impl Fn(NodeId) -> u64,
) -> MassGuide {
    let mut order: Vec<NodeId> = (0..mass.len())
        .filter(|&j| mass[j] > MASS_TOLERANCE)
        .map(NodeId::from_index)
        .collect();
    order.sort_by(|&a, &b| {
        mass[b.index()]
            .partial_cmp(&mass[a.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| cost(a).cmp(&cost(b)))
            .then_with(|| a.index().cmp(&b.index()))
    });
    let mut per_server: Vec<Vec<(ClientId, f64)>> = vec![Vec::new(); mass.len()];
    for (client_index, row) in assignment.iter().enumerate() {
        let client = ClientId::from_index(client_index);
        for &(server, y) in row {
            per_server[server.index()].push((client, y));
        }
    }
    for list in &mut per_server {
        list.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.index().cmp(&b.0.index()))
        });
    }
    MassGuide { order, per_server }
}

/// The integral amount a fractional `y` suggests assigning: its
/// ceiling, with a guard against floating-point fuzz just above an
/// integer (so `3.0000001` rounds to 3, not 4).
pub fn guided_amount(y: f64) -> u64 {
    (y - 1e-6).ceil().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_mass_major_with_cost_tiebreak() {
        let mass = vec![0.4, 1.0, 0.0, 0.4];
        let assignment: Vec<Vec<(NodeId, f64)>> = vec![];
        let costs = [10u64, 5, 1, 2];
        let guide = mass_guide(&mass, &assignment, |n| costs[n.index()]);
        let order: Vec<usize> = guide.order.iter().map(|n| n.index()).collect();
        // Node 1 (mass 1) first; nodes 0 and 3 tie on mass, node 3 is
        // cheaper; node 2 (zero mass) is absent.
        assert_eq!(order, vec![1, 3, 0]);
    }

    #[test]
    fn per_server_lists_sort_by_decreasing_y() {
        let mass = vec![1.0, 1.0];
        let n0 = NodeId::from_index(0);
        let assignment: Vec<Vec<(NodeId, f64)>> =
            vec![vec![(n0, 1.5)], vec![(n0, 3.0)], vec![(n0, 1.5)]];
        let guide = mass_guide(&mass, &assignment, |_| 1);
        let at0: Vec<(usize, f64)> = guide.per_server[0]
            .iter()
            .map(|&(c, y)| (c.index(), y))
            .collect();
        assert_eq!(at0, vec![(1, 3.0), (0, 1.5), (2, 1.5)]);
    }

    #[test]
    fn guided_amounts_round_up_but_absorb_fuzz() {
        assert_eq!(guided_amount(2.5), 3);
        assert_eq!(guided_amount(3.0000001), 3);
        assert_eq!(guided_amount(0.2), 1);
        assert_eq!(guided_amount(0.0), 0);
    }
}
