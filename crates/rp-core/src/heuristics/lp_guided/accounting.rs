//! Exact feasibility accounting for the rounding and repair passes.
//!
//! [`FeasAccounting`] tracks, in integers, the residual processing
//! capacity of every node and the residual bandwidth of every link.
//! Every assignment decision of the LP-guided pipeline goes through
//! [`FeasAccounting::max_assignable`] /
//! [`FeasAccounting::assign`], so a rounded placement is feasible *by
//! construction* — capacity, per-link bandwidth and (in the
//! multi-object case) the shared capacities all at once.
//!
//! Residuals are signed: the bandwidth repair charges an *existing*
//! (possibly violating) placement into the accounting and then drives
//! the negative link residuals back to zero by re-homing flow.

use rp_tree::{ClientId, LinkId, LinkMap, NodeId, TreeNetwork};

use crate::multi::MultiObjectProblem;
use crate::problem::ProblemInstance;

/// Residual used for unbounded links: large enough never to bind,
/// small enough that charging every request of any instance cannot
/// overflow an `i64`.
const UNBOUNDED: i64 = i64::MAX / 4;

/// Residual node capacities and link bandwidths, updated exactly as
/// requests are assigned and un-assigned.
pub struct FeasAccounting {
    node_residual: Vec<i64>,
    link_residual: LinkMap<i64>,
}

impl FeasAccounting {
    fn new(
        tree: &TreeNetwork,
        capacity: impl Fn(NodeId) -> u64,
        bandwidth: impl Fn(LinkId) -> Option<u64>,
    ) -> Self {
        let node_residual = tree.node_ids().map(|n| capacity(n) as i64).collect();
        let mut link_residual = LinkMap::filled(
            tree.num_clients(),
            tree.num_nodes(),
            tree.root().index(),
            UNBOUNDED,
        );
        for link in tree.link_ids() {
            if let Some(bw) = bandwidth(link) {
                link_residual[link] = bw as i64;
            }
        }
        FeasAccounting {
            node_residual,
            link_residual,
        }
    }

    /// Fresh accounting over a single-object instance: full capacities,
    /// full bandwidths.
    pub fn for_problem(problem: &ProblemInstance) -> Self {
        FeasAccounting::new(
            problem.tree(),
            |n| problem.capacity(n),
            |l| problem.bandwidth(l),
        )
    }

    /// Fresh accounting over a multi-object instance: the **shared**
    /// capacities and the **shared** link bandwidths — one accounting
    /// serves every object's assignments, which is exactly how the
    /// shared rows of the formulation couple them.
    pub fn for_multi(problem: &MultiObjectProblem) -> Self {
        FeasAccounting::new(
            problem.tree(),
            |n| problem.capacity(n),
            |l| problem.bandwidth(l),
        )
    }

    /// Residual capacity of `node` (negative when overloaded).
    pub fn node_residual(&self, node: NodeId) -> i64 {
        self.node_residual[node.index()]
    }

    /// Residual bandwidth of `link` (negative when saturated past its
    /// bound; effectively unbounded links report a huge positive value).
    pub fn link_residual(&self, link: LinkId) -> i64 {
        self.link_residual[link]
    }

    /// The largest amount of `client`'s requests that can still be
    /// routed to `server` without violating its capacity or any link on
    /// the way: `min(W-residual, min over path links of BW-residual)`,
    /// clamped at zero. Returns 0 when `server` is not on the client's
    /// path.
    pub fn max_assignable(&self, tree: &TreeNetwork, client: ClientId, server: NodeId) -> u64 {
        let Some(links) = tree.client_path_links(client, server) else {
            return 0;
        };
        let mut headroom = self.node_residual[server.index()];
        for link in links {
            headroom = headroom.min(self.link_residual[link]);
            if headroom <= 0 {
                return 0;
            }
        }
        headroom.max(0) as u64
    }

    /// Charges `amount` requests of `client` routed to `server`:
    /// subtracts from the server's capacity residual and from every
    /// link residual on the path. (Unlike
    /// [`max_assignable`](Self::max_assignable) this does not refuse
    /// overdrafts — the repair pass deliberately charges violating
    /// placements to expose their negative residuals.)
    pub fn assign(&mut self, tree: &TreeNetwork, client: ClientId, server: NodeId, amount: u64) {
        self.apply(tree, client, server, amount as i64);
    }

    /// Reverts [`assign`](Self::assign): adds `amount` back to the
    /// server and path-link residuals.
    pub fn unassign(&mut self, tree: &TreeNetwork, client: ClientId, server: NodeId, amount: u64) {
        self.apply(tree, client, server, -(amount as i64));
    }

    fn apply(&mut self, tree: &TreeNetwork, client: ClientId, server: NodeId, amount: i64) {
        if amount == 0 {
            return;
        }
        self.node_residual[server.index()] -= amount;
        let links = tree
            .client_path_links(client, server)
            .expect("assignments only target on-path servers");
        for link in links {
            self.link_residual[link] -= amount;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    /// root -> mid -> {c0}; root -> c1. Capacities 10/3, mid uplink bw 2.
    fn sample() -> (ProblemInstance, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        let c0 = b.add_client(mid);
        let c1 = b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![4, 1])
            .capacities(vec![10, 3])
            .node_link_bandwidths(vec![None, Some(2)])
            .build();
        (p, vec![root, mid], vec![c0, c1])
    }

    #[test]
    fn max_assignable_is_the_path_bottleneck() {
        let (p, n, c) = sample();
        let acct = FeasAccounting::for_problem(&p);
        // c0 -> root crosses the bw-2 uplink: bottleneck 2.
        assert_eq!(acct.max_assignable(p.tree(), c[0], n[0]), 2);
        // c0 -> mid sees only mid's capacity.
        assert_eq!(acct.max_assignable(p.tree(), c[0], n[1]), 3);
        // c1 -> root: only the (unbounded) client link and the root.
        assert_eq!(acct.max_assignable(p.tree(), c[1], n[0]), 10);
        // mid is not on c1's path.
        assert_eq!(acct.max_assignable(p.tree(), c[1], n[1]), 0);
    }

    #[test]
    fn assign_and_unassign_round_trip() {
        let (p, n, c) = sample();
        let mut acct = FeasAccounting::for_problem(&p);
        acct.assign(p.tree(), c[0], n[0], 2);
        assert_eq!(acct.node_residual(n[0]), 8);
        assert_eq!(acct.link_residual(LinkId::Node(n[1])), 0);
        assert_eq!(acct.max_assignable(p.tree(), c[0], n[0]), 0);
        // mid's capacity is untouched by the pass-through flow.
        assert_eq!(acct.node_residual(n[1]), 3);
        acct.unassign(p.tree(), c[0], n[0], 2);
        assert_eq!(acct.node_residual(n[0]), 10);
        assert_eq!(acct.max_assignable(p.tree(), c[0], n[0]), 2);
    }

    #[test]
    fn overdrafts_surface_as_negative_residuals() {
        let (p, n, c) = sample();
        let mut acct = FeasAccounting::for_problem(&p);
        // Charge a violating placement: 4 requests over the bw-2 link.
        acct.assign(p.tree(), c[0], n[0], 4);
        assert_eq!(acct.link_residual(LinkId::Node(n[1])), -2);
        assert_eq!(acct.max_assignable(p.tree(), c[0], n[0]), 0);
    }
}
