//! LP-guided rounding for **multi-object** instances — the heuristic
//! the paper leaves open (Section 8.1).
//!
//! The driver mirrors [`super::rounding`] but works object-major on the
//! shared relaxation: the fractional masses of *all* objects are
//! interleaved into one visit order (so a strongly-wanted replica of a
//! small object is not starved by a big object's leftovers), and every
//! assignment of every object draws from **one** shared
//! [`FeasAccounting`] — the shared node capacities and shared link
//! bandwidths are respected across objects by construction, which is
//! exactly the coupling [`crate::multi::solve_multi_greedy`]'s
//! sequential projection approximates.

use rp_tree::{ClientId, NodeId};

use rp_lp::LpWorkspace;

use crate::heuristics::lp_guided::accounting::FeasAccounting;
use crate::heuristics::lp_guided::guide::{guided_amount, mass_guide, MassGuide};
use crate::ilp::{multi_lower_bound_fractional_reusing, IlpOptions, MultiFractionalLp};
use crate::multi::{MultiObjectProblem, MultiPlacement, ObjectId};
use crate::solution::Placement;

/// Multi-object LP-guided rounding with default options.
pub fn lp_guided_multi(problem: &MultiObjectProblem) -> Option<MultiPlacement> {
    lp_guided_multi_with(problem, &IlpOptions::default())
}

/// [`lp_guided_multi`] with explicit LP options.
pub fn lp_guided_multi_with(
    problem: &MultiObjectProblem,
    options: &IlpOptions,
) -> Option<MultiPlacement> {
    let mut workspace = LpWorkspace::new();
    lp_guided_multi_reusing(problem, options, &mut workspace)
}

/// [`lp_guided_multi`] reusing the LP buffers of `workspace`. Returns
/// `None` when the shared relaxation is infeasible or the rounding
/// cannot serve every request of every object.
pub fn lp_guided_multi_reusing(
    problem: &MultiObjectProblem,
    options: &IlpOptions,
    workspace: &mut LpWorkspace,
) -> Option<MultiPlacement> {
    let fractional = multi_lower_bound_fractional_reusing(problem, options, workspace)?;
    round_multi_fractional(problem, &fractional)
}

/// How aggressively phase 1 follows the fractional mass (see the
/// single-object counterpart in [`super::rounding`]).
#[derive(Clone, Copy, PartialEq, Eq)]
enum RoundingMode {
    /// Committed nodes only (mass ≥ ½), saturated with subtree demand.
    CommitSaturate,
    /// Every positive-mass node, ceilinged guided splits only.
    ThinGuided,
}

/// Rounds an explicit multi-object fractional optimum.
///
/// Like the single-object rounding this runs a two-strategy portfolio —
/// consolidate-hard, then follow-the-LP — and keeps the cheapest
/// feasible result.
pub fn round_multi_fractional(
    problem: &MultiObjectProblem,
    fractional: &MultiFractionalLp,
) -> Option<MultiPlacement> {
    // The guides are mode-independent: build them once for both modes.
    let guides: Vec<MassGuide> = problem
        .object_ids()
        .map(|k| {
            mass_guide(
                &fractional.replica_mass[k.index()],
                &fractional.assignment[k.index()],
                |n| problem.storage_cost(k, n),
            )
        })
        .collect();
    let a = round_multi_mode(problem, fractional, &guides, RoundingMode::CommitSaturate);
    let b = round_multi_mode(problem, fractional, &guides, RoundingMode::ThinGuided);
    match (a, b) {
        (Some(a), Some(b)) => Some(if a.cost(problem) <= b.cost(problem) {
            a
        } else {
            b
        }),
        (a, b) => a.or(b),
    }
}

fn round_multi_mode(
    problem: &MultiObjectProblem,
    fractional: &MultiFractionalLp,
    guides: &[MassGuide],
    mode: RoundingMode,
) -> Option<MultiPlacement> {
    let tree = problem.tree();
    let num_objects = problem.num_objects();
    let mut accounting = FeasAccounting::for_multi(problem);
    let mut per_object: Vec<Placement> = vec![Placement::empty(tree.num_clients()); num_objects];
    let mut remaining: Vec<Vec<u64>> = problem
        .object_ids()
        .map(|k| tree.client_ids().map(|c| problem.requests(k, c)).collect())
        .collect();

    // --- Phase 1: guided assignment, all objects' masses interleaved. ---
    match mode {
        // The LP selects the per-object replica sets (mass ≥ ½); a
        // bottom-up MG-style fill assigns the requests against the
        // shared residuals. At a shared node the higher-mass object
        // fills first. Serving low keeps the upper tree's shared
        // capacity and links available — see the single-object
        // counterpart for the rationale.
        RoundingMode::CommitSaturate => {
            for &server in tree.postorder_nodes() {
                let mut at_node: Vec<(usize, f64)> = (0..num_objects)
                    .map(|k| (k, fractional.replica_mass[k][server.index()]))
                    .filter(|&(_, mass)| {
                        mass >= crate::heuristics::lp_guided::guide::COMMIT_THRESHOLD
                    })
                    .collect();
                at_node.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.0.cmp(&b.0))
                });
                for (k, _) in at_node {
                    // Fill up to the LP's load for this (object, node):
                    // the budgets of different objects at a shared node
                    // are mutually feasible by the shared capacity row,
                    // so no object can steal what another was allotted.
                    let lp_load: f64 = guides[k].per_server[server.index()]
                        .iter()
                        .map(|&(_, y)| y)
                        .sum();
                    let mut budget = guided_amount(lp_load);
                    // The LP's own clients first, then top off with the
                    // rest of the object's subtree demand.
                    for &(client, y) in &guides[k].per_server[server.index()] {
                        if budget == 0 {
                            break;
                        }
                        let amount = remaining[k][client.index()]
                            .min(guided_amount(y))
                            .min(budget)
                            .min(accounting.max_assignable(tree, client, server));
                        if amount > 0 {
                            per_object[k].add_replica(server);
                            accounting.assign(tree, client, server, amount);
                            per_object[k].assign(client, server, amount);
                            remaining[k][client.index()] -= amount;
                            budget -= amount;
                        }
                    }
                    let mut fill: Vec<ClientId> = tree
                        .subtree_clients(server)
                        .iter()
                        .copied()
                        .filter(|&c| remaining[k][c.index()] > 0)
                        .collect();
                    fill.sort_by_key(|&c| (std::cmp::Reverse(remaining[k][c.index()]), c.index()));
                    for client in fill {
                        if budget == 0 {
                            break;
                        }
                        let amount = remaining[k][client.index()]
                            .min(budget)
                            .min(accounting.max_assignable(tree, client, server));
                        if amount > 0 {
                            per_object[k].add_replica(server);
                            accounting.assign(tree, client, server, amount);
                            per_object[k].assign(client, server, amount);
                            remaining[k][client.index()] -= amount;
                            budget -= amount;
                        }
                    }
                }
            }
        }
        // Every positive-mass (object, node) pair gets exactly the
        // ceilinged guided splits, in one joint (object, server) order
        // by decreasing mass, so the shared capacities are handed out
        // where the LP wants them most.
        RoundingMode::ThinGuided => {
            let mut joint: Vec<(usize, NodeId, f64)> = Vec::new();
            for (k, guide) in guides.iter().enumerate() {
                for &server in &guide.order {
                    joint.push((k, server, fractional.replica_mass[k][server.index()]));
                }
            }
            joint.sort_by(|a, b| {
                b.2.partial_cmp(&a.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        let cost_a = problem.storage_cost(ObjectId(a.0 as u32), a.1);
                        let cost_b = problem.storage_cost(ObjectId(b.0 as u32), b.1);
                        cost_a.cmp(&cost_b)
                    })
                    .then_with(|| (a.0, a.1.index()).cmp(&(b.0, b.1.index())))
            });
            for &(k, server, _) in &joint {
                for &(client, y) in &guides[k].per_server[server.index()] {
                    let left = remaining[k][client.index()];
                    if left == 0 {
                        continue;
                    }
                    let amount = left
                        .min(guided_amount(y))
                        .min(accounting.max_assignable(tree, client, server));
                    if amount > 0 {
                        per_object[k].add_replica(server);
                        accounting.assign(tree, client, server, amount);
                        per_object[k].assign(client, server, amount);
                        remaining[k][client.index()] -= amount;
                    }
                }
            }
        }
    }

    // --- Phases 2 and 3: re-home the overflow, largest first. ---
    let mut pending: Vec<(usize, ClientId)> = Vec::new();
    for (k, object_remaining) in remaining.iter().enumerate() {
        for client in tree.client_ids() {
            if object_remaining[client.index()] > 0 {
                pending.push((k, client));
            }
        }
    }
    pending.sort_by_key(|&(k, client)| std::cmp::Reverse(remaining[k][client.index()]));
    for (k, client) in pending {
        let object = ObjectId(k as u32);
        for server in tree.ancestors_of_client(client) {
            if remaining[k][client.index()] == 0 {
                break;
            }
            if !per_object[k].has_replica(server) {
                continue;
            }
            let amount =
                remaining[k][client.index()].min(accounting.max_assignable(tree, client, server));
            if amount > 0 {
                accounting.assign(tree, client, server, amount);
                per_object[k].assign(client, server, amount);
                remaining[k][client.index()] -= amount;
            }
        }
        // Escalation with consolidation: best cost-per-absorbed node,
        // then fill it with the object's pending subtree demand (see
        // the single-object counterpart for the rationale).
        while remaining[k][client.index()] > 0 {
            let mut best: Option<(NodeId, u64, u64)> = None;
            for server in tree.ancestors_of_client(client) {
                if per_object[k].has_replica(server) {
                    continue;
                }
                let headroom = accounting.max_assignable(tree, client, server);
                if headroom == 0 {
                    continue;
                }
                let pending: u64 = tree
                    .subtree_clients(server)
                    .iter()
                    .filter(|&&c| remaining[k][c.index()] > 0)
                    .map(|&c| remaining[k][c.index()])
                    .sum();
                let absorbable = pending.min(accounting.node_residual(server).max(0) as u64);
                let cost = problem.storage_cost(object, server);
                let better = match best {
                    None => true,
                    Some((incumbent, _, incumbent_absorbable)) => {
                        let incumbent_cost = problem.storage_cost(object, incumbent);
                        let challenger = cost as u128 * incumbent_absorbable.max(1) as u128;
                        let reigning = incumbent_cost as u128 * absorbable.max(1) as u128;
                        challenger < reigning
                            || (challenger == reigning
                                && (cost, server.index()) < (incumbent_cost, incumbent.index()))
                    }
                };
                if better {
                    best = Some((server, headroom, absorbable));
                }
            }
            let Some((server, headroom, _)) = best else {
                // Dead end: try freeing shared capacity on the path by
                // relocating any object's load elsewhere (see the
                // single-object `rescue` for the idea). The stranded
                // object may need a replica opened at the freed node.
                if rescue_multi(
                    problem,
                    &mut per_object,
                    &mut accounting,
                    &mut remaining,
                    k,
                    client,
                ) {
                    continue;
                }
                return None;
            };
            per_object[k].add_replica(server);
            let amount = remaining[k][client.index()].min(headroom);
            accounting.assign(tree, client, server, amount);
            per_object[k].assign(client, server, amount);
            remaining[k][client.index()] -= amount;
            let mut fill: Vec<ClientId> = tree
                .subtree_clients(server)
                .iter()
                .copied()
                .filter(|&c| remaining[k][c.index()] > 0)
                .collect();
            fill.sort_by_key(|&c| (std::cmp::Reverse(remaining[k][c.index()]), c.index()));
            for c in fill {
                let take = remaining[k][c.index()].min(accounting.max_assignable(tree, c, server));
                if take > 0 {
                    accounting.assign(tree, c, server, take);
                    per_object[k].assign(c, server, take);
                    remaining[k][c.index()] -= take;
                }
            }
        }
    }

    // --- Phase 4: push-down, pruning, consolidation, pruning. The
    // push-down re-packs load towards the leaves so the *shared*
    // capacity of the high nodes — which sit on every client's path —
    // is free for the pruning pass to re-home into; the consolidation
    // then makes the one move pruning cannot: opening a fresh ancestor
    // that absorbs whole thin replicas of its subtree at a saving. ---
    push_down_multi(problem, &mut per_object, &mut accounting);
    prune_multi(problem, &mut per_object, &mut accounting);
    consolidate_multi(problem, &mut per_object, &mut accounting);
    prune_multi(problem, &mut per_object, &mut accounting);

    let placement = MultiPlacement { per_object };
    debug_assert!(
        placement.is_valid(problem, crate::policy::Policy::Multiple),
        "rounded multi placement failed validation: {:?}",
        placement.validate(problem, crate::policy::Policy::Multiple)
    );
    Some(placement)
}

/// The multi-object replace move (see the single-object
/// `consolidate_replicas`): per object, open a fresh ancestor and
/// migrate whole replicas of its subtree onto it when the drop saves
/// more than the new replica costs — all against the shared residuals.
fn consolidate_multi(
    problem: &MultiObjectProblem,
    per_object: &mut [Placement],
    accounting: &mut FeasAccounting,
) {
    let tree = problem.tree();
    for (k, object) in problem.object_ids().enumerate() {
        for &candidate in tree.postorder_nodes() {
            if per_object[k].has_replica(candidate) {
                continue;
            }
            let mut inside: Vec<NodeId> = per_object[k]
                .replicas()
                .iter()
                .copied()
                .filter(|&r| r != candidate && tree.node_is_ancestor_or_self(r, candidate))
                .collect();
            if inside.is_empty() {
                continue;
            }
            let mut loads = rp_tree::NodeMap::filled(tree.num_nodes(), 0u64);
            per_object[k].accumulate_server_loads(&mut loads);
            inside.sort_by_key(|&r| (loads[r], r.index()));
            let mut absorbed: Vec<NodeId> = Vec::new();
            let mut moved: Vec<(ClientId, NodeId, u64)> = Vec::new();
            let mut saved: u64 = 0;
            for r in inside {
                let served: Vec<(ClientId, u64)> = tree
                    .client_ids()
                    .filter_map(|client| {
                        per_object[k]
                            .assignments(client)
                            .iter()
                            .find(|a| a.server == r)
                            .map(|a| (client, a.amount))
                    })
                    .collect();
                let mut r_moves: Vec<(ClientId, u64)> = Vec::new();
                let mut ok = true;
                for &(client, amount) in &served {
                    accounting.unassign(tree, client, r, amount);
                    per_object[k].unassign(client, r, amount);
                    if accounting.max_assignable(tree, client, candidate) < amount {
                        accounting.assign(tree, client, r, amount);
                        per_object[k].assign(client, r, amount);
                        ok = false;
                        break;
                    }
                    accounting.assign(tree, client, candidate, amount);
                    per_object[k].assign(client, candidate, amount);
                    r_moves.push((client, amount));
                }
                if ok {
                    per_object[k].remove_replica(r);
                    absorbed.push(r);
                    saved += problem.storage_cost(object, r);
                    for (client, amount) in r_moves {
                        moved.push((client, r, amount));
                    }
                } else {
                    for &(client, amount) in &r_moves {
                        accounting.unassign(tree, client, candidate, amount);
                        per_object[k].unassign(client, candidate, amount);
                        accounting.assign(tree, client, r, amount);
                        per_object[k].assign(client, r, amount);
                    }
                }
            }
            if absorbed.is_empty() {
                continue;
            }
            if saved > problem.storage_cost(object, candidate) {
                per_object[k].add_replica(candidate);
            } else {
                for &(client, r, amount) in &moved {
                    accounting.unassign(tree, client, candidate, amount);
                    per_object[k].unassign(client, candidate, amount);
                    accounting.assign(tree, client, r, amount);
                    per_object[k].assign(client, r, amount);
                }
                for r in absorbed {
                    per_object[k].add_replica(r);
                }
            }
        }
    }
}

/// Depth-1 augmenting rescue for a stranded (object, client): relocate
/// *any* object's load off the client's path (onto open replicas
/// elsewhere on the carrying clients' own paths) and hand the freed
/// shared capacity to the stranded client — opening a replica of its
/// object at the freed node when it has none. Returns `true` once the
/// client is fully served.
fn rescue_multi(
    problem: &MultiObjectProblem,
    per_object: &mut [Placement],
    accounting: &mut FeasAccounting,
    remaining: &mut [Vec<u64>],
    k: usize,
    client: ClientId,
) -> bool {
    let tree = problem.tree();
    while remaining[k][client.index()] > 0 {
        let mut progressed = false;
        for server in tree.ancestors_of_client(client) {
            if remaining[k][client.index()] == 0 {
                break;
            }
            // Load of any object currently served at this node.
            let mut others: Vec<(usize, ClientId, u64)> = Vec::new();
            for (k2, placement) in per_object.iter().enumerate() {
                for &c in tree.subtree_clients(server) {
                    if k2 == k && c == client {
                        continue;
                    }
                    if let Some(a) = placement.assignments(c).iter().find(|a| a.server == server) {
                        others.push((k2, c, a.amount));
                    }
                }
            }
            for (k2, other, amount) in others {
                if remaining[k][client.index()] == 0 {
                    break;
                }
                let mut left = amount;
                for target in tree.ancestors_of_client(other) {
                    if left == 0 {
                        break;
                    }
                    if target == server || !per_object[k2].has_replica(target) {
                        continue;
                    }
                    let take = left.min(accounting.max_assignable(tree, other, target));
                    if take == 0 {
                        continue;
                    }
                    accounting.unassign(tree, other, server, take);
                    per_object[k2].unassign(other, server, take);
                    accounting.assign(tree, other, target, take);
                    per_object[k2].assign(other, target, take);
                    left -= take;
                    let give = remaining[k][client.index()]
                        .min(accounting.max_assignable(tree, client, server));
                    if give > 0 {
                        per_object[k].add_replica(server);
                        accounting.assign(tree, client, server, give);
                        per_object[k].assign(client, server, give);
                        remaining[k][client.index()] -= give;
                        progressed = true;
                    }
                }
            }
        }
        if !progressed {
            return false;
        }
    }
    true
}

/// Moves every object's assignments as low as they can go among that
/// object's open replicas (closest first) within the shared residuals —
/// the multi-object counterpart of the single-object push-down.
fn push_down_multi(
    problem: &MultiObjectProblem,
    per_object: &mut [Placement],
    accounting: &mut FeasAccounting,
) {
    let tree = problem.tree();
    for placement in per_object.iter_mut() {
        for client in tree.client_ids() {
            let assignments: Vec<(NodeId, u64)> = placement
                .assignments(client)
                .iter()
                .map(|a| (a.server, a.amount))
                .collect();
            for (server, amount) in assignments {
                let mut left = amount;
                for target in tree.ancestors_of_client(client) {
                    if target == server || left == 0 {
                        break;
                    }
                    if !placement.has_replica(target) {
                        continue;
                    }
                    // Lift the old charge before measuring the target's
                    // headroom — the moved flow itself sits on the
                    // shared path prefix (see the single-object pass).
                    accounting.unassign(tree, client, server, left);
                    placement.unassign(client, server, left);
                    let take = left.min(accounting.max_assignable(tree, client, target));
                    if take > 0 {
                        accounting.assign(tree, client, target, take);
                        placement.assign(client, target, take);
                    }
                    let stays = left - take;
                    if stays > 0 {
                        accounting.assign(tree, client, server, stays);
                        placement.assign(client, server, stays);
                    }
                    left = stays;
                }
            }
        }
    }
}

/// Drops every (object, replica) pair whose load re-homes onto the
/// object's remaining replicas within the shared residuals.
fn prune_multi(
    problem: &MultiObjectProblem,
    per_object: &mut [Placement],
    accounting: &mut FeasAccounting,
) {
    let tree = problem.tree();
    let mut candidates: Vec<(usize, NodeId, u64)> = Vec::new();
    for (k, placement) in per_object.iter().enumerate() {
        let mut loads = rp_tree::NodeMap::filled(tree.num_nodes(), 0u64);
        placement.accumulate_server_loads(&mut loads);
        for &node in placement.replicas() {
            candidates.push((k, node, loads[node]));
        }
    }
    // Most expensive first, lightest load within a price (the easy
    // drops), then a deterministic tail.
    candidates.sort_by_key(|&(k, node, load)| {
        (
            std::cmp::Reverse(problem.storage_cost(ObjectId(k as u32), node)),
            load,
            k,
            node.index(),
        )
    });
    let candidates: Vec<(usize, NodeId)> = candidates
        .into_iter()
        .map(|(k, node, _)| (k, node))
        .collect();
    for (k, node) in candidates {
        let placement = &mut per_object[k];
        let served: Vec<(ClientId, u64)> = tree
            .client_ids()
            .filter_map(|client| {
                placement
                    .assignments(client)
                    .iter()
                    .find(|a| a.server == node)
                    .map(|a| (client, a.amount))
            })
            .collect();
        for &(client, amount) in &served {
            accounting.unassign(tree, client, node, amount);
            placement.unassign(client, node, amount);
        }
        let mut moved: Vec<(ClientId, NodeId, u64)> = Vec::new();
        let mut stuck = false;
        'rehome: for &(client, amount) in &served {
            let mut left = amount;
            for server in tree.ancestors_of_client(client) {
                if left == 0 {
                    break;
                }
                if server == node || !placement.has_replica(server) {
                    continue;
                }
                let take = left.min(accounting.max_assignable(tree, client, server));
                if take > 0 {
                    accounting.assign(tree, client, server, take);
                    placement.assign(client, server, take);
                    moved.push((client, server, take));
                    left -= take;
                }
            }
            if left > 0 {
                stuck = true;
                break 'rehome;
            }
        }
        if stuck {
            for &(client, server, take) in &moved {
                accounting.unassign(tree, client, server, take);
                placement.unassign(client, server, take);
            }
            for &(client, amount) in &served {
                accounting.assign(tree, client, node, amount);
                placement.assign(client, node, amount);
            }
        } else {
            placement.remove_replica(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilp::{multi_lower_bound, BoundKind};
    use crate::multi::solve_multi_ilp;
    use crate::policy::Policy;
    use rp_tree::TreeBuilder;

    fn coupling() -> MultiObjectProblem {
        // The Section 8.1 coupling example: hub fits one object only.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let hub = b.add_node(root);
        b.add_client(hub);
        b.add_client(hub);
        MultiObjectProblem::new(
            b.build().unwrap(),
            vec![vec![4, 0], vec![0, 4]],
            vec![10, 4],
            vec![vec![10, 1], vec![6, 5]],
        )
    }

    #[test]
    fn rounding_matches_the_exact_optimum_on_the_coupling_example() {
        let p = coupling();
        let rounded = lp_guided_multi(&p).expect("feasible");
        rounded.validate(&p, Policy::Multiple).expect("valid");
        // Object 0 at the hub (1), object 1 at the root (6): exact 7.
        assert_eq!(rounded.cost(&p), 7);
        assert_eq!(solve_multi_ilp(&p).unwrap().cost(&p), 7);
    }

    #[test]
    fn shared_links_are_respected() {
        let ok = coupling().with_link_bandwidths(vec![None, None], vec![None, Some(4)]);
        let rounded = lp_guided_multi(&ok).expect("feasible with bw = 4");
        rounded.validate(&ok, Policy::Multiple).expect("valid");
        assert_eq!(rounded.cost(&ok), 7);

        let starved = coupling().with_link_bandwidths(vec![None, None], vec![None, Some(3)]);
        assert!(lp_guided_multi(&starved).is_none());
    }

    #[test]
    fn rounded_cost_sits_above_the_rational_bound() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let hub = b.add_node(root);
        b.add_client(hub);
        b.add_client(hub);
        b.add_client(root);
        let p = MultiObjectProblem::new(
            b.build().unwrap(),
            vec![vec![3, 2, 1], vec![1, 4, 2]],
            vec![10, 8],
            vec![vec![5, 4], vec![6, 3]],
        );
        let rounded = lp_guided_multi(&p).expect("feasible");
        rounded.validate(&p, Policy::Multiple).expect("valid");
        let bound = multi_lower_bound(&p, BoundKind::Rational).unwrap();
        assert!(rounded.cost(&p) as f64 + 1e-6 >= bound);
        // And never better than the exact optimum.
        let exact = solve_multi_ilp(&p).unwrap().cost(&p);
        assert!(rounded.cost(&p) >= exact);
    }

    #[test]
    fn infeasible_instances_round_to_none() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        let p =
            MultiObjectProblem::new(b.build().unwrap(), vec![vec![50]], vec![10], vec![vec![1]]);
        assert!(lp_guided_multi(&p).is_none());
    }
}
