//! Shared bookkeeping for the polynomial heuristics of Section 6.
//!
//! Every heuristic manipulates the same two quantities:
//!
//! * `remaining[i]` — the requests of client `i` not yet affected to a
//!   server (the paper's `r'_i`);
//! * `inreq[j]` — the number of *unserved* requests issued in
//!   `subtree(j)` (the paper's `inreq_j`), kept consistent by
//!   subtracting from every ancestor of a client whenever some of its
//!   requests are assigned.
//!
//! [`HeuristicState`] owns this bookkeeping together with the
//! [`Placement`] being built, and provides the `deleteRequests`
//! procedures shared by the Upwards and Multiple heuristics.
//!
//! # Scratch-buffer conventions
//!
//! The state also owns every scratch buffer the heuristics need (client
//! work lists, per-node capacities, the top-down FIFO), so a heuristic
//! run performs **no steady-state heap allocation**: buffers are taken
//! with `std::mem::take`, refilled, and put back so their capacity is
//! reused by the next call. [`HeuristicState::reset`] rewinds the whole
//! state to the freshly-initialised configuration without releasing any
//! buffer, which lets *MixedBest* run all eight heuristics on a single
//! allocation set (see [`crate::heuristics::mixed_best`]).

use std::collections::VecDeque;

use rp_tree::{ClientId, NodeId};

use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Order in which the delete procedures consider the clients of a
/// subtree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeleteOrder {
    /// Non-increasing `r_i` (UTD, MTD, MG).
    LargestFirst,
    /// Non-decreasing `r_i` (MBU: "delete many small clients rather than
    /// fewer demanding ones").
    SmallestFirst,
}

/// The owned buffers of a [`HeuristicState`], detached from any
/// problem. Taking the buffers out ([`HeuristicState::into_buffers`])
/// and reattaching them to the next problem
/// ([`HeuristicState::with_buffers`]) lets a sweep pin **one**
/// allocation set per worker thread across trials over different trees:
/// each buffer keeps its capacity and only ever grows to the largest
/// problem seen.
#[derive(Default)]
pub struct StateBuffers {
    remaining: Vec<u64>,
    inreq: Vec<u64>,
    placement: Placement,
    scratch_clients: Vec<ClientId>,
    scratch_node_u64: Vec<u64>,
    scratch_fifo: VecDeque<NodeId>,
    scratch_nodes: Vec<NodeId>,
}

impl StateBuffers {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        StateBuffers::default()
    }
}

/// Mutable working state shared by all heuristics.
pub struct HeuristicState<'a> {
    problem: &'a ProblemInstance,
    remaining: Vec<u64>,
    inreq: Vec<u64>,
    placement: Placement,
    /// Scratch list of clients for the delete procedures and UBCF.
    pub(crate) scratch_clients: Vec<ClientId>,
    /// Scratch per-node `u64` working set (UBCF's remaining capacities).
    pub(crate) scratch_node_u64: Vec<u64>,
    /// Scratch FIFO for the Closest top-down traversals.
    pub(crate) scratch_fifo: VecDeque<NodeId>,
    /// Scratch list of nodes (CTDLF's sorted child lists).
    pub(crate) scratch_nodes: Vec<NodeId>,
}

impl<'a> HeuristicState<'a> {
    /// Initialises the state: nothing is served, `inreq[j]` equals the
    /// total requests of `subtree(j)`.
    pub fn new(problem: &'a ProblemInstance) -> Self {
        HeuristicState::with_buffers(problem, StateBuffers::default())
    }

    /// Initialises the state on recycled buffers: semantically identical
    /// to [`HeuristicState::new`] but reuses every allocation `buffers`
    /// brought along (possibly from a state over a *different* problem).
    pub fn with_buffers(problem: &'a ProblemInstance, buffers: StateBuffers) -> Self {
        let tree = problem.tree();
        let StateBuffers {
            remaining,
            inreq,
            mut placement,
            scratch_clients,
            scratch_node_u64,
            scratch_fifo,
            scratch_nodes,
        } = buffers;
        placement.reset_for(tree.num_clients());
        let mut state = HeuristicState {
            problem,
            remaining,
            inreq,
            placement,
            scratch_clients,
            scratch_node_u64,
            scratch_fifo,
            scratch_nodes,
        };
        state.reset();
        state
    }

    /// Detaches the state's buffers so they can be reattached to the
    /// next problem with [`HeuristicState::with_buffers`].
    pub fn into_buffers(self) -> StateBuffers {
        StateBuffers {
            remaining: self.remaining,
            inreq: self.inreq,
            placement: self.placement,
            scratch_clients: self.scratch_clients,
            scratch_node_u64: self.scratch_node_u64,
            scratch_fifo: self.scratch_fifo,
            scratch_nodes: self.scratch_nodes,
        }
    }

    /// Rewinds the state to the freshly-initialised configuration
    /// (nothing served, empty placement) **without releasing any
    /// buffer**, so repeated heuristic runs against the same problem
    /// reuse one allocation set.
    pub fn reset(&mut self) {
        let problem = self.problem;
        let tree = problem.tree();
        self.remaining.clear();
        self.remaining
            .extend(tree.client_ids().map(|c| problem.requests(c)));
        self.inreq.clear();
        self.inreq.resize(tree.num_nodes(), 0);
        for &node in tree.postorder_nodes() {
            let mut total: u64 = tree
                .child_clients(node)
                .iter()
                .map(|&c| problem.requests(c))
                .sum();
            total += tree
                .child_nodes(node)
                .iter()
                .map(|&child| self.inreq[child.index()])
                .sum::<u64>();
            self.inreq[node.index()] = total;
        }
        self.placement.clear();
    }

    /// `true` when `server` (an ancestor of `client`) lies within the
    /// client's QoS bound. Clients without a bound accept any ancestor.
    pub fn within_qos(&self, client: ClientId, server: NodeId) -> bool {
        match self.problem.qos(client) {
            None => true,
            Some(q) => {
                let tree = self.problem.tree();
                let distance = tree
                    .client_depth(client)
                    .saturating_sub(tree.node_depth(server));
                distance <= q
            }
        }
    }

    /// QoS headroom of `client` when served at `server`: how many more
    /// hops it could still climb. Unbounded clients get `i64::MAX`.
    fn qos_headroom(&self, client: ClientId, server: NodeId) -> i64 {
        match self.problem.qos(client) {
            None => i64::MAX,
            Some(q) => {
                let tree = self.problem.tree();
                let distance =
                    i64::from(tree.client_depth(client)) - i64::from(tree.node_depth(server));
                i64::from(q) - distance
            }
        }
    }

    /// The problem being solved.
    pub fn problem(&self) -> &'a ProblemInstance {
        self.problem
    }

    /// Unserved requests in `subtree(node)`.
    pub fn inreq(&self, node: NodeId) -> u64 {
        self.inreq[node.index()]
    }

    /// Unserved requests of a client.
    pub fn remaining(&self, client: ClientId) -> u64 {
        self.remaining[client.index()]
    }

    /// `true` once every request has been assigned to some server.
    pub fn all_served(&self) -> bool {
        self.inreq[self.problem.tree().root().index()] == 0
    }

    /// Adds a replica at `node` without assigning any request.
    pub fn add_replica(&mut self, node: NodeId) {
        self.placement.add_replica(node);
    }

    /// `true` when `node` already carries a replica.
    pub fn has_replica(&self, node: NodeId) -> bool {
        self.placement.has_replica(node)
    }

    /// Assigns `amount` requests of `client` to `server`, updating the
    /// remaining counts and the `inreq` of every ancestor of the client
    /// (a lazy, allocation-free walk up the parent pointers).
    pub fn assign(&mut self, client: ClientId, server: NodeId, amount: u64) {
        if amount == 0 {
            return;
        }
        debug_assert!(self.remaining[client.index()] >= amount);
        self.remaining[client.index()] -= amount;
        self.placement.assign(client, server, amount);
        for ancestor in self.problem.tree().ancestors_of_client(client) {
            self.inreq[ancestor.index()] -= amount;
        }
    }

    /// Fills `out` with the clients of `subtree(node)` that still have
    /// unserved requests, in subtree order (the paper's `clients(s)`
    /// restricted to pending clients). `out` is cleared first; its
    /// capacity is reused across calls.
    pub fn pending_clients_into(&self, node: NodeId, out: &mut Vec<ClientId>) {
        out.clear();
        out.extend(
            self.problem
                .tree()
                .subtree_clients(node)
                .iter()
                .copied()
                .filter(|&c| self.remaining[c.index()] > 0),
        );
    }

    /// Collecting variant of [`pending_clients_into`](Self::pending_clients_into).
    pub fn pending_clients(&self, node: NodeId) -> Vec<ClientId> {
        let mut out = Vec::new();
        self.pending_clients_into(node, &mut out);
        out
    }

    /// Fills `out` with the pending clients of `subtree(node)` that may
    /// be served *at* `node` without violating their QoS bound.
    pub fn eligible_pending_clients_into(&self, node: NodeId, out: &mut Vec<ClientId>) {
        out.clear();
        out.extend(
            self.problem
                .tree()
                .subtree_clients(node)
                .iter()
                .copied()
                .filter(|&c| self.remaining[c.index()] > 0 && self.within_qos(c, node)),
        );
    }

    /// Collecting variant of
    /// [`eligible_pending_clients_into`](Self::eligible_pending_clients_into).
    pub fn eligible_pending_clients(&self, node: NodeId) -> Vec<ClientId> {
        let mut out = Vec::new();
        self.eligible_pending_clients_into(node, &mut out);
        out
    }

    /// Pending requests of `subtree(node)` that may be served at `node`
    /// (the QoS-aware counterpart of [`inreq`](Self::inreq); equal to it
    /// when no client carries a QoS bound).
    pub fn eligible_inreq(&self, node: NodeId) -> u64 {
        if !self.problem.has_qos() {
            return self.inreq(node);
        }
        self.problem
            .tree()
            .subtree_clients(node)
            .iter()
            .filter(|&&c| self.remaining[c.index()] > 0 && self.within_qos(c, node))
            .map(|&c| self.remaining[c.index()])
            .sum()
    }

    /// The load a Closest replica at `node` would have to absorb: all
    /// pending requests of its subtree. Returns `None` when some pending
    /// client lies beyond its QoS bound from `node` — under Closest that
    /// client would be forced onto `node`, so the replica cannot be
    /// placed there (yet).
    pub fn closest_candidate_load(&self, node: NodeId) -> Option<u64> {
        if !self.problem.has_qos() {
            return Some(self.inreq(node));
        }
        let mut total = 0u64;
        for &client in self.problem.tree().subtree_clients(node) {
            if self.remaining[client.index()] == 0 {
                continue;
            }
            if !self.within_qos(client, node) {
                return None;
            }
            total += self.remaining[client.index()];
        }
        Some(total)
    }

    /// Places a replica at `node` and serves **all** pending requests of
    /// its subtree there — the Closest heuristics' action when
    /// `W_node >= inreq_node`. Panics (in debug) if the capacity or QoS
    /// precondition is violated.
    pub fn serve_whole_subtree(&mut self, node: NodeId) {
        debug_assert!(self.inreq(node) <= self.problem.capacity(node));
        self.add_replica(node);
        // The subtree client list borrows the problem's tree (lifetime
        // 'a), not `self`, so assigning while iterating is fine.
        let clients = self.problem.tree().subtree_clients(node);
        for &client in clients {
            let amount = self.remaining[client.index()];
            if amount == 0 {
                continue;
            }
            debug_assert!(self.within_qos(client, node));
            self.assign(client, node, amount);
        }
    }

    /// The paper's `deleteRequests` for **single-server** policies
    /// (Algorithm 6): assign whole clients of `subtree(server)` to
    /// `server`, in non-increasing request order, as long as they fit in
    /// `budget`. Clients whose QoS bound excludes `server` are skipped.
    /// Returns the number of requests actually assigned.
    pub fn delete_requests_single(&mut self, server: NodeId, budget: u64) -> u64 {
        let mut clients = std::mem::take(&mut self.scratch_clients);
        self.eligible_pending_clients_into(server, &mut clients);
        // Most QoS-constrained first, then largest first. In-place
        // unstable sort: no allocation. The preorder rank makes the key
        // total, so ties fall back to subtree-walk order — exactly what
        // a stable sort over the subtree client list would produce.
        let tree = self.problem.tree();
        clients.sort_unstable_by_key(|&c| {
            (
                self.qos_headroom(c, server),
                std::cmp::Reverse(self.remaining[c.index()]),
                tree.client_preorder_rank(c),
            )
        });
        let mut left = budget;
        for &client in &clients {
            if left == 0 {
                break;
            }
            let requests = self.remaining[client.index()];
            if requests <= left {
                self.assign(client, server, requests);
                left -= requests;
            }
        }
        self.scratch_clients = clients;
        budget - left
    }

    /// The paper's `deleteRequestsInMTD` / `deleteRequestsInMBU` for the
    /// **Multiple** policy (Algorithm 10): assign whole clients in the
    /// given order while they fit, then split one more client to consume
    /// the remaining budget exactly. Clients whose QoS bound excludes
    /// `server` are skipped; when QoS bounds are present the most
    /// constrained clients are served first. Returns the number of
    /// requests actually assigned.
    pub fn delete_requests_multiple(
        &mut self,
        server: NodeId,
        budget: u64,
        order: DeleteOrder,
    ) -> u64 {
        let mut clients = std::mem::take(&mut self.scratch_clients);
        self.eligible_pending_clients_into(server, &mut clients);
        match order {
            DeleteOrder::LargestFirst => clients.sort_unstable_by_key(|&c| {
                (
                    self.qos_headroom(c, server),
                    std::cmp::Reverse(self.remaining[c.index()]),
                )
            }),
            DeleteOrder::SmallestFirst => clients.sort_unstable_by_key(|&c| {
                (self.qos_headroom(c, server), self.remaining[c.index()])
            }),
        }
        let mut left = budget;
        for &client in &clients {
            if left == 0 {
                break;
            }
            let requests = self.remaining[client.index()];
            if requests <= left {
                self.assign(client, server, requests);
                left -= requests;
            } else {
                // Partial assignment: only possible under Multiple.
                self.assign(client, server, left);
                left = 0;
            }
        }
        self.scratch_clients = clients;
        budget - left
    }

    /// The placement built so far (read-only). Only meaningful as a
    /// solution when [`all_served`](Self::all_served) is `true`.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Storage cost of the placement built so far.
    pub fn current_cost(&self) -> u64 {
        self.placement.cost(self.problem)
    }

    /// Consumes the state, returning the placement when every request
    /// has been served and `None` otherwise (the heuristic failed to
    /// find a valid solution).
    pub fn into_solution(self) -> Option<Placement> {
        if self.all_served() {
            Some(self.placement)
        } else {
            None
        }
    }

    /// Consumes the state returning the placement unconditionally (used
    /// by tests to inspect partial solutions).
    pub fn into_placement_unchecked(self) -> Placement {
        self.placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use rp_tree::TreeBuilder;

    /// root -> n1 -> {c0: 4, c1: 2}; root -> {c2: 3}
    fn sample() -> (ProblemInstance, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let n1 = b.add_node(root);
        let c0 = b.add_client(n1);
        let c1 = b.add_client(n1);
        let c2 = b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![4, 2, 3], vec![10, 6]);
        (p, vec![root, n1], vec![c0, c1, c2])
    }

    #[test]
    fn initial_inreq_is_the_subtree_request_total() {
        let (p, n, _) = sample();
        let state = HeuristicState::new(&p);
        assert_eq!(state.inreq(n[0]), 9);
        assert_eq!(state.inreq(n[1]), 6);
        assert!(!state.all_served());
    }

    #[test]
    fn assign_updates_remaining_and_all_ancestors() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.add_replica(n[0]);
        state.assign(c[0], n[0], 3);
        assert_eq!(state.remaining(c[0]), 1);
        assert_eq!(state.inreq(n[1]), 3);
        assert_eq!(state.inreq(n[0]), 6);
    }

    #[test]
    fn reset_rewinds_to_the_initial_configuration() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.serve_whole_subtree(n[1]);
        state.assign(c[2], n[1], 0); // no-op
        assert!(state.has_replica(n[1]));
        state.reset();
        assert_eq!(state.inreq(n[0]), 9);
        assert_eq!(state.inreq(n[1]), 6);
        assert_eq!(state.remaining(c[0]), 4);
        assert!(!state.has_replica(n[1]));
        assert_eq!(state.placement().num_replicas(), 0);
        // The state is fully usable after a reset.
        state.serve_whole_subtree(n[0]);
        assert!(state.all_served());
    }

    #[test]
    fn serve_whole_subtree_clears_the_subtree() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.serve_whole_subtree(n[1]);
        assert_eq!(state.inreq(n[1]), 0);
        assert_eq!(state.inreq(n[0]), 3);
        assert_eq!(state.remaining(c[0]), 0);
        assert_eq!(state.remaining(c[1]), 0);
        assert_eq!(state.remaining(c[2]), 3);
        assert!(state.has_replica(n[1]));
        assert!(!state.all_served());
    }

    #[test]
    fn delete_single_assigns_whole_clients_largest_first() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.add_replica(n[1]);
        // Budget 5 among clients {4, 2}: takes the 4, skips the 2 (does
        // not fit the remaining budget of 1).
        let assigned = state.delete_requests_single(n[1], 5);
        assert_eq!(assigned, 4);
        assert_eq!(state.remaining(c[0]), 0);
        assert_eq!(state.remaining(c[1]), 2);
    }

    #[test]
    fn delete_multiple_splits_the_last_client() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.add_replica(n[1]);
        let assigned = state.delete_requests_multiple(n[1], 5, DeleteOrder::LargestFirst);
        assert_eq!(assigned, 5);
        assert_eq!(state.remaining(c[0]), 0);
        assert_eq!(state.remaining(c[1]), 1);
    }

    #[test]
    fn delete_multiple_smallest_first_prefers_small_clients() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.add_replica(n[1]);
        let assigned = state.delete_requests_multiple(n[1], 3, DeleteOrder::SmallestFirst);
        assert_eq!(assigned, 3);
        // The 2-request client is taken first, then 1 request of the big one.
        assert_eq!(state.remaining(c[1]), 0);
        assert_eq!(state.remaining(c[0]), 3);
    }

    #[test]
    fn into_solution_requires_everything_served() {
        let (p, n, _) = sample();
        let mut state = HeuristicState::new(&p);
        state.serve_whole_subtree(n[1]);
        assert!(HeuristicState::into_solution(state).is_none());

        let mut state = HeuristicState::new(&p);
        state.serve_whole_subtree(n[0]);
        let placement = state.into_solution().unwrap();
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert_eq!(placement.num_replicas(), 1);
    }

    #[test]
    fn delete_ties_resolve_in_subtree_order() {
        // Four identical clients (same requests, no QoS): the sort keys
        // tie, and the tie-break must fall back to subtree-walk order —
        // the behaviour a stable sort over the subtree list gives.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let clients: Vec<ClientId> = (0..4)
            .map(|i| {
                if i % 2 == 0 {
                    b.add_client(a)
                } else {
                    b.add_client(root)
                }
            })
            .collect();
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![2; 4], 10);
        let mut state = HeuristicState::new(&p);
        state.add_replica(root);
        // Budget for exactly two whole clients: subtree order from the
        // root lists the root's own clients first (the root is preorder
        // position 0), so c1 and c3 are served before `a`'s c0 and c2.
        let assigned = state.delete_requests_single(root, 4);
        assert_eq!(assigned, 4);
        assert_eq!(state.remaining(clients[1]), 0);
        assert_eq!(state.remaining(clients[3]), 0);
        assert_eq!(state.remaining(clients[0]), 2);
        assert_eq!(state.remaining(clients[2]), 2);

        let mut state = HeuristicState::new(&p);
        state.add_replica(root);
        let assigned = state.delete_requests_multiple(root, 5, DeleteOrder::LargestFirst);
        assert_eq!(assigned, 5);
        // Whole c1 and c3, then c0 (next in subtree order) split.
        assert_eq!(state.remaining(clients[1]), 0);
        assert_eq!(state.remaining(clients[3]), 0);
        assert_eq!(state.remaining(clients[0]), 1);
        assert_eq!(state.remaining(clients[2]), 2);
    }

    #[test]
    fn pending_clients_shrinks_as_requests_are_served() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        assert_eq!(state.pending_clients(n[0]).len(), 3);
        state.add_replica(n[0]);
        state.assign(c[2], n[0], 3);
        let mut pending = Vec::new();
        state.pending_clients_into(n[0], &mut pending);
        assert_eq!(pending.len(), 2);
        assert!(!pending.contains(&c[2]));
        // The buffer variant clears before refilling.
        state.pending_clients_into(n[1], &mut pending);
        assert_eq!(pending.len(), 2);
    }
}
