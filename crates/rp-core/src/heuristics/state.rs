//! Shared bookkeeping for the polynomial heuristics of Section 6.
//!
//! Every heuristic manipulates the same two quantities:
//!
//! * `remaining[i]` — the requests of client `i` not yet affected to a
//!   server (the paper's `r'_i`);
//! * `inreq[j]` — the number of *unserved* requests issued in
//!   `subtree(j)` (the paper's `inreq_j`), kept consistent by
//!   subtracting from every ancestor of a client whenever some of its
//!   requests are assigned.
//!
//! [`HeuristicState`] owns this bookkeeping together with the
//! [`Placement`] being built, and provides the `deleteRequests`
//! procedures shared by the Upwards and Multiple heuristics.

use rp_tree::{ClientId, NodeId};

use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Order in which the delete procedures consider the clients of a
/// subtree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeleteOrder {
    /// Non-increasing `r_i` (UTD, MTD, MG).
    LargestFirst,
    /// Non-decreasing `r_i` (MBU: "delete many small clients rather than
    /// fewer demanding ones").
    SmallestFirst,
}

/// Mutable working state shared by all heuristics.
pub struct HeuristicState<'a> {
    problem: &'a ProblemInstance,
    remaining: Vec<u64>,
    inreq: Vec<u64>,
    node_depth: Vec<u32>,
    client_depth: Vec<u32>,
    placement: Placement,
}

impl<'a> HeuristicState<'a> {
    /// Initialises the state: nothing is served, `inreq[j]` equals the
    /// total requests of `subtree(j)`.
    pub fn new(problem: &'a ProblemInstance) -> Self {
        let tree = problem.tree();
        let remaining: Vec<u64> = tree.client_ids().map(|c| problem.requests(c)).collect();
        let mut inreq = vec![0u64; tree.num_nodes()];
        for node in tree.postorder_nodes() {
            let mut total: u64 = tree
                .child_clients(node)
                .iter()
                .map(|&c| problem.requests(c))
                .sum();
            total += tree
                .child_nodes(node)
                .iter()
                .map(|&child| inreq[child.index()])
                .sum::<u64>();
            inreq[node.index()] = total;
        }
        let node_depth: Vec<u32> = tree.node_ids().map(|n| tree.node_depth(n)).collect();
        let client_depth: Vec<u32> = tree.client_ids().map(|c| tree.client_depth(c)).collect();
        HeuristicState {
            problem,
            remaining,
            inreq,
            node_depth,
            client_depth,
            placement: Placement::empty(tree.num_clients()),
        }
    }

    /// `true` when `server` (an ancestor of `client`) lies within the
    /// client's QoS bound. Clients without a bound accept any ancestor.
    pub fn within_qos(&self, client: ClientId, server: NodeId) -> bool {
        match self.problem.qos(client) {
            None => true,
            Some(q) => {
                let distance = self.client_depth[client.index()]
                    .saturating_sub(self.node_depth[server.index()]);
                distance <= q
            }
        }
    }

    /// QoS headroom of `client` when served at `server`: how many more
    /// hops it could still climb. Unbounded clients get `i64::MAX`.
    fn qos_headroom(&self, client: ClientId, server: NodeId) -> i64 {
        match self.problem.qos(client) {
            None => i64::MAX,
            Some(q) => {
                let distance = i64::from(self.client_depth[client.index()])
                    - i64::from(self.node_depth[server.index()]);
                i64::from(q) - distance
            }
        }
    }

    /// The problem being solved.
    pub fn problem(&self) -> &ProblemInstance {
        self.problem
    }

    /// Unserved requests in `subtree(node)`.
    pub fn inreq(&self, node: NodeId) -> u64 {
        self.inreq[node.index()]
    }

    /// Unserved requests of a client.
    pub fn remaining(&self, client: ClientId) -> u64 {
        self.remaining[client.index()]
    }

    /// `true` once every request has been assigned to some server.
    pub fn all_served(&self) -> bool {
        self.inreq[self.problem.tree().root().index()] == 0
    }

    /// Adds a replica at `node` without assigning any request.
    pub fn add_replica(&mut self, node: NodeId) {
        self.placement.add_replica(node);
    }

    /// `true` when `node` already carries a replica.
    pub fn has_replica(&self, node: NodeId) -> bool {
        self.placement.has_replica(node)
    }

    /// Assigns `amount` requests of `client` to `server`, updating the
    /// remaining counts and the `inreq` of every ancestor of the client.
    pub fn assign(&mut self, client: ClientId, server: NodeId, amount: u64) {
        if amount == 0 {
            return;
        }
        debug_assert!(self.remaining[client.index()] >= amount);
        self.remaining[client.index()] -= amount;
        self.placement.assign(client, server, amount);
        for ancestor in self.problem.tree().ancestors_of_client(client) {
            self.inreq[ancestor.index()] -= amount;
        }
    }

    /// Clients of `subtree(node)` that still have unserved requests,
    /// in depth-first order (the paper's `clients(s)` restricted to
    /// pending clients).
    pub fn pending_clients(&self, node: NodeId) -> Vec<ClientId> {
        self.problem
            .tree()
            .subtree_clients(node)
            .into_iter()
            .filter(|&c| self.remaining[c.index()] > 0)
            .collect()
    }

    /// Pending clients of `subtree(node)` that may be served *at* `node`
    /// without violating their QoS bound.
    pub fn eligible_pending_clients(&self, node: NodeId) -> Vec<ClientId> {
        self.pending_clients(node)
            .into_iter()
            .filter(|&c| self.within_qos(c, node))
            .collect()
    }

    /// Pending requests of `subtree(node)` that may be served at `node`
    /// (the QoS-aware counterpart of [`inreq`](Self::inreq); equal to it
    /// when no client carries a QoS bound).
    pub fn eligible_inreq(&self, node: NodeId) -> u64 {
        if !self.problem.has_qos() {
            return self.inreq(node);
        }
        self.eligible_pending_clients(node)
            .into_iter()
            .map(|c| self.remaining[c.index()])
            .sum()
    }

    /// The load a Closest replica at `node` would have to absorb: all
    /// pending requests of its subtree. Returns `None` when some pending
    /// client lies beyond its QoS bound from `node` — under Closest that
    /// client would be forced onto `node`, so the replica cannot be
    /// placed there (yet).
    pub fn closest_candidate_load(&self, node: NodeId) -> Option<u64> {
        if !self.problem.has_qos() {
            return Some(self.inreq(node));
        }
        let mut total = 0u64;
        for client in self.pending_clients(node) {
            if !self.within_qos(client, node) {
                return None;
            }
            total += self.remaining[client.index()];
        }
        Some(total)
    }

    /// Places a replica at `node` and serves **all** pending requests of
    /// its subtree there — the Closest heuristics' action when
    /// `W_node >= inreq_node`. Panics (in debug) if the capacity or QoS
    /// precondition is violated.
    pub fn serve_whole_subtree(&mut self, node: NodeId) {
        debug_assert!(self.inreq(node) <= self.problem.capacity(node));
        self.add_replica(node);
        for client in self.pending_clients(node) {
            debug_assert!(self.within_qos(client, node));
            let amount = self.remaining[client.index()];
            self.assign(client, node, amount);
        }
    }

    /// The paper's `deleteRequests` for **single-server** policies
    /// (Algorithm 6): assign whole clients of `subtree(server)` to
    /// `server`, in non-increasing request order, as long as they fit in
    /// `budget`. Clients whose QoS bound excludes `server` are skipped.
    /// Returns the number of requests actually assigned.
    pub fn delete_requests_single(&mut self, server: NodeId, budget: u64) -> u64 {
        let mut clients = self.eligible_pending_clients(server);
        // Most QoS-constrained first, then largest first.
        clients.sort_by_key(|&c| {
            (
                self.qos_headroom(c, server),
                std::cmp::Reverse(self.remaining[c.index()]),
            )
        });
        let mut left = budget;
        for client in clients {
            if left == 0 {
                break;
            }
            let requests = self.remaining[client.index()];
            if requests <= left {
                self.assign(client, server, requests);
                left -= requests;
            }
        }
        budget - left
    }

    /// The paper's `deleteRequestsInMTD` / `deleteRequestsInMBU` for the
    /// **Multiple** policy (Algorithm 10): assign whole clients in the
    /// given order while they fit, then split one more client to consume
    /// the remaining budget exactly. Clients whose QoS bound excludes
    /// `server` are skipped; when QoS bounds are present the most
    /// constrained clients are served first. Returns the number of
    /// requests actually assigned.
    pub fn delete_requests_multiple(
        &mut self,
        server: NodeId,
        budget: u64,
        order: DeleteOrder,
    ) -> u64 {
        let mut clients = self.eligible_pending_clients(server);
        match order {
            DeleteOrder::LargestFirst => clients.sort_by_key(|&c| {
                (
                    self.qos_headroom(c, server),
                    std::cmp::Reverse(self.remaining[c.index()]),
                )
            }),
            DeleteOrder::SmallestFirst => {
                clients.sort_by_key(|&c| (self.qos_headroom(c, server), self.remaining[c.index()]))
            }
        }
        let mut left = budget;
        for client in clients {
            if left == 0 {
                break;
            }
            let requests = self.remaining[client.index()];
            if requests <= left {
                self.assign(client, server, requests);
                left -= requests;
            } else {
                // Partial assignment: only possible under Multiple.
                self.assign(client, server, left);
                left = 0;
            }
        }
        budget - left
    }

    /// Consumes the state, returning the placement when every request
    /// has been served and `None` otherwise (the heuristic failed to
    /// find a valid solution).
    pub fn into_solution(self) -> Option<Placement> {
        if self.inreq[self.problem.tree().root().index()] == 0 {
            Some(self.placement)
        } else {
            None
        }
    }

    /// Consumes the state returning the placement unconditionally (used
    /// by tests to inspect partial solutions).
    pub fn into_placement_unchecked(self) -> Placement {
        self.placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use rp_tree::TreeBuilder;

    /// root -> n1 -> {c0: 4, c1: 2}; root -> {c2: 3}
    fn sample() -> (ProblemInstance, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let n1 = b.add_node(root);
        let c0 = b.add_client(n1);
        let c1 = b.add_client(n1);
        let c2 = b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![4, 2, 3], vec![10, 6]);
        (p, vec![root, n1], vec![c0, c1, c2])
    }

    #[test]
    fn initial_inreq_is_the_subtree_request_total() {
        let (p, n, _) = sample();
        let state = HeuristicState::new(&p);
        assert_eq!(state.inreq(n[0]), 9);
        assert_eq!(state.inreq(n[1]), 6);
        assert!(!state.all_served());
    }

    #[test]
    fn assign_updates_remaining_and_all_ancestors() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.add_replica(n[0]);
        state.assign(c[0], n[0], 3);
        assert_eq!(state.remaining(c[0]), 1);
        assert_eq!(state.inreq(n[1]), 3);
        assert_eq!(state.inreq(n[0]), 6);
    }

    #[test]
    fn serve_whole_subtree_clears_the_subtree() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.serve_whole_subtree(n[1]);
        assert_eq!(state.inreq(n[1]), 0);
        assert_eq!(state.inreq(n[0]), 3);
        assert_eq!(state.remaining(c[0]), 0);
        assert_eq!(state.remaining(c[1]), 0);
        assert_eq!(state.remaining(c[2]), 3);
        assert!(state.has_replica(n[1]));
        assert!(!state.all_served());
    }

    #[test]
    fn delete_single_assigns_whole_clients_largest_first() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.add_replica(n[1]);
        // Budget 5 among clients {4, 2}: takes the 4, skips the 2 (does
        // not fit the remaining budget of 1).
        let assigned = state.delete_requests_single(n[1], 5);
        assert_eq!(assigned, 4);
        assert_eq!(state.remaining(c[0]), 0);
        assert_eq!(state.remaining(c[1]), 2);
    }

    #[test]
    fn delete_multiple_splits_the_last_client() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.add_replica(n[1]);
        let assigned = state.delete_requests_multiple(n[1], 5, DeleteOrder::LargestFirst);
        assert_eq!(assigned, 5);
        assert_eq!(state.remaining(c[0]), 0);
        assert_eq!(state.remaining(c[1]), 1);
    }

    #[test]
    fn delete_multiple_smallest_first_prefers_small_clients() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        state.add_replica(n[1]);
        let assigned = state.delete_requests_multiple(n[1], 3, DeleteOrder::SmallestFirst);
        assert_eq!(assigned, 3);
        // The 2-request client is taken first, then 1 request of the big one.
        assert_eq!(state.remaining(c[1]), 0);
        assert_eq!(state.remaining(c[0]), 3);
    }

    #[test]
    fn into_solution_requires_everything_served() {
        let (p, n, _) = sample();
        let mut state = HeuristicState::new(&p);
        state.serve_whole_subtree(n[1]);
        assert!(HeuristicState::into_solution(state).is_none());

        let mut state = HeuristicState::new(&p);
        state.serve_whole_subtree(n[0]);
        let placement = state.into_solution().unwrap();
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert_eq!(placement.num_replicas(), 1);
    }

    #[test]
    fn pending_clients_shrinks_as_requests_are_served() {
        let (p, n, c) = sample();
        let mut state = HeuristicState::new(&p);
        assert_eq!(state.pending_clients(n[0]).len(), 3);
        state.add_replica(n[0]);
        state.assign(c[2], n[0], 3);
        let pending = state.pending_clients(n[0]);
        assert_eq!(pending.len(), 2);
        assert!(!pending.contains(&c[2]));
    }
}
