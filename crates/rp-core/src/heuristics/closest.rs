//! Heuristics for the **Closest** policy (Section 6.1).
//!
//! All three heuristics share the same basic move: a node is turned into
//! a server only when its capacity covers *all* the still-unserved
//! requests of its subtree (under Closest a replica necessarily absorbs
//! its whole remaining subtree). They differ in the traversal order and
//! in how eagerly servers are committed.

use rp_tree::NodeId;

use crate::heuristics::state::HeuristicState;
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// *Closest Top Down All* (CTDA): breadth-first traversals from the
/// root; every node able to absorb its whole remaining subtree becomes a
/// server (and its subtree is not explored further). Traversals repeat
/// until one of them adds no server.
pub fn ctda(problem: &ProblemInstance) -> Option<Placement> {
    let mut state = HeuristicState::new(problem);
    ctda_on(&mut state);
    state.into_solution()
}

pub(crate) fn ctda_on(state: &mut HeuristicState<'_>) -> bool {
    let problem = state.problem();
    let tree = problem.tree();
    loop {
        let mut added = false;
        let mut fifo = std::mem::take(&mut state.scratch_fifo);
        fifo.clear();
        fifo.push_back(tree.root());
        while let Some(node) = fifo.pop_front() {
            if state.has_replica(node) {
                continue;
            }
            if can_serve_whole_subtree(problem, state, node) {
                state.serve_whole_subtree(node);
                added = true;
                // The subtree is fully served: no need to explore it.
            } else {
                for &child in tree.child_nodes(node) {
                    fifo.push_back(child);
                }
            }
        }
        state.scratch_fifo = fifo;
        if !added {
            break;
        }
    }
    state.all_served()
}

/// *Closest Top Down Largest First* (CTDLF): like CTDA, but children are
/// enqueued most-loaded subtree first and the traversal restarts from
/// the root as soon as one server has been placed.
pub fn ctdlf(problem: &ProblemInstance) -> Option<Placement> {
    let mut state = HeuristicState::new(problem);
    ctdlf_on(&mut state);
    state.into_solution()
}

pub(crate) fn ctdlf_on(state: &mut HeuristicState<'_>) -> bool {
    let problem = state.problem();
    let tree = problem.tree();
    loop {
        let mut added = false;
        let mut fifo = std::mem::take(&mut state.scratch_fifo);
        let mut children = std::mem::take(&mut state.scratch_nodes);
        fifo.clear();
        fifo.push_back(tree.root());
        while let Some(node) = fifo.pop_front() {
            if state.has_replica(node) {
                continue;
            }
            if can_serve_whole_subtree(problem, state, node) {
                state.serve_whole_subtree(node);
                added = true;
                break; // restart the traversal from the root
            }
            // Treat the subtree holding the most pending requests first.
            children.clear();
            children.extend_from_slice(tree.child_nodes(node));
            // Child lists are in ascending-id insertion order, so the id
            // tie-break reproduces a stable sort's equal-key order.
            children.sort_unstable_by_key(|&c| (std::cmp::Reverse(state.inreq(c)), c));
            for &child in &children {
                fifo.push_back(child);
            }
        }
        state.scratch_fifo = fifo;
        state.scratch_nodes = children;
        if !added {
            break;
        }
    }
    state.all_served()
}

/// *Closest Bottom Up* (CBU): a single post-order sweep; each node is
/// turned into a server as soon as it can absorb the still-unserved
/// requests of its subtree (children having been considered first).
pub fn cbu(problem: &ProblemInstance) -> Option<Placement> {
    let mut state = HeuristicState::new(problem);
    cbu_on(&mut state);
    state.into_solution()
}

pub(crate) fn cbu_on(state: &mut HeuristicState<'_>) -> bool {
    let problem = state.problem();
    let tree = problem.tree();
    for &node in tree.postorder_nodes() {
        if can_serve_whole_subtree(problem, state, node) {
            state.serve_whole_subtree(node);
        }
    }
    state.all_served()
}

/// A Closest replica can be placed at `node` only when every pending
/// client of its subtree tolerates `node` (QoS) and the node's capacity
/// covers their combined load.
fn can_serve_whole_subtree(
    problem: &ProblemInstance,
    state: &HeuristicState<'_>,
    node: NodeId,
) -> bool {
    match state.closest_candidate_load(node) {
        Some(load) => load > 0 && problem.capacity(node) >= load,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use rp_tree::TreeBuilder;

    fn check_valid(problem: &ProblemInstance, placement: &Placement) {
        if let Err(violations) = placement.validate(problem, Policy::Closest) {
            panic!("invalid Closest placement: {violations}");
        }
    }

    /// root(W) -> a(W) -> {c0, c1}; root -> b(W) -> {c2}; root -> {c3}
    fn two_arm_instance(reqs: [u64; 4], w: u64) -> ProblemInstance {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let bb = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(bb);
        b.add_client(root);
        ProblemInstance::replica_counting(b.build().unwrap(), reqs.to_vec(), w)
    }

    #[test]
    fn all_three_solve_an_easy_instance() {
        let p = two_arm_instance([2, 3, 4, 1], 10);
        // The top-down heuristics place a single replica at the root,
        // which absorbs all 10 requests. CBU works bottom-up, so it
        // commits one replica per bottom node plus the root (3 in total)
        // — more expensive but still valid, exactly as in the paper.
        for (name, heuristic, expected) in [
            ("ctda", ctda as fn(&ProblemInstance) -> Option<Placement>, 1),
            ("ctdlf", ctdlf, 1),
            ("cbu", cbu, 3),
        ] {
            let placement = heuristic(&p).unwrap_or_else(|| panic!("{name} failed"));
            check_valid(&p, &placement);
            assert_eq!(placement.num_replicas(), expected, "{name}");
        }
    }

    #[test]
    fn servers_are_pushed_down_when_the_root_is_too_small() {
        let p = two_arm_instance([4, 4, 4, 1], 9);
        // Root sees 13 > 9, so it cannot take everything. CTDA and CBU
        // serve both arms locally and keep the root for its own client
        // (3 replicas); CTDLF serves the heavy arm first and then lets
        // the root absorb the remaining 5 requests (2 replicas).
        for (name, heuristic, expected) in [
            ("ctda", ctda as fn(&ProblemInstance) -> Option<Placement>, 3),
            ("ctdlf", ctdlf, 2),
            ("cbu", cbu, 3),
        ] {
            let placement = heuristic(&p).unwrap_or_else(|| panic!("{name} failed"));
            check_valid(&p, &placement);
            assert_eq!(placement.num_replicas(), expected, "{name}");
        }
    }

    #[test]
    fn closest_heuristics_fail_on_figure_1b() {
        // Two unit clients under a chain of two W = 1 nodes: no Closest
        // solution exists (Section 3.1), so every heuristic must fail.
        let mut b = TreeBuilder::new();
        let s2 = b.add_root();
        let s1 = b.add_node(s2);
        b.add_client(s1);
        b.add_client(s1);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![1, 1], 1);
        assert!(ctda(&p).is_none());
        assert!(ctdlf(&p).is_none());
        assert!(cbu(&p).is_none());
    }

    #[test]
    fn repeated_passes_allow_the_root_to_mop_up() {
        // First pass: the deep node absorbs its subtree, which lowers the
        // root's inreq enough for a second pass to serve the rest.
        // root(5) -> a(5) -> {c0: 4, c1: 4}; root -> {c2: 3}
        // Pass 1: root sees 11 > 5; a sees 8 > 5 -> nobody.
        // This instance is infeasible for Closest? No: place a... a cannot
        // (8 > 5). Make c1 smaller: {c0: 4, c1: 1} -> a absorbs 5, root
        // then serves 3.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(root);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![4, 1, 3], 5);
        for heuristic in [ctda, ctdlf, cbu] {
            let placement = heuristic(&p).unwrap();
            check_valid(&p, &placement);
            assert_eq!(placement.num_replicas(), 2);
        }
    }

    #[test]
    fn ctdlf_prefers_the_heaviest_subtree() {
        // Two arms: a light one (3 requests) and a heavy one (7 requests),
        // W = 7. CTDLF must serve the heavy arm first; with the heavy arm
        // out of the way the root can absorb the light arm.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let light = b.add_node(root);
        let heavy = b.add_node(root);
        b.add_client(light);
        b.add_client(heavy);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![3, 7], 7);
        let placement = ctdlf(&p).unwrap();
        check_valid(&p, &placement);
        assert!(placement.has_replica(heavy));
        assert_eq!(placement.num_replicas(), 2);
    }

    #[test]
    fn zero_request_instances_place_no_replica() {
        let p = two_arm_instance([0, 0, 0, 0], 5);
        for heuristic in [ctda, ctdlf, cbu] {
            let placement = heuristic(&p).unwrap();
            assert_eq!(placement.num_replicas(), 0);
        }
    }

    #[test]
    fn heuristic_cost_is_never_below_the_exhaustive_optimum() {
        use crate::exact::optimal_cost;
        let p = two_arm_instance([3, 2, 5, 2], 6);
        let optimum = optimal_cost(&p, Policy::Closest).unwrap();
        for heuristic in [ctda, ctdlf, cbu] {
            if let Some(placement) = heuristic(&p) {
                check_valid(&p, &placement);
                assert!(placement.cost(&p) >= optimum);
            }
        }
    }
}
