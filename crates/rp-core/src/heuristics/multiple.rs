//! Heuristics for the **Multiple** policy (Section 6.3).
//!
//! Multiple allows a client's requests to be split across several
//! replicas on its path to the root, so the delete procedures may carve
//! a client's request block into pieces (Algorithm 10).

use rp_tree::NodeId;

use crate::heuristics::state::{DeleteOrder, HeuristicState};
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// *Multiple Top Down* (MTD): the Multiple counterpart of UTD. The
/// first pass places a replica on every node whose subtree holds at
/// least `W_j` unserved requests and fills it completely (whole clients
/// largest-first, then one split client); the second pass walks down
/// from the root adding replicas on the highest nodes that still see
/// unserved requests.
pub fn mtd(problem: &ProblemInstance) -> Option<Placement> {
    let mut state = HeuristicState::new(problem);
    mtd_on(&mut state);
    state.into_solution()
}

pub(crate) fn mtd_on(state: &mut HeuristicState<'_>) -> bool {
    let problem = state.problem();
    let tree = problem.tree();
    for &node in tree.dfs_preorder_nodes() {
        let inreq = state.eligible_inreq(node);
        if inreq > 0 && inreq >= problem.capacity(node) {
            state.add_replica(node);
            state.delete_requests_multiple(node, problem.capacity(node), DeleteOrder::LargestFirst);
        }
    }
    second_pass(problem, state, tree.root(), DeleteOrder::LargestFirst);
    state.all_served()
}

/// *Multiple Bottom Up* (MBU): the first pass sweeps the tree bottom-up
/// and saturates every node whose subtree already exhausts it, deleting
/// **small clients first** ("we aim at deleting many small clients
/// rather than fewer demanding ones"); the second pass is the same
/// top-down mop-up as MTD's.
pub fn mbu(problem: &ProblemInstance) -> Option<Placement> {
    let mut state = HeuristicState::new(problem);
    mbu_on(&mut state);
    state.into_solution()
}

pub(crate) fn mbu_on(state: &mut HeuristicState<'_>) -> bool {
    let problem = state.problem();
    let tree = problem.tree();
    for &node in tree.postorder_nodes() {
        let inreq = state.eligible_inreq(node);
        if inreq > 0 && problem.capacity(node) <= inreq {
            state.add_replica(node);
            state.delete_requests_multiple(
                node,
                problem.capacity(node),
                DeleteOrder::SmallestFirst,
            );
        }
    }
    second_pass(problem, state, tree.root(), DeleteOrder::SmallestFirst);
    state.all_served()
}

/// *Multiple Greedy* (MG): a single bottom-up sweep in which every node
/// serves as many pending requests from its subtree as it can; a replica
/// is added whenever the node ends up serving at least one request.
///
/// MG never misses a feasible instance: serving requests as low as
/// possible can only reduce the flow seen by the nodes above, so if any
/// Multiple solution exists the greedy sweep finds one (possibly at a
/// much higher cost than necessary on heterogeneous platforms).
pub fn mg(problem: &ProblemInstance) -> Option<Placement> {
    let mut state = HeuristicState::new(problem);
    mg_on(&mut state);
    state.into_solution()
}

pub(crate) fn mg_on(state: &mut HeuristicState<'_>) -> bool {
    let problem = state.problem();
    let tree = problem.tree();
    for &node in tree.postorder_nodes() {
        let budget = state.eligible_inreq(node).min(problem.capacity(node));
        if budget > 0 {
            state.add_replica(node);
            state.delete_requests_multiple(node, budget, DeleteOrder::LargestFirst);
        }
    }
    state.all_served()
}

/// Shared second pass of MTD and MBU: walking down from the root, add a
/// replica on every highest node that still sees unserved requests and
/// serve as much as its capacity allows.
fn second_pass(
    problem: &ProblemInstance,
    state: &mut HeuristicState<'_>,
    node: NodeId,
    order: DeleteOrder,
) {
    if state.inreq(node) == 0 {
        return;
    }
    if !state.has_replica(node) {
        state.add_replica(node);
        let budget = state.eligible_inreq(node).min(problem.capacity(node));
        state.delete_requests_multiple(node, budget, order);
    } else {
        for &child in problem.tree().child_nodes(node) {
            if state.inreq(child) > 0 {
                second_pass(problem, state, child, order);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{optimal_cost, solve_multiple_homogeneous};
    use crate::policy::Policy;
    use rp_tree::TreeBuilder;

    fn check_valid(problem: &ProblemInstance, placement: &Placement) {
        if let Err(violations) = placement.validate(problem, Policy::Multiple) {
            panic!("invalid Multiple placement: {violations}");
        }
    }

    #[test]
    fn all_three_solve_figure_1c() {
        // One client with two requests over two stacked W = 1 nodes: only
        // the Multiple policy (splitting the client) can cope.
        let mut b = TreeBuilder::new();
        let s2 = b.add_root();
        let s1 = b.add_node(s2);
        b.add_client(s1);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![2], 1);
        for (name, heuristic) in [
            ("mtd", mtd as fn(&ProblemInstance) -> Option<Placement>),
            ("mbu", mbu),
            ("mg", mg),
        ] {
            let placement = heuristic(&p).unwrap_or_else(|| panic!("{name} failed"));
            check_valid(&p, &placement);
            assert_eq!(placement.num_replicas(), 2, "{name}");
        }
    }

    #[test]
    fn mg_matches_feasibility_of_the_optimal_algorithm() {
        // On homogeneous instances MG must find a solution exactly when
        // the optimal algorithm does.
        let cases: Vec<(Vec<u64>, u64)> = vec![
            (vec![2, 2, 9, 7], 10),
            (vec![1, 1, 1, 1], 1),
            (vec![10, 10, 10, 10], 5),
            (vec![3, 3, 3, 9], 6),
        ];
        for (reqs, w) in cases {
            let mut b = TreeBuilder::new();
            let root = b.add_root();
            let a = b.add_node(root);
            let c = b.add_node(root);
            b.add_client(a);
            b.add_client(a);
            b.add_client(c);
            b.add_client(root);
            let p = ProblemInstance::replica_counting(b.build().unwrap(), reqs.clone(), w);
            let optimal = solve_multiple_homogeneous(&p).into_placement();
            let greedy = mg(&p);
            assert_eq!(
                optimal.is_some(),
                greedy.is_some(),
                "feasibility mismatch on {reqs:?} W={w}"
            );
            if let (Some(opt), Some(greedy)) = (optimal, greedy) {
                check_valid(&p, &greedy);
                // MG may use more replicas but never fewer than optimal.
                assert!(greedy.num_replicas() >= opt.num_replicas());
            }
        }
    }

    #[test]
    fn heuristic_costs_never_beat_the_exhaustive_optimum() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let c = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(c);
        b.add_client(root);
        let p = ProblemInstance::replica_cost(b.build().unwrap(), vec![3, 2, 4, 1], vec![6, 5, 4]);
        let optimum = optimal_cost(&p, Policy::Multiple).unwrap();
        // MTD may fail on this instance (its first pass fills the root
        // with subtree requests and leaves the root's own client
        // stranded); MBU and MG must succeed, and any produced solution
        // must cost at least the optimum.
        for (name, heuristic, must_succeed) in [
            (
                "mtd",
                mtd as fn(&ProblemInstance) -> Option<Placement>,
                false,
            ),
            ("mbu", mbu, true),
            ("mg", mg, true),
        ] {
            match heuristic(&p) {
                Some(placement) => {
                    check_valid(&p, &placement);
                    assert!(placement.cost(&p) >= optimum, "{name}");
                }
                None => assert!(!must_succeed, "{name} unexpectedly failed"),
            }
        }
    }

    #[test]
    fn splitting_clients_lets_multiple_succeed_where_upwards_fails() {
        // Figure 3 with n = 2: Multiple heuristics should find solutions
        // close to n + 1 replicas while Upwards needs ~2n.
        let n: u64 = 2;
        let w = 2 * n;
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mut reqs = vec![];
        b.add_client(root);
        reqs.push(n);
        for _ in 0..n {
            let s = b.add_node(root);
            let v = b.add_node(s);
            let wn = b.add_node(s);
            b.add_client(v);
            reqs.push(n);
            b.add_client(wn);
            reqs.push(n + 1);
        }
        let p = ProblemInstance::replica_counting(b.build().unwrap(), reqs, w);
        let optimal = solve_multiple_homogeneous(&p)
            .into_placement()
            .unwrap()
            .num_replicas();
        assert_eq!(optimal, (n + 1) as usize);
        // MG is guaranteed to succeed; MTD/MBU may fail on this adversarial
        // construction (the root's own client can be crowded out), in
        // which case they simply report no solution.
        for heuristic in [mtd, mbu, mg] {
            if let Some(placement) = heuristic(&p) {
                check_valid(&p, &placement);
                assert!(placement.num_replicas() >= optimal);
            }
        }
        let greedy = mg(&p).expect("MG never misses a feasible instance");
        check_valid(&p, &greedy);
    }

    #[test]
    fn mbu_deletes_small_clients_first() {
        // A node with clients 1, 1, 1, 7 and W = 3: MBU saturated at the
        // node should absorb the three unit clients rather than splitting
        // the big one.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        for _ in 0..4 {
            b.add_client(a);
        }
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![1, 1, 1, 7], 3);
        // MBU pass 1 on `a`: inreq 10 >= 3, deletes the three unit clients.
        // Remaining 7 requests from the big client go through pass 1 at the
        // root (3 more served) and the second pass (... capacity is 3, so
        // only 3 of the remaining 4 can be served: the instance is in fact
        // infeasible: total capacity 6 < 10).
        assert!(mbu(&p).is_none());

        // Enlarge W so the instance becomes feasible and inspect the split.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        for _ in 0..4 {
            b.add_client(a);
        }
        let _ = root;
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![1, 1, 1, 7], 5);
        let placement = mbu(&p).unwrap();
        check_valid(&p, &placement);
        let clients: Vec<_> = p.tree().client_ids().collect();
        // The unit clients are served by `a` (deleted first); the big
        // client is split between `a` and the root.
        assert_eq!(placement.assignments(clients[3]).len(), 2);
    }

    #[test]
    fn mg_always_finds_a_solution_when_one_exists() {
        // A heterogeneous instance where the top-down heuristics may be
        // fooled but MG must succeed (total capacity is just enough).
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let c = b.add_node(a);
        b.add_client(c);
        b.add_client(a);
        b.add_client(root);
        let p = ProblemInstance::replica_cost(b.build().unwrap(), vec![4, 3, 2], vec![2, 3, 4]);
        // Total requests 9 == total capacity 9: the only solution uses all
        // three nodes, and it exists (c takes 4 from the deep client? c has
        // capacity 4 -> serves the deep client; a (3) serves its client;
        // root (2) serves its client).
        let placement = mg(&p).unwrap();
        check_valid(&p, &placement);
        assert_eq!(placement.num_replicas(), 3);
        assert_eq!(placement.cost(&p), 9);
    }

    #[test]
    fn zero_requests_place_no_replicas() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_clients(root, 3);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![0, 0, 0], 2);
        for heuristic in [mtd, mbu, mg] {
            assert_eq!(heuristic(&p).unwrap().num_replicas(), 0);
        }
    }

    #[test]
    fn infeasible_instances_fail_for_all_heuristics() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![5], 4);
        for heuristic in [mtd, mbu, mg] {
            assert!(heuristic(&p).is_none());
        }
    }
}
