//! The eight polynomial heuristics of Section 6, plus *MixedBest*.
//!
//! | Heuristic | Policy | Strategy |
//! |-----------|--------|----------|
//! | [`ctda`]  | Closest | repeated breadth-first passes, every fitting node becomes a server |
//! | [`ctdlf`] | Closest | breadth-first, heaviest subtree first, one server per pass |
//! | [`cbu`]   | Closest | single bottom-up pass |
//! | [`utd`]   | Upwards | exhausted nodes top-down, then a top-down mop-up pass |
//! | [`ubcf`]  | Upwards | clients by decreasing size, best-fit ancestor |
//! | [`mtd`]   | Multiple | exhausted nodes top-down with client splitting |
//! | [`mbu`]   | Multiple | exhausted nodes bottom-up, small clients first |
//! | [`mg`]    | Multiple | greedy bottom-up sweep (never misses a feasible instance) |
//! | [`mixed_best`] | Multiple | best of all eight |
//!
//! All heuristics return `None` when they fail to produce a valid
//! solution; a placement they return is always valid for their policy
//! (and therefore for every less constrained policy).
//!
//! Beyond the paper's eight, [`lp_guided`] adds an **LP-guided rounding
//! & repair** subsystem that covers the problem variants the classic
//! heuristics cannot see (link bandwidths, multiple objects): solve the
//! rational relaxation, round its fractional optimum under exact
//! capacity/bandwidth accounting, repair and prune. See the
//! [`lp_guided`] module docs for the pipeline and for when it beats the
//! classic eight; [`MixedBest::full_sweep_lp_guided`] runs both worlds
//! and keeps the cheapest placement.

mod closest;
pub mod lp_guided;
mod multiple;
mod state;
mod upwards;

pub use closest::{cbu, ctda, ctdlf};
pub use lp_guided::{
    lp_guided as lp_guided_round, lp_guided_multi, repair_bandwidth, BandwidthRepair,
};
pub use multiple::{mbu, mg, mtd};
pub use state::{DeleteOrder, HeuristicState, StateBuffers};
pub use upwards::{ubcf, utd};

use crate::policy::Policy;
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Identifier of one of the paper's heuristics (plus MixedBest).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Heuristic {
    /// Closest Top Down All.
    Ctda,
    /// Closest Top Down Largest First.
    Ctdlf,
    /// Closest Bottom Up.
    Cbu,
    /// Upwards Top Down.
    Utd,
    /// Upwards Big Client First.
    Ubcf,
    /// Multiple Top Down.
    Mtd,
    /// Multiple Bottom Up.
    Mbu,
    /// Multiple Greedy.
    Mg,
    /// Best solution of all eight heuristics (valid under Multiple).
    MixedBest,
}

impl Heuristic {
    /// The eight base heuristics, in the order used by the paper's plots.
    pub const BASE: [Heuristic; 8] = [
        Heuristic::Ctda,
        Heuristic::Ctdlf,
        Heuristic::Cbu,
        Heuristic::Utd,
        Heuristic::Ubcf,
        Heuristic::Mg,
        Heuristic::Mtd,
        Heuristic::Mbu,
    ];

    /// The eight base heuristics plus MixedBest.
    pub const ALL: [Heuristic; 9] = [
        Heuristic::Ctda,
        Heuristic::Ctdlf,
        Heuristic::Cbu,
        Heuristic::Utd,
        Heuristic::Ubcf,
        Heuristic::Mg,
        Heuristic::Mtd,
        Heuristic::Mbu,
        Heuristic::MixedBest,
    ];

    /// The full name used in the paper's figures.
    pub fn full_name(self) -> &'static str {
        match self {
            Heuristic::Ctda => "ClosestTopDownAll",
            Heuristic::Ctdlf => "ClosestTopDownLargestFirst",
            Heuristic::Cbu => "ClosestBottomUp",
            Heuristic::Utd => "UpwardsTopDown",
            Heuristic::Ubcf => "UpwardsBigClientFirst",
            Heuristic::Mtd => "MultipleTopDown",
            Heuristic::Mbu => "MultipleBottomUp",
            Heuristic::Mg => "MultipleGreedy",
            Heuristic::MixedBest => "MixedBest",
        }
    }

    /// The short acronym used in the paper's text.
    pub fn acronym(self) -> &'static str {
        match self {
            Heuristic::Ctda => "CTDA",
            Heuristic::Ctdlf => "CTDLF",
            Heuristic::Cbu => "CBU",
            Heuristic::Utd => "UTD",
            Heuristic::Ubcf => "UBCF",
            Heuristic::Mtd => "MTD",
            Heuristic::Mbu => "MBU",
            Heuristic::Mg => "MG",
            Heuristic::MixedBest => "MB",
        }
    }

    /// The access policy whose rules the heuristic's solutions obey.
    pub fn policy(self) -> Policy {
        match self {
            Heuristic::Ctda | Heuristic::Ctdlf | Heuristic::Cbu => Policy::Closest,
            Heuristic::Utd | Heuristic::Ubcf => Policy::Upwards,
            Heuristic::Mtd | Heuristic::Mbu | Heuristic::Mg | Heuristic::MixedBest => {
                Policy::Multiple
            }
        }
    }

    /// Runs the heuristic on `problem`.
    pub fn run(self, problem: &ProblemInstance) -> Option<Placement> {
        match self {
            Heuristic::MixedBest => mixed_best(problem),
            base => {
                let mut state = HeuristicState::new(problem);
                base.run_with(&mut state);
                state.into_solution()
            }
        }
    }

    /// Runs one of the eight **base** heuristics on an existing (freshly
    /// created or [`reset`](HeuristicState::reset)) state, reusing every
    /// buffer the state owns; returns `true` when the heuristic served
    /// all requests. This is the allocation-free path that MixedBest and
    /// the sweep harness drive.
    ///
    /// # Panics
    ///
    /// Panics on [`Heuristic::MixedBest`], which composes the base
    /// heuristics and cannot run on a single shared state.
    pub fn run_with(self, state: &mut HeuristicState<'_>) -> bool {
        let _span = rp_obs::span_labeled(rp_obs::SpanKind::HeuristicRun, self.acronym());
        rp_obs::incr(rp_obs::Counter::CoreHeuristicRuns);
        let served = match self {
            Heuristic::Ctda => closest::ctda_on(state),
            Heuristic::Ctdlf => closest::ctdlf_on(state),
            Heuristic::Cbu => closest::cbu_on(state),
            Heuristic::Utd => upwards::utd_on(state),
            Heuristic::Ubcf => upwards::ubcf_on(state),
            Heuristic::Mtd => multiple::mtd_on(state),
            Heuristic::Mbu => multiple::mbu_on(state),
            Heuristic::Mg => multiple::mg_on(state),
            Heuristic::MixedBest => {
                panic!("MixedBest composes the base heuristics; use Heuristic::run")
            }
        };
        if !served {
            rp_obs::incr(rp_obs::Counter::CoreHeuristicFailures);
        }
        served
    }
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.acronym())
    }
}

/// Pooled driver for the *MixedBest* (MB) meta-heuristic: runs all
/// eight base heuristics and keeps the cheapest valid solution.
///
/// The struct owns two long-lived allocation sets — the
/// [`StateBuffers`] the heuristics run on and the incumbent
/// [`Placement`] — so [`full_sweep`](MixedBest::full_sweep) performs no
/// steady-state heap allocation: buffers and assignment lists only grow
/// on the first encounter with a larger problem, and the incumbent is
/// updated in place with [`Placement::copy_from`] instead of being
/// cloned per improvement. This is the per-worker unit the parallel
/// sweep pins to each thread (`allocs/full_sweep_pooled/*` in
/// `BENCH_baseline.json` measures the O(1) claim).
#[derive(Default)]
pub struct MixedBest {
    buffers: StateBuffers,
    incumbent: Placement,
}

impl MixedBest {
    /// A fresh driver with empty pools.
    pub fn new() -> Self {
        MixedBest::default()
    }

    /// Runs all eight base heuristics on `problem` and returns the
    /// cheapest valid placement (by reference into the pooled
    /// incumbent), or `None` when every heuristic fails — which, since
    /// MG never misses a feasible instance, means the instance is
    /// infeasible under Multiple.
    pub fn full_sweep(&mut self, problem: &ProblemInstance) -> Option<&Placement> {
        let mut buffers = std::mem::take(&mut self.buffers);
        let found = self.sweep_into(problem, &mut buffers);
        self.buffers = buffers;
        if found {
            Some(&self.incumbent)
        } else {
            None
        }
    }

    /// [`full_sweep`](MixedBest::full_sweep) on caller-provided
    /// [`StateBuffers`], so a worker that also runs single heuristics
    /// shares **one** allocation set between those runs and the
    /// MixedBest sweep (the driver's own pool stays untouched).
    pub fn full_sweep_reusing(
        &mut self,
        problem: &ProblemInstance,
        buffers: &mut StateBuffers,
    ) -> Option<&Placement> {
        if self.sweep_into(problem, buffers) {
            Some(&self.incumbent)
        } else {
            None
        }
    }

    /// The LP-guided sweep: runs the eight classic heuristics —
    /// bandwidth-repaired ([`BandwidthRepair`]) when the instance
    /// bounds its links — **plus** the LP-guided rounding candidate
    /// ([`lp_guided::lp_guided`]), and keeps the cheapest placement
    /// (each candidate valid under its own policy, so the winner is
    /// valid under Multiple).
    ///
    /// On bandwidth-constrained and heterogeneous instances the
    /// LP-guided candidate frequently wins, while on easy capacity-only
    /// instances the classic eight cost nothing extra and usually tie
    /// it. The LP solve reuses `workspace` so repeated calls over
    /// sibling instances warm-start. (The scenario sweep in
    /// `rp-experiments` runs the same two ensembles but keeps their
    /// costs *separate* for its per-candidate table columns, so it does
    /// not go through this combined method.)
    pub fn full_sweep_lp_guided(
        &mut self,
        problem: &ProblemInstance,
        options: &crate::ilp::IlpOptions,
        workspace: &mut rp_lp::LpWorkspace,
    ) -> Option<&Placement> {
        let mut best_cost: Option<u64> = None;
        for heuristic in Heuristic::BASE {
            if let Some(placement) = BandwidthRepair(heuristic).run(problem) {
                let cost = placement.cost(problem);
                if best_cost.map(|b| cost < b).unwrap_or(true) {
                    best_cost = Some(cost);
                    self.incumbent.copy_from(&placement);
                }
            }
        }
        if let Some(placement) = lp_guided::lp_guided_reusing(problem, options, workspace) {
            let cost = placement.cost(problem);
            if best_cost.map(|b| cost < b).unwrap_or(true) {
                best_cost = Some(cost);
                self.incumbent.copy_from(&placement);
            }
        }
        if best_cost.is_some() {
            Some(&self.incumbent)
        } else {
            None
        }
    }

    /// Shared sweep body: runs the eight heuristics on `buffers`,
    /// leaving the cheapest placement in `self.incumbent`. Returns
    /// `true` when at least one heuristic served every request.
    fn sweep_into(&mut self, problem: &ProblemInstance, buffers: &mut StateBuffers) -> bool {
        let mut state = HeuristicState::with_buffers(problem, std::mem::take(buffers));
        let mut best_cost: Option<u64> = None;
        let mut first = true;
        for heuristic in Heuristic::BASE {
            if !first {
                state.reset();
            }
            first = false;
            if heuristic.run_with(&mut state) {
                let cost = state.current_cost();
                if best_cost.map(|b| cost < b).unwrap_or(true) {
                    best_cost = Some(cost);
                    self.incumbent.copy_from(state.placement());
                }
            }
        }
        *buffers = state.into_buffers();
        best_cost.is_some()
    }
}

/// *MixedBest* (MB): runs all eight base heuristics and keeps the
/// cheapest valid solution. Since any Closest or Upwards solution is
/// also a Multiple solution, the result is always valid under Multiple;
/// and because MG never misses a feasible instance, neither does
/// MixedBest (Section 7.3).
///
/// One-shot convenience over the pooled [`MixedBest`] driver (which the
/// sweep harness holds onto per worker thread to amortise every
/// allocation across trials).
pub fn mixed_best(problem: &ProblemInstance) -> Option<Placement> {
    MixedBest::new().full_sweep(problem).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    fn small_instance() -> ProblemInstance {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let c = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(c);
        b.add_client(root);
        ProblemInstance::replica_cost(b.build().unwrap(), vec![3, 2, 4, 1], vec![6, 5, 4])
    }

    #[test]
    fn metadata_is_consistent() {
        assert_eq!(Heuristic::ALL.len(), 9);
        assert_eq!(Heuristic::BASE.len(), 8);
        for h in Heuristic::ALL {
            assert!(!h.full_name().is_empty());
            assert!(!h.acronym().is_empty());
            assert_eq!(h.to_string(), h.acronym());
        }
        assert_eq!(Heuristic::Ctda.policy(), Policy::Closest);
        assert_eq!(Heuristic::Ubcf.policy(), Policy::Upwards);
        assert_eq!(Heuristic::Mg.policy(), Policy::Multiple);
        assert_eq!(Heuristic::MixedBest.policy(), Policy::Multiple);
    }

    #[test]
    fn every_heuristic_returns_a_valid_placement_or_none() {
        let p = small_instance();
        for h in Heuristic::ALL {
            if let Some(placement) = h.run(&p) {
                assert!(
                    placement.is_valid(&p, h.policy()),
                    "{h} produced an invalid placement"
                );
            }
        }
    }

    #[test]
    fn mixed_best_is_at_least_as_good_as_every_base_heuristic() {
        let p = small_instance();
        let best = mixed_best(&p).expect("MG guarantees a solution here");
        let best_cost = best.cost(&p);
        for h in Heuristic::BASE {
            if let Some(placement) = h.run(&p) {
                assert!(best_cost <= placement.cost(&p), "{h}");
            }
        }
    }

    #[test]
    fn mixed_best_succeeds_whenever_mg_does() {
        let p = small_instance();
        assert_eq!(mg(&p).is_some(), mixed_best(&p).is_some());
    }

    #[test]
    fn lp_guided_sweep_never_loses_to_the_classic_sweep() {
        // Without bandwidth limits, the LP-guided sweep runs the same
        // eight classics plus one more candidate: it can only improve.
        let p = small_instance();
        let mut driver = MixedBest::new();
        let classic = driver.full_sweep(&p).map(|pl| pl.cost(&p)).unwrap();
        let mut workspace = rp_lp::LpWorkspace::new();
        let options = crate::ilp::IlpOptions::default();
        let guided = driver
            .full_sweep_lp_guided(&p, &options, &mut workspace)
            .expect("feasible");
        assert!(guided.is_valid(&p, Policy::Multiple));
        assert!(guided.cost(&p) <= classic);

        // On a bandwidth-bound instance the classics alone violate the
        // link; the LP-guided sweep must still hand back a placement
        // that respects it. (root W=s=10 -> mid W=s=3, one 4-request
        // client, uplink bw 2: the only valid shape splits 2/2.)
        let mut b = rp_tree::TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let bounded = ProblemInstance::builder(b.build().unwrap())
            .requests(vec![4])
            .capacities(vec![10, 3])
            .storage_costs(vec![10, 3])
            .node_link_bandwidths(vec![None, Some(2)])
            .build();
        let placement = driver
            .full_sweep_lp_guided(&bounded, &options, &mut workspace)
            .expect("feasible under Multiple with the split");
        assert!(placement.is_valid(&bounded, Policy::Multiple));
        assert_eq!(placement.cost(&bounded), 13);
    }

    #[test]
    fn pooled_full_sweep_matches_the_one_shot_api_across_problems() {
        // One pooled driver reused over differently sized problems must
        // return exactly what fresh runs return — including after an
        // infeasible instance.
        let mut driver = MixedBest::new();
        let p1 = small_instance();
        let fresh = mixed_best(&p1);
        let pooled = driver.full_sweep(&p1).cloned();
        assert_eq!(
            fresh.as_ref().map(|pl| pl.cost(&p1)),
            pooled.as_ref().map(|pl| pl.cost(&p1))
        );
        assert_eq!(fresh, pooled);

        // A larger tree next: buffers must regrow transparently.
        let mut b = rp_tree::TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        let low = b.add_node(mid);
        b.add_clients(low, 5);
        b.add_clients(mid, 3);
        b.add_client(root);
        let p2 = ProblemInstance::replica_cost(
            b.build().unwrap(),
            vec![2, 3, 1, 4, 2, 5, 1, 3, 2],
            vec![12, 9, 8],
        );
        assert_eq!(mixed_best(&p2), driver.full_sweep(&p2).cloned());

        // Infeasible: pooled driver must report None and stay usable.
        let mut b = rp_tree::TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        let infeasible = ProblemInstance::replica_counting(b.build().unwrap(), vec![100], 2);
        assert!(driver.full_sweep(&infeasible).is_none());
        assert_eq!(mixed_best(&p1), driver.full_sweep(&p1).cloned());
    }

    #[test]
    fn heuristics_respect_qos_bounds() {
        // root -> mid -> low -> {c0 (2 req, q = 1), c1 (1 req, no QoS)};
        // root -> c2 (1 req, q = 1). W = 2 everywhere.
        // c0 can only be served at `low`, c2 only at the root.
        let mut b = rp_tree::TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        let low = b.add_node(mid);
        b.add_client(low);
        b.add_client(low);
        b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![2, 1, 1])
            .capacities(vec![2, 2, 2])
            .storage_costs(vec![1, 1, 1])
            .qos(vec![Some(1), None, Some(1)])
            .build();
        for h in Heuristic::ALL {
            if let Some(placement) = h.run(&p) {
                assert!(
                    placement.is_valid(&p, h.policy()),
                    "{h} violated QoS: {:?}",
                    placement.validate(&p, h.policy())
                );
            }
        }
        // MG must find the feasible solution (low serves c0, mid or low
        // serves c1, root serves c2).
        let greedy = mg(&p).expect("feasible under Multiple");
        assert!(greedy.is_valid(&p, Policy::Multiple));
    }

    #[test]
    fn qos_infeasible_instances_fail_cleanly() {
        // A client that cannot reach any server with enough capacity.
        let mut b = rp_tree::TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![5])
            .capacities(vec![10, 3])
            .storage_costs(vec![10, 3])
            .qos(vec![Some(1)])
            .build();
        for h in Heuristic::ALL {
            assert!(
                h.run(&p).is_none(),
                "{h} should fail on a QoS-infeasible instance"
            );
        }
    }

    #[test]
    fn run_dispatches_to_the_matching_free_function() {
        let p = small_instance();
        assert_eq!(
            Heuristic::Cbu.run(&p).map(|pl| pl.cost(&p)),
            cbu(&p).map(|pl| pl.cost(&p))
        );
        assert_eq!(
            Heuristic::Ubcf.run(&p).map(|pl| pl.cost(&p)),
            ubcf(&p).map(|pl| pl.cost(&p))
        );
        assert_eq!(
            Heuristic::Mg.run(&p).map(|pl| pl.cost(&p)),
            mg(&p).map(|pl| pl.cost(&p))
        );
    }
}
