//! The eight polynomial heuristics of Section 6, plus *MixedBest*.
//!
//! | Heuristic | Policy | Strategy |
//! |-----------|--------|----------|
//! | [`ctda`]  | Closest | repeated breadth-first passes, every fitting node becomes a server |
//! | [`ctdlf`] | Closest | breadth-first, heaviest subtree first, one server per pass |
//! | [`cbu`]   | Closest | single bottom-up pass |
//! | [`utd`]   | Upwards | exhausted nodes top-down, then a top-down mop-up pass |
//! | [`ubcf`]  | Upwards | clients by decreasing size, best-fit ancestor |
//! | [`mtd`]   | Multiple | exhausted nodes top-down with client splitting |
//! | [`mbu`]   | Multiple | exhausted nodes bottom-up, small clients first |
//! | [`mg`]    | Multiple | greedy bottom-up sweep (never misses a feasible instance) |
//! | [`mixed_best`] | Multiple | best of all eight |
//!
//! All heuristics return `None` when they fail to produce a valid
//! solution; a placement they return is always valid for their policy
//! (and therefore for every less constrained policy).

mod closest;
mod multiple;
mod state;
mod upwards;

pub use closest::{cbu, ctda, ctdlf};
pub use multiple::{mbu, mg, mtd};
pub use state::{DeleteOrder, HeuristicState};
pub use upwards::{ubcf, utd};

use crate::policy::Policy;
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Identifier of one of the paper's heuristics (plus MixedBest).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Heuristic {
    /// Closest Top Down All.
    Ctda,
    /// Closest Top Down Largest First.
    Ctdlf,
    /// Closest Bottom Up.
    Cbu,
    /// Upwards Top Down.
    Utd,
    /// Upwards Big Client First.
    Ubcf,
    /// Multiple Top Down.
    Mtd,
    /// Multiple Bottom Up.
    Mbu,
    /// Multiple Greedy.
    Mg,
    /// Best solution of all eight heuristics (valid under Multiple).
    MixedBest,
}

impl Heuristic {
    /// The eight base heuristics, in the order used by the paper's plots.
    pub const BASE: [Heuristic; 8] = [
        Heuristic::Ctda,
        Heuristic::Ctdlf,
        Heuristic::Cbu,
        Heuristic::Utd,
        Heuristic::Ubcf,
        Heuristic::Mg,
        Heuristic::Mtd,
        Heuristic::Mbu,
    ];

    /// The eight base heuristics plus MixedBest.
    pub const ALL: [Heuristic; 9] = [
        Heuristic::Ctda,
        Heuristic::Ctdlf,
        Heuristic::Cbu,
        Heuristic::Utd,
        Heuristic::Ubcf,
        Heuristic::Mg,
        Heuristic::Mtd,
        Heuristic::Mbu,
        Heuristic::MixedBest,
    ];

    /// The full name used in the paper's figures.
    pub fn full_name(self) -> &'static str {
        match self {
            Heuristic::Ctda => "ClosestTopDownAll",
            Heuristic::Ctdlf => "ClosestTopDownLargestFirst",
            Heuristic::Cbu => "ClosestBottomUp",
            Heuristic::Utd => "UpwardsTopDown",
            Heuristic::Ubcf => "UpwardsBigClientFirst",
            Heuristic::Mtd => "MultipleTopDown",
            Heuristic::Mbu => "MultipleBottomUp",
            Heuristic::Mg => "MultipleGreedy",
            Heuristic::MixedBest => "MixedBest",
        }
    }

    /// The short acronym used in the paper's text.
    pub fn acronym(self) -> &'static str {
        match self {
            Heuristic::Ctda => "CTDA",
            Heuristic::Ctdlf => "CTDLF",
            Heuristic::Cbu => "CBU",
            Heuristic::Utd => "UTD",
            Heuristic::Ubcf => "UBCF",
            Heuristic::Mtd => "MTD",
            Heuristic::Mbu => "MBU",
            Heuristic::Mg => "MG",
            Heuristic::MixedBest => "MB",
        }
    }

    /// The access policy whose rules the heuristic's solutions obey.
    pub fn policy(self) -> Policy {
        match self {
            Heuristic::Ctda | Heuristic::Ctdlf | Heuristic::Cbu => Policy::Closest,
            Heuristic::Utd | Heuristic::Ubcf => Policy::Upwards,
            Heuristic::Mtd | Heuristic::Mbu | Heuristic::Mg | Heuristic::MixedBest => {
                Policy::Multiple
            }
        }
    }

    /// Runs the heuristic on `problem`.
    pub fn run(self, problem: &ProblemInstance) -> Option<Placement> {
        match self {
            Heuristic::MixedBest => mixed_best(problem),
            base => {
                let mut state = HeuristicState::new(problem);
                base.run_with(&mut state);
                state.into_solution()
            }
        }
    }

    /// Runs one of the eight **base** heuristics on an existing (freshly
    /// created or [`reset`](HeuristicState::reset)) state, reusing every
    /// buffer the state owns; returns `true` when the heuristic served
    /// all requests. This is the allocation-free path that MixedBest and
    /// the sweep harness drive.
    ///
    /// # Panics
    ///
    /// Panics on [`Heuristic::MixedBest`], which composes the base
    /// heuristics and cannot run on a single shared state.
    pub fn run_with(self, state: &mut HeuristicState<'_>) -> bool {
        match self {
            Heuristic::Ctda => closest::ctda_on(state),
            Heuristic::Ctdlf => closest::ctdlf_on(state),
            Heuristic::Cbu => closest::cbu_on(state),
            Heuristic::Utd => upwards::utd_on(state),
            Heuristic::Ubcf => upwards::ubcf_on(state),
            Heuristic::Mtd => multiple::mtd_on(state),
            Heuristic::Mbu => multiple::mbu_on(state),
            Heuristic::Mg => multiple::mg_on(state),
            Heuristic::MixedBest => {
                panic!("MixedBest composes the base heuristics; use Heuristic::run")
            }
        }
    }
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.acronym())
    }
}

/// *MixedBest* (MB): runs all eight base heuristics and keeps the
/// cheapest valid solution. Since any Closest or Upwards solution is
/// also a Multiple solution, the result is always valid under Multiple;
/// and because MG never misses a feasible instance, neither does
/// MixedBest (Section 7.3).
///
/// All eight heuristics run on **one** [`HeuristicState`], reset between
/// runs, so the whole sweep reuses a single set of `remaining` / `inreq`
/// / scratch buffers; the only extra work is copying out a candidate
/// placement when it improves on the incumbent.
pub fn mixed_best(problem: &ProblemInstance) -> Option<Placement> {
    let mut state = HeuristicState::new(problem);
    let mut best: Option<(u64, Placement)> = None;
    let mut first = true;
    for heuristic in Heuristic::BASE {
        if !first {
            state.reset();
        }
        first = false;
        if heuristic.run_with(&mut state) {
            let cost = state.current_cost();
            match &mut best {
                Some((best_cost, placement)) if cost < *best_cost => {
                    *best_cost = cost;
                    // clone_from reuses the incumbent's buffers.
                    placement.clone_from(state.placement());
                }
                Some(_) => {}
                None => best = Some((cost, state.placement().clone())),
            }
        }
    }
    best.map(|(_, placement)| placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    fn small_instance() -> ProblemInstance {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let c = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(c);
        b.add_client(root);
        ProblemInstance::replica_cost(b.build().unwrap(), vec![3, 2, 4, 1], vec![6, 5, 4])
    }

    #[test]
    fn metadata_is_consistent() {
        assert_eq!(Heuristic::ALL.len(), 9);
        assert_eq!(Heuristic::BASE.len(), 8);
        for h in Heuristic::ALL {
            assert!(!h.full_name().is_empty());
            assert!(!h.acronym().is_empty());
            assert_eq!(h.to_string(), h.acronym());
        }
        assert_eq!(Heuristic::Ctda.policy(), Policy::Closest);
        assert_eq!(Heuristic::Ubcf.policy(), Policy::Upwards);
        assert_eq!(Heuristic::Mg.policy(), Policy::Multiple);
        assert_eq!(Heuristic::MixedBest.policy(), Policy::Multiple);
    }

    #[test]
    fn every_heuristic_returns_a_valid_placement_or_none() {
        let p = small_instance();
        for h in Heuristic::ALL {
            if let Some(placement) = h.run(&p) {
                assert!(
                    placement.is_valid(&p, h.policy()),
                    "{h} produced an invalid placement"
                );
            }
        }
    }

    #[test]
    fn mixed_best_is_at_least_as_good_as_every_base_heuristic() {
        let p = small_instance();
        let best = mixed_best(&p).expect("MG guarantees a solution here");
        let best_cost = best.cost(&p);
        for h in Heuristic::BASE {
            if let Some(placement) = h.run(&p) {
                assert!(best_cost <= placement.cost(&p), "{h}");
            }
        }
    }

    #[test]
    fn mixed_best_succeeds_whenever_mg_does() {
        let p = small_instance();
        assert_eq!(mg(&p).is_some(), mixed_best(&p).is_some());
    }

    #[test]
    fn heuristics_respect_qos_bounds() {
        // root -> mid -> low -> {c0 (2 req, q = 1), c1 (1 req, no QoS)};
        // root -> c2 (1 req, q = 1). W = 2 everywhere.
        // c0 can only be served at `low`, c2 only at the root.
        let mut b = rp_tree::TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        let low = b.add_node(mid);
        b.add_client(low);
        b.add_client(low);
        b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![2, 1, 1])
            .capacities(vec![2, 2, 2])
            .storage_costs(vec![1, 1, 1])
            .qos(vec![Some(1), None, Some(1)])
            .build();
        for h in Heuristic::ALL {
            if let Some(placement) = h.run(&p) {
                assert!(
                    placement.is_valid(&p, h.policy()),
                    "{h} violated QoS: {:?}",
                    placement.validate(&p, h.policy())
                );
            }
        }
        // MG must find the feasible solution (low serves c0, mid or low
        // serves c1, root serves c2).
        let greedy = mg(&p).expect("feasible under Multiple");
        assert!(greedy.is_valid(&p, Policy::Multiple));
    }

    #[test]
    fn qos_infeasible_instances_fail_cleanly() {
        // A client that cannot reach any server with enough capacity.
        let mut b = rp_tree::TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![5])
            .capacities(vec![10, 3])
            .storage_costs(vec![10, 3])
            .qos(vec![Some(1)])
            .build();
        for h in Heuristic::ALL {
            assert!(
                h.run(&p).is_none(),
                "{h} should fail on a QoS-infeasible instance"
            );
        }
    }

    #[test]
    fn run_dispatches_to_the_matching_free_function() {
        let p = small_instance();
        assert_eq!(
            Heuristic::Cbu.run(&p).map(|pl| pl.cost(&p)),
            cbu(&p).map(|pl| pl.cost(&p))
        );
        assert_eq!(
            Heuristic::Ubcf.run(&p).map(|pl| pl.cost(&p)),
            ubcf(&p).map(|pl| pl.cost(&p))
        );
        assert_eq!(
            Heuristic::Mg.run(&p).map(|pl| pl.cost(&p)),
            mg(&p).map(|pl| pl.cost(&p))
        );
    }
}
