//! Combinatorial lower bounds on the replica cost.
//!
//! These are the cheap, closed-form bounds discussed in Section 3.4 of
//! the paper. The stronger LP-based bound (Section 7.1) lives in
//! [`crate::ilp`]. Section 3.4 also shows (Figure 5) that the trivial
//! bound can be arbitrarily far from the optimal cost, which the tests
//! of `rp-workloads::paper_examples` reproduce.

use rp_lp::LpEngine;

use crate::ilp::{lower_bound_with, BoundKind, IlpOptions};
use crate::problem::ProblemInstance;

/// The paper's LP-based lower bound (Section 7.1) on the chosen
/// [`LpEngine`]: the fully rational relaxation of the Multiple
/// formulation, valid for every policy.
///
/// This is the bound every heuristic of the experiment sweep is judged
/// against. [`LpEngine::Revised`] is the engine of choice (it reaches
/// paper-scale `s = 400` instances); [`LpEngine::DenseTableau`] computes
/// the same value with the independent dense oracle and is retained for
/// differential testing. Returns `None` when even the relaxation is
/// infeasible.
pub fn lp_rational_bound(problem: &ProblemInstance, engine: LpEngine) -> Option<f64> {
    lower_bound_with(
        problem,
        BoundKind::Rational,
        &IlpOptions::with_engine(engine),
    )
}

/// The obvious lower bound on the number of replicas for the
/// **Replica Counting** problem: `ceil(Σ r_i / W)` (Section 3.4).
///
/// Returns `None` when the instance is not homogeneous (the bound is
/// specific to identical servers).
pub fn replica_counting_lower_bound(problem: &ProblemInstance) -> Option<u64> {
    let capacity = problem.homogeneous_capacity()?;
    if capacity == 0 {
        return Some(u64::MAX);
    }
    Some(problem.total_requests().div_ceil(capacity))
}

/// The trivial lower bound on the total storage cost for the
/// **Replica Cost** problem with `s_j = W_j`: any valid replica set must
/// have total capacity at least `Σ r_i`, hence total cost at least
/// `Σ r_i`.
///
/// For instances whose costs are *not* proportional to capacities the
/// bound generalises to `Σ r_i × min_j (s_j / W_j)`, which is what this
/// function computes.
pub fn replica_cost_lower_bound(problem: &ProblemInstance) -> f64 {
    let total_requests = problem.total_requests() as f64;
    let min_cost_per_capacity = problem
        .tree()
        .node_ids()
        .filter(|&n| problem.capacity(n) > 0)
        .map(|n| problem.storage_cost(n) as f64 / problem.capacity(n) as f64)
        .fold(f64::INFINITY, f64::min);
    if min_cost_per_capacity.is_infinite() {
        // No node has positive capacity: only the zero-request instance
        // is feasible, with cost 0.
        return if total_requests == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
    }
    total_requests * min_cost_per_capacity
}

/// A quick infeasibility check that is valid for every policy: the
/// requests of each client must fit within the total capacity of its
/// eligible servers, and the overall load cannot exceed the overall
/// capacity. Returns `false` only when the instance is *certainly*
/// infeasible (the converse does not hold).
pub fn passes_basic_feasibility(problem: &ProblemInstance) -> bool {
    if problem.total_requests() > problem.total_capacity() {
        return false;
    }
    for client in problem.tree().client_ids() {
        let reachable: u64 = problem
            .eligible_servers(client)
            .map(|n| problem.capacity(n))
            .sum();
        if problem.requests(client) > reachable {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    fn chain_with_clients(requests: Vec<u64>, capacities: Vec<u64>) -> ProblemInstance {
        // A root with one internal child per extra capacity entry, clients
        // all attached to the deepest node.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mut deepest = root;
        for _ in 1..capacities.len() {
            deepest = b.add_node(deepest);
        }
        for _ in 0..requests.len() {
            b.add_client(deepest);
        }
        let tree = b.build().unwrap();
        ProblemInstance::replica_cost(tree, requests, capacities)
    }

    #[test]
    fn counting_bound_is_ceiling_of_load() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_clients(root, 3);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_counting(tree, vec![4, 5, 2], 10);
        assert_eq!(replica_counting_lower_bound(&p), Some(2)); // ceil(11/10)
    }

    #[test]
    fn counting_bound_requires_homogeneity() {
        let p = chain_with_clients(vec![1, 1], vec![5, 7]);
        assert_eq!(replica_counting_lower_bound(&p), None);
    }

    #[test]
    fn cost_bound_equals_total_requests_when_cost_is_capacity() {
        let p = chain_with_clients(vec![4, 6], vec![5, 7]);
        assert!((replica_cost_lower_bound(&p) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cost_bound_uses_cheapest_cost_per_capacity() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![10])
            .capacities(vec![10, 20])
            .storage_costs(vec![20, 10]) // mid is twice as cost-efficient
            .build();
        assert!((replica_cost_lower_bound(&p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn basic_feasibility_detects_overload() {
        let feasible = chain_with_clients(vec![3, 3], vec![5, 5]);
        assert!(passes_basic_feasibility(&feasible));
        let overloaded = chain_with_clients(vec![30, 3], vec![5, 5]);
        assert!(!passes_basic_feasibility(&overloaded));
    }

    #[test]
    fn basic_feasibility_respects_qos_reachability() {
        // Client can only reach its parent (q = 1) whose capacity is too
        // small, even though the root has plenty.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let tree = b.build().unwrap();
        let p = ProblemInstance::builder(tree)
            .requests(vec![10])
            .capacities(vec![100, 5])
            .qos(vec![Some(1)])
            .build();
        assert!(!passes_basic_feasibility(&p));
    }

    #[test]
    fn lp_bound_agrees_across_engines_and_dominates_the_trivial_bound() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        b.add_client(mid);
        b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![4, 3, 5], vec![10, 6]);
        let revised = lp_rational_bound(&p, LpEngine::Revised).expect("feasible");
        let dense = lp_rational_bound(&p, LpEngine::DenseTableau).expect("feasible");
        assert!((revised - dense).abs() < 1e-6, "{revised} vs {dense}");
        assert!(revised + 1e-6 >= replica_cost_lower_bound(&p));
    }

    #[test]
    fn zero_capacity_instances() {
        let p = chain_with_clients(vec![1], vec![0, 0]);
        assert_eq!(replica_counting_lower_bound(&p), Some(u64::MAX));
        assert!(replica_cost_lower_bound(&p).is_infinite());
        assert!(!passes_basic_feasibility(&p));
    }
}
