//! # rp-core — replica placement in tree networks
//!
//! The core library of this reproduction of *"Strategies for Replica
//! Placement in Tree Networks"* (Benoit, Rehn, Robert; IPPS 2007). It
//! provides:
//!
//! * [`ProblemInstance`] — a distribution tree decorated with client
//!   requests, server capacities and storage costs, optional QoS bounds
//!   and link bandwidths (Section 2);
//! * [`Policy`] — the three access policies *Closest*, *Upwards* and
//!   *Multiple* (Section 3);
//! * [`Placement`] — solutions (replica set + request assignment) with
//!   full constraint validation;
//! * [`exact`] — the paper's optimal polynomial algorithm for
//!   Multiple/homogeneous instances (Section 4.1) and an exhaustive
//!   oracle for small instances;
//! * [`heuristics`] — the eight polynomial heuristics of Section 6 plus
//!   MixedBest, and the [`heuristics::lp_guided`] rounding & repair
//!   subsystem that extends heuristic coverage to the
//!   bandwidth-constrained and multi-object families;
//! * [`ilp`] — the integer-linear-program formulations of Section 5 and
//!   the LP-based lower bounds of Section 7.1;
//! * [`bounds`] — the closed-form bounds of Section 3.4;
//! * [`multi`] — the several-object-types extension of Section 8.1;
//! * [`objective`] — the read/write/combined objectives of Section 8.2;
//! * [`io`] — plain-text (de)serialisation of whole problem instances;
//! * [`assignment`] — request-assignment procedures for a fixed replica
//!   set, shared by the solvers above.
//!
//! ## Performance model
//!
//! The paper's experiments sweep thousands of random trees per load
//! factor, so the per-tree hot paths are engineered to be
//! allocation-free in the steady state:
//!
//! * **Dense accounting** — [`Placement::server_loads`] and
//!   [`Placement::link_flows`] return dense `NodeMap` / `LinkMap`
//!   tables indexed by id, not ordered maps; validation walks them
//!   linearly. [`Placement::accumulate_server_loads`] adds into a
//!   caller-provided buffer for zero-allocation aggregation.
//! * **Reusable heuristic state** — [`heuristics::HeuristicState`] owns
//!   every buffer a heuristic needs (`remaining`, `inreq`, scratch
//!   client lists, the top-down FIFO) and exposes
//!   [`reset`](heuristics::HeuristicState::reset);
//!   [`Heuristic::run_with`] runs a base heuristic on such a state
//!   without allocating, and [`mixed_best`] drives all eight heuristics
//!   over one shared state. Scratch-buffer conventions are documented in
//!   [`heuristics::HeuristicState`].
//! * **Iterator traversal** — ancestor walks and path enumerations use
//!   `rp-tree`'s lazy iterators and O(1) ancestor/distance checks; no
//!   inner loop materialises a path `Vec`.
//!
//! `rp-bench`'s `heuristics_micro` bench and the `baseline` binary
//! measure both the speedups and the zero-allocation property
//! (`allocs/heuristic_steady/* == 0` in `BENCH_baseline.json`).
//!
//! ```
//! use rp_core::{Heuristic, Policy, ProblemInstance};
//! use rp_tree::TreeBuilder;
//!
//! // A toy CDN: the root, two regional hubs, four clients.
//! let mut b = TreeBuilder::new();
//! let root = b.add_root();
//! let east = b.add_node(root);
//! let west = b.add_node(root);
//! b.add_clients(east, 2);
//! b.add_clients(west, 2);
//! let tree = b.build().unwrap();
//!
//! let problem = ProblemInstance::replica_cost(
//!     tree,
//!     vec![30, 25, 40, 10],      // requests per client
//!     vec![120, 60, 60],         // capacity (= cost) per node
//! );
//!
//! let placement = Heuristic::MixedBest.run(&problem).expect("feasible");
//! assert!(placement.is_valid(&problem, Policy::Multiple));
//! assert!(placement.cost(&problem) <= 180);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Predates the workspace ban on panicking accessors (see clippy.toml);
// new long-lived code (rp-online, rp-obs) enforces it.
#![allow(clippy::disallowed_methods)]

pub mod assignment;
pub mod bounds;
pub mod delta;
pub mod dirty;
pub mod exact;
pub mod failures;
pub mod heuristics;
pub mod ilp;
pub mod io;
pub mod multi;
pub mod objective;
mod policy;
mod problem;
mod solution;

pub use delta::InstanceDelta;
pub use dirty::DirtyRegion;
pub use failures::{
    apply_failures, inject_and_repair, repair_after_failure, DegradedPlacement, DegradedPlatform,
    FailureEvent, RecoveryScope, RepairOutcome,
};
pub use heuristics::{mixed_best, BandwidthRepair, Heuristic, MixedBest, StateBuffers};
pub use policy::Policy;
pub use problem::{ProblemBuilder, ProblemInstance, ProblemKind};
pub use solution::{Assignment, Placement, Violation, Violations};
