//! Dirty-region tracking for incremental re-solves.
//!
//! The tree structure gives incremental placement its central
//! invariant: a client may only ever be served on the path from its
//! attachment point to the root, so **only the root path of a changed
//! node can change**. [`DirtyRegion`] exploits that — each delta marks
//! the clients it can possibly affect plus the nodes on their root
//! paths, and the surgical repair rung then touches *only* the marked
//! clients instead of re-examining the whole placement.
//!
//! Two containment facts make the marking sound:
//!
//! * any client assigned to server `n` lies in `subtree(n)` (servers
//!   must sit on the client's root path), so a capacity change at `n`
//!   can only disturb `subtree_clients(n)`;
//! * any client whose route crosses the uplink of `n` also lies in
//!   `subtree(n)`, so a link failure at `n` disturbs the same set.

use rp_tree::{ClientId, LinkId, NodeId, TreeNetwork};

/// A bitset over nodes and clients marking what an incremental pass
/// must re-examine. Reused across applies; `clear` is O(marked).
#[derive(Clone, Debug)]
pub struct DirtyRegion {
    node_dirty: Vec<bool>,
    client_dirty: Vec<bool>,
    marked_nodes: Vec<NodeId>,
    marked_clients: Vec<ClientId>,
}

impl DirtyRegion {
    /// An all-clean region sized for `tree`.
    pub fn for_tree(tree: &TreeNetwork) -> Self {
        DirtyRegion {
            node_dirty: vec![false; tree.num_nodes()],
            client_dirty: vec![false; tree.num_clients()],
            marked_nodes: Vec::new(),
            marked_clients: Vec::new(),
        }
    }

    /// Marks `client` and every node on its root path (the only servers
    /// that can gain or lose its load).
    pub fn mark_client(&mut self, tree: &TreeNetwork, client: ClientId) {
        if !self.client_dirty[client.index()] {
            self.client_dirty[client.index()] = true;
            self.marked_clients.push(client);
        }
        for node in tree.ancestors_of_client(client) {
            self.mark_node_only(node);
        }
    }

    /// Marks `node` and its root path.
    pub fn mark_node(&mut self, tree: &TreeNetwork, node: NodeId) {
        for ancestor in tree.self_and_ancestors(node) {
            self.mark_node_only(ancestor);
        }
    }

    /// Marks the whole subtree of `node` — its members, their root
    /// paths, and every client attached inside (the reach of a subtree
    /// failure/recovery or a capacity change at `node`).
    pub fn mark_subtree(&mut self, tree: &TreeNetwork, node: NodeId) {
        self.mark_node(tree, node);
        for &member in tree.subtree_nodes(node) {
            self.mark_node_only(member);
        }
        for &client in tree.subtree_clients(node) {
            if !self.client_dirty[client.index()] {
                self.client_dirty[client.index()] = true;
                self.marked_clients.push(client);
            }
        }
    }

    /// Marks the region a link outage/recovery can affect.
    pub fn mark_link(&mut self, tree: &TreeNetwork, link: LinkId) {
        match link {
            LinkId::Client(client) => self.mark_client(tree, client),
            LinkId::Node(node) => self.mark_subtree(tree, node),
        }
    }

    /// Marks everything.
    pub fn mark_all(&mut self, tree: &TreeNetwork) {
        for node in tree.node_ids() {
            self.mark_node_only(node);
        }
        for client in tree.client_ids() {
            if !self.client_dirty[client.index()] {
                self.client_dirty[client.index()] = true;
                self.marked_clients.push(client);
            }
        }
    }

    fn mark_node_only(&mut self, node: NodeId) {
        if !self.node_dirty[node.index()] {
            self.node_dirty[node.index()] = true;
            self.marked_nodes.push(node);
        }
    }

    /// Whether `node` is marked.
    pub fn is_node_dirty(&self, node: NodeId) -> bool {
        self.node_dirty[node.index()]
    }

    /// Whether `client` is marked.
    pub fn is_client_dirty(&self, client: ClientId) -> bool {
        self.client_dirty[client.index()]
    }

    /// The marked clients, in marking order.
    pub fn dirty_clients(&self) -> &[ClientId] {
        &self.marked_clients
    }

    /// The marked nodes, in marking order.
    pub fn dirty_nodes(&self) -> &[NodeId] {
        &self.marked_nodes
    }

    /// Whether anything is marked.
    pub fn is_empty(&self) -> bool {
        self.marked_nodes.is_empty() && self.marked_clients.is_empty()
    }

    /// Clears every mark in O(marked).
    pub fn clear(&mut self) {
        for node in self.marked_nodes.drain(..) {
            self.node_dirty[node.index()] = false;
        }
        for client in self.marked_clients.drain(..) {
            self.client_dirty[client.index()] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    /// root -> mid -> low -> {c0}; mid -> c1; root -> c2.
    fn sample() -> (TreeNetwork, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        let low = b.add_node(mid);
        let c0 = b.add_client(low);
        let c1 = b.add_client(mid);
        let c2 = b.add_client(root);
        (b.build().unwrap(), vec![root, mid, low], vec![c0, c1, c2])
    }

    #[test]
    fn marking_a_client_marks_its_root_path_only() {
        let (tree, n, c) = sample();
        let mut dirty = DirtyRegion::for_tree(&tree);
        dirty.mark_client(&tree, c[0]);
        assert!(dirty.is_client_dirty(c[0]));
        assert!(!dirty.is_client_dirty(c[1]));
        for &node in &n {
            assert!(dirty.is_node_dirty(node));
        }
        assert_eq!(dirty.dirty_clients(), &[c[0]]);
    }

    #[test]
    fn marking_a_subtree_catches_its_clients() {
        let (tree, n, c) = sample();
        let mut dirty = DirtyRegion::for_tree(&tree);
        dirty.mark_subtree(&tree, n[1]);
        assert!(dirty.is_client_dirty(c[0]));
        assert!(dirty.is_client_dirty(c[1]));
        assert!(!dirty.is_client_dirty(c[2]));
        // The root is on mid's root path, so it is marked too.
        assert!(dirty.is_node_dirty(n[0]));
    }

    #[test]
    fn clear_resets_everything_and_marks_do_not_duplicate() {
        let (tree, n, c) = sample();
        let mut dirty = DirtyRegion::for_tree(&tree);
        dirty.mark_client(&tree, c[1]);
        dirty.mark_client(&tree, c[1]);
        dirty.mark_link(&tree, LinkId::Node(n[1]));
        assert_eq!(
            dirty.dirty_clients().iter().filter(|&&k| k == c[1]).count(),
            1
        );
        assert!(!dirty.is_empty());
        dirty.clear();
        assert!(dirty.is_empty());
        assert!(!dirty.is_node_dirty(n[0]));
        dirty.mark_all(&tree);
        assert_eq!(dirty.dirty_clients().len(), 3);
        assert_eq!(dirty.dirty_nodes().len(), 3);
    }
}
