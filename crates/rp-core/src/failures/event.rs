//! The failure events the fault-injection subsystem understands.

use std::fmt;

use rp_tree::{LinkId, NodeId};

/// One platform failure, applied on top of a healthy
/// [`ProblemInstance`](crate::ProblemInstance).
///
/// Failures compose: a trace (a slice of events) is applied left to
/// right, and overlapping events degrade to the *worst* of their
/// effects — two capacity losses on one node keep the smaller
/// remainder, a crash on an already-degraded node still zeroes it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureEvent {
    /// The server at `node` crashes: its processing capacity drops to
    /// zero and any replica stored there is lost. Requests may still
    /// *route through* the node — crashing a server does not sever its
    /// links (contrast [`FailureEvent::UplinkDown`]).
    ServerCrash(NodeId),
    /// The named link goes down: no request may cross it any more
    /// (its bandwidth drops to zero). Taking down a client's own
    /// uplink makes that client unservable. The root has no uplink;
    /// `UplinkDown(LinkId::Node(root))` is ignored.
    UplinkDown(LinkId),
    /// The server at `node` survives but loses part of its processing
    /// capacity (an overheating host sheds load, a disk array loses a
    /// shelf). The new capacity is `min(current, remaining)`.
    CapacityLoss {
        /// The degraded server.
        node: NodeId,
        /// Capacity left after the event.
        remaining: u64,
    },
    /// Correlated failure of a whole subtree (a rack or site loses
    /// power): every server in `subtree(node)` crashes **and** every
    /// uplink inside the subtree — including `node`'s own — goes down,
    /// so the subtree's clients are cut off entirely.
    SubtreeFailure(NodeId),
    /// The scoped part of the platform *heals*: capacities return to
    /// their pristine values and dead links come back up. Recovery is
    /// the one event for which left-to-right order matters beyond
    /// "worst effect wins" — a crash *after* a recovery kills the node
    /// again, a crash *before* it is undone.
    Recovered(RecoveryScope),
}

/// What part of the platform a [`FailureEvent::Recovered`] event heals.
///
/// Recovery always restores to the *pristine* instance — there is no
/// partial heal. A scope that was never degraded is a no-op, so traces
/// composed by a generator may recover liberally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryScope {
    /// The server at `node` comes back: capacity returns to its
    /// pristine value and the crashed flag clears. Undoes both
    /// [`FailureEvent::ServerCrash`] and [`FailureEvent::CapacityLoss`].
    Server(NodeId),
    /// The named link comes back up at its pristine bandwidth.
    Link(LinkId),
    /// The whole subtree of `node` heals: every member server, every
    /// internal uplink, **and** the uplinks of clients attached inside
    /// the subtree (the site is back on power, so its last-hop links
    /// are too).
    Subtree(NodeId),
    /// Everything heals — the platform returns to the pristine
    /// instance.
    All,
}

impl FailureEvent {
    /// Short machine-readable tag used in reports and JSON output.
    pub fn kind_name(self) -> &'static str {
        match self {
            FailureEvent::ServerCrash(_) => "server-crash",
            FailureEvent::UplinkDown(_) => "uplink-down",
            FailureEvent::CapacityLoss { .. } => "capacity-loss",
            FailureEvent::SubtreeFailure(_) => "subtree-failure",
            FailureEvent::Recovered(_) => "recovered",
        }
    }
}

impl fmt::Display for FailureEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureEvent::ServerCrash(node) => write!(f, "server {node} crashed"),
            FailureEvent::UplinkDown(link) => write!(f, "{link} down"),
            FailureEvent::CapacityLoss { node, remaining } => {
                write!(f, "server {node} degraded to capacity {remaining}")
            }
            FailureEvent::SubtreeFailure(node) => {
                write!(f, "subtree of {node} failed")
            }
            FailureEvent::Recovered(scope) => match scope {
                RecoveryScope::Server(node) => write!(f, "server {node} recovered"),
                RecoveryScope::Link(link) => write!(f, "{link} restored"),
                RecoveryScope::Subtree(node) => write!(f, "subtree of {node} recovered"),
                RecoveryScope::All => write!(f, "platform fully recovered"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind_names_are_informative() {
        let node = NodeId::from_index(3);
        let events = [
            FailureEvent::ServerCrash(node),
            FailureEvent::UplinkDown(LinkId::Node(node)),
            FailureEvent::CapacityLoss { node, remaining: 7 },
            FailureEvent::SubtreeFailure(node),
            FailureEvent::Recovered(RecoveryScope::Server(node)),
            FailureEvent::Recovered(RecoveryScope::All),
        ];
        let kinds: Vec<_> = events.iter().map(|e| e.kind_name()).collect();
        assert_eq!(
            kinds,
            [
                "server-crash",
                "uplink-down",
                "capacity-loss",
                "subtree-failure",
                "recovered",
                "recovered"
            ]
        );
        for event in events {
            assert!(!event.to_string().is_empty());
        }
        assert!(events[2].to_string().contains("capacity 7"));
    }
}
