//! The outcome of a post-failure repair: full recovery or a verified
//! degraded report.

use rp_tree::ClientId;

use crate::failures::apply::DegradedPlatform;
use crate::policy::Policy;
use crate::solution::Placement;

/// A best-effort placement over the surviving platform when full
/// service is infeasible: every client is either served completely or
/// listed as unserved, and [`DegradedPlacement::verify`] checks the
/// served set is genuinely servable.
#[derive(Clone, Debug)]
pub struct DegradedPlacement {
    /// The partial placement: serves exactly the clients *not* listed
    /// in [`unserved`](DegradedPlacement::unserved).
    pub placement: Placement,
    /// Clients the surviving platform cannot serve, sorted by index.
    pub unserved: Vec<ClientId>,
    /// Requests actually served.
    pub served_requests: u64,
    /// Requests the healthy instance demanded (`Σ r_i`).
    pub total_requests: u64,
    /// Storage cost of the partial placement.
    pub cost: u64,
}

impl DegradedPlacement {
    /// Fraction of all requests still served, in `[0, 1]` (1.0 for an
    /// instance with no requests at all).
    pub fn served_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            1.0
        } else {
            self.served_requests as f64 / self.total_requests as f64
        }
    }

    /// Checks the report is *correct*: the placement serves every
    /// non-unserved client exactly (it validates against the surviving
    /// instance with unserved requests zeroed), unserved clients have
    /// no assignments, and the bookkeeping totals add up.
    pub fn verify(&self, platform: &DegradedPlatform, policy: Policy) -> bool {
        let problem = platform.problem();
        let tree = problem.tree();
        if self
            .unserved
            .iter()
            .any(|&c| !self.placement.assignments(c).is_empty())
        {
            return false;
        }
        let served: u64 = tree
            .client_ids()
            .filter(|c| !self.unserved.contains(c))
            .map(|c| problem.requests(c))
            .sum();
        let total: u64 = tree.client_ids().map(|c| problem.requests(c)).sum();
        if served != self.served_requests || total != self.total_requests {
            return false;
        }
        let check = platform.problem_with_unserved_dropped(&self.unserved);
        self.cost == self.placement.cost(&check) && self.placement.is_valid(&check, policy)
    }
}

/// What [`repair_after_failure`](crate::failures::repair_after_failure)
/// produced.
#[derive(Clone, Debug)]
pub enum RepairOutcome {
    /// Every request is served again: a placement fully valid over the
    /// surviving platform.
    Full(Placement),
    /// Full service is not achievable (or not found): the best partial
    /// placement, with the shortfall reported rather than hidden.
    Degraded(DegradedPlacement),
}

impl RepairOutcome {
    /// Whether the repair restored full service.
    pub fn is_full(&self) -> bool {
        matches!(self, RepairOutcome::Full(_))
    }

    /// The (possibly partial) placement.
    pub fn placement(&self) -> &Placement {
        match self {
            RepairOutcome::Full(placement) => placement,
            RepairOutcome::Degraded(report) => &report.placement,
        }
    }

    /// Fraction of requests served: 1.0 for a full repair.
    pub fn served_fraction(&self) -> f64 {
        match self {
            RepairOutcome::Full(_) => 1.0,
            RepairOutcome::Degraded(report) => report.served_fraction(),
        }
    }

    /// Checks the outcome against the surviving platform: a full
    /// placement must validate as-is, a degraded report must
    /// [`verify`](DegradedPlacement::verify).
    pub fn verify(&self, platform: &DegradedPlatform, policy: Policy) -> bool {
        match self {
            RepairOutcome::Full(placement) => placement.is_valid(platform.problem(), policy),
            RepairOutcome::Degraded(report) => report.verify(platform, policy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::apply::apply_failures;
    use crate::failures::event::FailureEvent;
    use crate::problem::ProblemInstance;
    use rp_tree::{LinkId, TreeBuilder};

    #[test]
    fn degraded_report_bookkeeping_is_checked() {
        // root -> {c0 (3), c1 (2)}; cut c0's uplink.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let c0 = b.add_client(root);
        let c1 = b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree.clone(), vec![3, 2], vec![10]);
        let platform = apply_failures(&p, &[FailureEvent::UplinkDown(LinkId::Client(c0))]);

        let mut placement = Placement::empty(2);
        let root_id = platform.problem().tree().root();
        placement.add_replica(root_id);
        placement.assign(c1, root_id, 2);
        let report = DegradedPlacement {
            placement: placement.clone(),
            unserved: vec![c0],
            served_requests: 2,
            total_requests: 5,
            cost: 10,
        };
        assert!(report.verify(&platform, Policy::Closest));
        assert!((report.served_fraction() - 0.4).abs() < 1e-12);

        // Wrong totals fail the check.
        let mut wrong = report.clone();
        wrong.served_requests = 3;
        assert!(!wrong.verify(&platform, Policy::Closest));

        // An "unserved" client that secretly has assignments fails too.
        let mut sneaky = report.clone();
        sneaky.placement.assign(c0, root_id, 1);
        assert!(!sneaky.verify(&platform, Policy::Closest));

        let outcome = RepairOutcome::Degraded(report);
        assert!(!outcome.is_full());
        assert!((outcome.served_fraction() - 0.4).abs() < 1e-12);
        assert!(outcome.verify(&platform, Policy::Closest));
        assert_eq!(outcome.placement().num_replicas(), 1);
    }

    #[test]
    fn full_outcome_verifies_against_the_surviving_instance() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let c0 = b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![4], vec![10]);
        let platform = apply_failures(
            &p,
            &[FailureEvent::CapacityLoss {
                node: p.tree().root(),
                remaining: 5,
            }],
        );
        let mut placement = Placement::empty(1);
        placement.add_replica(p.tree().root());
        placement.assign(c0, p.tree().root(), 4);
        let outcome = RepairOutcome::Full(placement);
        assert!(outcome.is_full());
        assert_eq!(outcome.served_fraction(), 1.0);
        assert!(outcome.verify(&platform, Policy::Multiple));
    }
}
