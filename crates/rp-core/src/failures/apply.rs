//! Applying failure events to a healthy instance.

use std::sync::Arc;

use rp_tree::{ClientId, LinkId, NodeId, TreeNetwork};

use crate::failures::event::{FailureEvent, RecoveryScope};
use crate::problem::ProblemInstance;

/// A [`ProblemInstance`] after a failure trace: the surviving platform.
///
/// The degraded instance encodes every failure through the ordinary
/// problem parameters — crashed servers have capacity 0, dead links
/// have bandwidth 0 — so *all* existing machinery (heuristics,
/// validation, the exact accounting) works on it unchanged. The dead
/// flags are kept alongside because a zero-capacity server and a
/// crashed one differ for repair: a replica may not survive on either,
/// but only a dead *link* severs routes.
#[derive(Clone)]
pub struct DegradedPlatform {
    problem: ProblemInstance,
    dead_servers: Vec<bool>,
    dead_client_links: Vec<bool>,
    dead_node_links: Vec<bool>,
}

/// Applies `events` (left to right, worst effect wins) to `problem`,
/// producing the surviving platform.
pub fn apply_failures(problem: &ProblemInstance, events: &[FailureEvent]) -> DegradedPlatform {
    let tree = problem.tree();
    let mut capacities: Vec<u64> = tree.node_ids().map(|n| problem.capacity(n)).collect();
    let mut dead_servers = vec![false; tree.num_nodes()];
    let mut dead_client_links = vec![false; tree.num_clients()];
    let mut dead_node_links = vec![false; tree.num_nodes()];

    fn kill_server(capacities: &mut [u64], dead: &mut [bool], node: NodeId) {
        capacities[node.index()] = 0;
        dead[node.index()] = true;
    }

    for &event in events {
        match event {
            FailureEvent::ServerCrash(node) => {
                kill_server(&mut capacities, &mut dead_servers, node);
            }
            FailureEvent::UplinkDown(LinkId::Client(client)) => {
                dead_client_links[client.index()] = true;
            }
            FailureEvent::UplinkDown(LinkId::Node(node)) => {
                // The root has no uplink: nothing to sever.
                if !tree.is_root(node) {
                    dead_node_links[node.index()] = true;
                }
            }
            FailureEvent::CapacityLoss { node, remaining } => {
                let slot = &mut capacities[node.index()];
                *slot = (*slot).min(remaining);
            }
            FailureEvent::SubtreeFailure(node) => {
                for &member in tree.subtree_nodes(node) {
                    kill_server(&mut capacities, &mut dead_servers, member);
                    if !tree.is_root(member) {
                        dead_node_links[member.index()] = true;
                    }
                }
            }
            FailureEvent::Recovered(scope) => {
                let mut heal_server = |node: NodeId| {
                    capacities[node.index()] = problem.capacity(node);
                    dead_servers[node.index()] = false;
                };
                match scope {
                    RecoveryScope::Server(node) => heal_server(node),
                    RecoveryScope::Link(LinkId::Client(client)) => {
                        dead_client_links[client.index()] = false;
                    }
                    RecoveryScope::Link(LinkId::Node(node)) => {
                        dead_node_links[node.index()] = false;
                    }
                    RecoveryScope::Subtree(node) => {
                        for &member in tree.subtree_nodes(node) {
                            heal_server(member);
                            dead_node_links[member.index()] = false;
                        }
                        for &client in tree.subtree_clients(node) {
                            dead_client_links[client.index()] = false;
                        }
                    }
                    RecoveryScope::All => {
                        for node in tree.node_ids() {
                            heal_server(node);
                            dead_node_links[node.index()] = false;
                        }
                        dead_client_links.fill(false);
                    }
                }
            }
        }
    }

    let problem = rebuild_with(
        problem,
        capacities,
        |c| dead_client_links[c.index()],
        |n| dead_node_links[n.index()],
        |c| problem.requests(c),
    );
    DegradedPlatform {
        problem,
        dead_servers,
        dead_client_links,
        dead_node_links,
    }
}

/// Rebuilds an instance with new capacities, zeroed bandwidth on dead
/// links, and (for the report path) possibly reduced requests. Every
/// other parameter — tree, storage costs, QoS bounds, objective kind —
/// carries over unchanged.
fn rebuild_with(
    problem: &ProblemInstance,
    capacities: Vec<u64>,
    client_link_dead: impl Fn(ClientId) -> bool,
    node_link_dead: impl Fn(NodeId) -> bool,
    requests: impl Fn(ClientId) -> u64,
) -> ProblemInstance {
    let tree: Arc<TreeNetwork> = problem.tree_arc();
    let requests: Vec<u64> = tree.client_ids().map(requests).collect();
    let storage_costs: Vec<u64> = tree.node_ids().map(|n| problem.storage_cost(n)).collect();
    let qos: Vec<Option<u32>> = tree.client_ids().map(|c| problem.qos(c)).collect();
    let client_bw: Vec<Option<u64>> = tree
        .client_ids()
        .map(|c| {
            if client_link_dead(c) {
                Some(0)
            } else {
                problem.bandwidth(LinkId::Client(c))
            }
        })
        .collect();
    let node_bw: Vec<Option<u64>> = tree
        .node_ids()
        .map(|n| {
            if !tree.is_root(n) && node_link_dead(n) {
                Some(0)
            } else {
                problem.bandwidth(LinkId::Node(n))
            }
        })
        .collect();
    let kind = problem.kind();
    ProblemInstance::builder(tree)
        .requests(requests)
        .capacities(capacities)
        .storage_costs(storage_costs)
        .qos(qos)
        .client_link_bandwidths(client_bw)
        .node_link_bandwidths(node_bw)
        .kind(kind)
        .build()
}

impl DegradedPlatform {
    /// Assembles a platform from an already-degraded instance plus its
    /// dead flags. The online engine maintains these four pieces
    /// incrementally (one delta at a time) rather than replaying a
    /// growing trace through [`apply_failures`]; `problem` must already
    /// encode the flags (capacity 0 on dead servers, bandwidth
    /// `Some(0)` on dead links).
    ///
    /// # Panics
    /// If a flag vector's length does not match the tree.
    pub fn from_parts(
        problem: ProblemInstance,
        dead_servers: Vec<bool>,
        dead_client_links: Vec<bool>,
        dead_node_links: Vec<bool>,
    ) -> Self {
        let tree = problem.tree();
        assert_eq!(dead_servers.len(), tree.num_nodes());
        assert_eq!(dead_client_links.len(), tree.num_clients());
        assert_eq!(dead_node_links.len(), tree.num_nodes());
        DegradedPlatform {
            problem,
            dead_servers,
            dead_client_links,
            dead_node_links,
        }
    }

    /// The surviving instance (degraded capacities and bandwidths).
    pub fn problem(&self) -> &ProblemInstance {
        &self.problem
    }

    /// Whether the server at `node` crashed (capacity-degraded but
    /// surviving servers report `false`).
    pub fn is_server_dead(&self, node: NodeId) -> bool {
        self.dead_servers[node.index()]
    }

    /// Whether `link` went down.
    pub fn is_link_dead(&self, link: LinkId) -> bool {
        match link {
            LinkId::Client(c) => self.dead_client_links[c.index()],
            LinkId::Node(n) => self.dead_node_links[n.index()],
        }
    }

    /// Whether `client` can still physically reach `server`: the server
    /// is on the client's path, survives, and no link between them is
    /// down. (Capacity and bandwidth headroom are a separate question,
    /// answered by the exact accounting.)
    pub fn path_is_alive(&self, client: ClientId, server: NodeId) -> bool {
        if self.is_server_dead(server) {
            return false;
        }
        let Some(links) = self.problem.tree().client_path_links(client, server) else {
            return false;
        };
        for link in links {
            if self.is_link_dead(link) {
                return false;
            }
        }
        true
    }

    /// Number of crashed servers.
    pub fn num_dead_servers(&self) -> usize {
        self.dead_servers.iter().filter(|&&d| d).count()
    }

    /// Number of severed links.
    pub fn num_dead_links(&self) -> usize {
        self.dead_client_links.iter().filter(|&&d| d).count()
            + self.dead_node_links.iter().filter(|&&d| d).count()
    }

    /// A copy of the surviving instance with the requests of `unserved`
    /// clients zeroed — the instance a degraded placement is validated
    /// against (a zero-request client passes validation unassigned).
    pub fn problem_with_unserved_dropped(&self, unserved: &[ClientId]) -> ProblemInstance {
        let mut dropped = vec![false; self.problem.tree().num_clients()];
        for &client in unserved {
            dropped[client.index()] = true;
        }
        let capacities: Vec<u64> = self
            .problem
            .tree()
            .node_ids()
            .map(|n| self.problem.capacity(n))
            .collect();
        rebuild_with(
            &self.problem,
            capacities,
            |c| self.dead_client_links[c.index()],
            |n| self.dead_node_links[n.index()],
            |c| {
                if dropped[c.index()] {
                    0
                } else {
                    self.problem.requests(c)
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    /// root -> mid -> low -> {c0}; mid -> c1; root -> c2.
    fn sample() -> (ProblemInstance, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        let low = b.add_node(mid);
        let c0 = b.add_client(low);
        let c1 = b.add_client(mid);
        let c2 = b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![3, 5, 2], vec![10, 8, 6]);
        (p, vec![root, mid, low], vec![c0, c1, c2])
    }

    #[test]
    fn server_crash_zeroes_capacity_but_keeps_routes() {
        let (p, n, c) = sample();
        let platform = apply_failures(&p, &[FailureEvent::ServerCrash(n[1])]);
        assert!(platform.is_server_dead(n[1]));
        assert_eq!(platform.problem().capacity(n[1]), 0);
        assert_eq!(platform.num_dead_servers(), 1);
        assert_eq!(platform.num_dead_links(), 0);
        // c0 can still reach the root *through* the crashed mid.
        assert!(platform.path_is_alive(c[0], n[0]));
        assert!(!platform.path_is_alive(c[0], n[1]));
        // Everything else carries over.
        assert_eq!(platform.problem().requests(c[0]), 3);
        assert_eq!(platform.problem().storage_cost(n[1]), 8);
        assert_eq!(platform.problem().kind(), p.kind());
    }

    #[test]
    fn uplink_down_severs_everything_above() {
        let (p, n, c) = sample();
        let platform = apply_failures(&p, &[FailureEvent::UplinkDown(LinkId::Node(n[2]))]);
        assert!(platform.is_link_dead(LinkId::Node(n[2])));
        assert_eq!(platform.problem().bandwidth(LinkId::Node(n[2])), Some(0));
        // c0 keeps its subtree server but loses everything above low.
        assert!(platform.path_is_alive(c[0], n[2]));
        assert!(!platform.path_is_alive(c[0], n[1]));
        assert!(!platform.path_is_alive(c[0], n[0]));
        // c1 and c2 are untouched.
        assert!(platform.path_is_alive(c[1], n[0]));
        assert!(platform.path_is_alive(c[2], n[0]));
    }

    #[test]
    fn client_uplink_down_cuts_the_client_off() {
        let (p, n, c) = sample();
        let platform = apply_failures(&p, &[FailureEvent::UplinkDown(LinkId::Client(c[1]))]);
        for &server in &n {
            assert!(!platform.path_is_alive(c[1], server));
        }
        assert!(platform.path_is_alive(c[0], n[0]));
    }

    #[test]
    fn root_uplink_failure_is_ignored() {
        let (p, n, _) = sample();
        let platform = apply_failures(&p, &[FailureEvent::UplinkDown(LinkId::Node(n[0]))]);
        assert_eq!(platform.num_dead_links(), 0);
        assert_eq!(platform.problem().bandwidth(LinkId::Node(n[0])), None);
    }

    #[test]
    fn capacity_loss_keeps_the_worst_of_overlapping_events() {
        let (p, n, _) = sample();
        let platform = apply_failures(
            &p,
            &[
                FailureEvent::CapacityLoss {
                    node: n[0],
                    remaining: 6,
                },
                FailureEvent::CapacityLoss {
                    node: n[0],
                    remaining: 9,
                },
            ],
        );
        assert_eq!(platform.problem().capacity(n[0]), 6);
        assert!(!platform.is_server_dead(n[0]));
    }

    #[test]
    fn subtree_failure_kills_servers_and_links_together() {
        let (p, n, c) = sample();
        let platform = apply_failures(&p, &[FailureEvent::SubtreeFailure(n[1])]);
        assert!(platform.is_server_dead(n[1]));
        assert!(platform.is_server_dead(n[2]));
        assert!(!platform.is_server_dead(n[0]));
        assert!(platform.is_link_dead(LinkId::Node(n[1])));
        assert!(platform.is_link_dead(LinkId::Node(n[2])));
        // Both subtree clients are completely cut off; c2 survives.
        for &server in &n {
            assert!(!platform.path_is_alive(c[0], server));
            assert!(!platform.path_is_alive(c[1], server));
        }
        assert!(platform.path_is_alive(c[2], n[0]));
    }

    #[test]
    fn recovery_restores_pristine_capacity_and_links() {
        let (p, n, c) = sample();
        // Crash mid, degrade root, cut c0's uplink — then heal each.
        let trace = [
            FailureEvent::ServerCrash(n[1]),
            FailureEvent::CapacityLoss {
                node: n[0],
                remaining: 2,
            },
            FailureEvent::UplinkDown(LinkId::Client(c[0])),
            FailureEvent::Recovered(RecoveryScope::Server(n[1])),
            FailureEvent::Recovered(RecoveryScope::Server(n[0])),
            FailureEvent::Recovered(RecoveryScope::Link(LinkId::Client(c[0]))),
        ];
        let platform = apply_failures(&p, &trace);
        assert!(!platform.is_server_dead(n[1]));
        assert_eq!(platform.problem().capacity(n[1]), p.capacity(n[1]));
        assert_eq!(platform.problem().capacity(n[0]), p.capacity(n[0]));
        assert_eq!(platform.num_dead_links(), 0);
        assert!(platform.path_is_alive(c[0], n[0]));
    }

    #[test]
    fn recovery_order_matters() {
        let (p, n, _) = sample();
        // Heal, then crash again: the crash wins.
        let platform = apply_failures(
            &p,
            &[
                FailureEvent::ServerCrash(n[1]),
                FailureEvent::Recovered(RecoveryScope::Server(n[1])),
                FailureEvent::ServerCrash(n[1]),
            ],
        );
        assert!(platform.is_server_dead(n[1]));
        assert_eq!(platform.problem().capacity(n[1]), 0);
    }

    #[test]
    fn subtree_recovery_heals_members_links_and_clients() {
        let (p, n, c) = sample();
        let platform = apply_failures(
            &p,
            &[
                FailureEvent::SubtreeFailure(n[1]),
                FailureEvent::UplinkDown(LinkId::Client(c[0])),
                FailureEvent::Recovered(RecoveryScope::Subtree(n[1])),
            ],
        );
        assert_eq!(platform.num_dead_servers(), 0);
        assert_eq!(platform.num_dead_links(), 0);
        assert!(platform.path_is_alive(c[0], n[0]));
        assert!(platform.path_is_alive(c[1], n[1]));
    }

    #[test]
    fn recover_all_returns_to_the_pristine_instance() {
        let (p, n, c) = sample();
        let platform = apply_failures(
            &p,
            &[
                FailureEvent::SubtreeFailure(n[0]),
                FailureEvent::UplinkDown(LinkId::Client(c[2])),
                FailureEvent::Recovered(RecoveryScope::All),
            ],
        );
        assert_eq!(platform.num_dead_servers(), 0);
        assert_eq!(platform.num_dead_links(), 0);
        for &node in &n {
            assert_eq!(platform.problem().capacity(node), p.capacity(node));
        }
        for &client in &c {
            assert!(platform.path_is_alive(client, n[0]));
        }
    }

    #[test]
    fn from_parts_round_trips_an_applied_platform() {
        let (p, n, _) = sample();
        let applied = apply_failures(&p, &[FailureEvent::ServerCrash(n[2])]);
        let rebuilt = DegradedPlatform::from_parts(
            applied.problem().clone(),
            applied.dead_servers.clone(),
            applied.dead_client_links.clone(),
            applied.dead_node_links.clone(),
        );
        assert!(rebuilt.is_server_dead(n[2]));
        assert_eq!(rebuilt.problem().capacity(n[2]), 0);
        assert_eq!(rebuilt.num_dead_servers(), 1);
    }

    #[test]
    fn dropping_unserved_clients_zeroes_their_requests_only() {
        let (p, _, c) = sample();
        let platform = apply_failures(&p, &[FailureEvent::UplinkDown(LinkId::Client(c[0]))]);
        let check = platform.problem_with_unserved_dropped(&[c[0]]);
        assert_eq!(check.requests(c[0]), 0);
        assert_eq!(check.requests(c[1]), 5);
        assert_eq!(check.requests(c[2]), 2);
        assert_eq!(check.bandwidth(LinkId::Client(c[0])), Some(0));
    }
}
