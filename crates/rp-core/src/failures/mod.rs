//! Fault injection and survivor repair (the resilience subsystem).
//!
//! The paper's model assumes a healthy platform; this module asks what
//! happens to a deployed placement when the platform degrades. The
//! pipeline has three stages, each usable on its own:
//!
//! * **Failure model** — [`FailureEvent`] enumerates server crashes,
//!   severed links, partial capacity loss, and correlated subtree
//!   failures (racks, sites). Failures compose left to right with the
//!   worst effect winning.
//! * **Application** — [`apply_failures`] turns a healthy
//!   [`ProblemInstance`](crate::ProblemInstance) plus a failure trace
//!   into a [`DegradedPlatform`]: a *bona fide* instance whose crashed
//!   servers have capacity 0 and whose dead links have bandwidth 0, so
//!   the entire existing stack (heuristics, validation, the exact
//!   accounting, the LP machinery) runs on it unchanged; the dead
//!   flags ride alongside for route-aliveness queries.
//! * **Repair** — [`repair_after_failure`] adapts the pre-failure
//!   placement: strip what died, shed what no longer fits, re-home the
//!   orphans through the LP-guided repair stack's exact accounting,
//!   fall back to re-running the policy's heuristics, and — when full
//!   service is genuinely infeasible — degrade *gracefully* to a
//!   [`DegradedPlacement`] report (served fraction, unserved clients,
//!   cost) whose correctness is machine-checkable via
//!   [`DegradedPlacement::verify`]. There is no panicking path and no
//!   bare `None`: every failure has a well-defined [`RepairOutcome`].
//!
//! ```
//! use rp_core::{inject_and_repair, FailureEvent, Heuristic, Policy, ProblemInstance};
//! use rp_tree::TreeBuilder;
//!
//! let mut b = TreeBuilder::new();
//! let root = b.add_root();
//! let mid = b.add_node(root);
//! b.add_client(mid);
//! let problem = ProblemInstance::replica_cost(b.build().unwrap(), vec![3], vec![10, 5]);
//! let placement = Heuristic::Mg.run(&problem).unwrap();
//! let mid_id = problem.tree().node_ids().nth(1).unwrap();
//! let (platform, outcome) = inject_and_repair(
//!     &problem,
//!     &placement,
//!     Policy::Multiple,
//!     &[FailureEvent::ServerCrash(mid_id)],
//! );
//! assert!(outcome.verify(&platform, Policy::Multiple));
//! ```

mod apply;
mod event;
mod repair;
mod report;

pub use apply::{apply_failures, DegradedPlatform};
pub use event::{FailureEvent, RecoveryScope};
pub use repair::{
    degraded_best_effort, heuristic_fallback, inject_and_repair, prune_idle_replicas, rehome,
    repair_after_failure, surgical_repair,
};
pub use report::{DegradedPlacement, RepairOutcome};
