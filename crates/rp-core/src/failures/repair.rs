//! Survivor repair: re-homing orphaned clients after a failure.
//!
//! [`repair_after_failure`] takes a placement that was valid on the
//! healthy instance and adapts it to the surviving platform produced by
//! [`apply_failures`](crate::failures::apply_failures). The pass reuses
//! the LP-guided repair stack's exact accounting
//! ([`FeasAccounting`]) so every move is feasible by construction:
//!
//! 1. **strip** — replicas on crashed servers are removed, and every
//!    assignment whose server died or whose route crosses a dead link
//!    is torn down; the affected request volume becomes *orphaned*;
//! 2. **shed** — capacity-degraded servers drop load until they fit
//!    their new capacity (whole clients under the single-server
//!    policies, exact amounts under Multiple), orphaning the excess;
//! 3. **re-home** — orphans move onto surviving replicas closest-first,
//!    then onto the cheapest newly opened replica on their eligible
//!    path (under Closest, only positions that keep every affected
//!    client's first-replica rule intact are considered);
//! 4. **fallback** — if the surgical repair cannot restore full
//!    service, the policy's own heuristics (bandwidth-repaired) re-run
//!    from scratch on the surviving instance;
//! 5. **degrade** — when full service is infeasible or not found, a
//!    best-effort placement is grown from empty and shrunk by a
//!    validate-and-drop loop until it is provably correct, yielding a
//!    [`DegradedPlacement`] report instead of a panic or a bare `None`.
//!
//! The last step is total: it always terminates (each round drops at
//! least one client, and the empty placement over zeroed requests is
//! vacuously valid), so **every** failure has a well-defined outcome.

use rp_tree::{ClientId, NodeId};

use crate::failures::apply::{apply_failures, DegradedPlatform};
use crate::failures::event::FailureEvent;
use crate::failures::report::{DegradedPlacement, RepairOutcome};
use crate::heuristics::lp_guided::accounting::FeasAccounting;
use crate::heuristics::{BandwidthRepair, Heuristic};
use crate::policy::Policy;
use crate::problem::ProblemInstance;
use crate::solution::{Placement, Violation};

/// Applies `events` to `problem` and repairs `placement` over the
/// survivors. Convenience wrapper bundling
/// [`apply_failures`](crate::failures::apply_failures) and
/// [`repair_after_failure`].
pub fn inject_and_repair(
    problem: &ProblemInstance,
    placement: &Placement,
    policy: Policy,
    events: &[FailureEvent],
) -> (DegradedPlatform, RepairOutcome) {
    let platform = apply_failures(problem, events);
    let outcome = repair_after_failure(&platform, placement, policy);
    (platform, outcome)
}

/// Repairs `placement` (valid on the healthy instance) over the
/// surviving platform. Never panics and never returns an unusable
/// answer: the result is either a placement fully valid on
/// [`DegradedPlatform::problem`] or a verified [`DegradedPlacement`]
/// report (see the module docs for the escalation ladder).
pub fn repair_after_failure(
    platform: &DegradedPlatform,
    placement: &Placement,
    policy: Policy,
) -> RepairOutcome {
    let _span = rp_obs::span(rp_obs::SpanKind::FailureRepair);
    if let Some(repaired) = surgical_repair(platform, placement, policy) {
        rp_obs::incr(rp_obs::Counter::CoreRepairSurgical);
        return RepairOutcome::Full(repaired);
    }
    if let Some(rebuilt) = heuristic_fallback(platform, policy) {
        rp_obs::incr(rp_obs::Counter::CoreRepairHeuristicRerun);
        return RepairOutcome::Full(rebuilt);
    }
    rp_obs::incr(rp_obs::Counter::CoreRepairDegraded);
    let report = degraded_best_effort(platform, policy);
    rp_obs::add(
        rp_obs::Counter::CoreRepairDroppedClients,
        report.unserved.len() as u64,
    );
    RepairOutcome::Degraded(report)
}

/// Steps 1–3: strip, shed, re-home. Returns a fully valid placement or
/// `None` when some orphan cannot be re-homed. Public because the
/// online engine uses it as the cheapest rung of its own escalation
/// ladder (failure-only deltas leave demand untouched, so this exact
/// pass applies).
pub fn surgical_repair(
    platform: &DegradedPlatform,
    placement: &Placement,
    policy: Policy,
) -> Option<Placement> {
    let problem = platform.problem();
    let tree = problem.tree();
    let mut survivor = placement.clone();

    // Strip replicas lost to crashes.
    let dead_replicas: Vec<NodeId> = survivor
        .replicas()
        .iter()
        .copied()
        .filter(|&n| platform.is_server_dead(n))
        .collect();
    for node in dead_replicas {
        survivor.remove_replica(node);
    }

    // Tear down assignments whose server died or whose route crosses a
    // dead link; the volume becomes orphaned.
    let mut orphans: Vec<(ClientId, u64)> = Vec::new();
    for client in tree.client_ids() {
        let broken: Vec<(NodeId, u64)> = survivor
            .assignments(client)
            .iter()
            .filter(|a| !platform.path_is_alive(client, a.server))
            .map(|a| (a.server, a.amount))
            .collect();
        let mut lost = 0;
        for (server, amount) in broken {
            lost += survivor.unassign(client, server, amount);
        }
        if lost > 0 {
            orphans.push((client, lost));
        }
    }

    // Charge the survivors into the exact accounting of the *degraded*
    // instance; capacity-lost servers may now show negative residuals.
    let mut accounting = FeasAccounting::for_problem(problem);
    for client in tree.client_ids() {
        let current: Vec<(NodeId, u64)> = survivor
            .assignments(client)
            .iter()
            .map(|a| (a.server, a.amount))
            .collect();
        for (server, amount) in current {
            accounting.assign(tree, client, server, amount);
        }
    }

    // Shed overload on capacity-degraded servers. Smallest assignments
    // go first so the orphaned volume stays close to the deficit;
    // single-server policies must shed whole clients.
    for node in tree.node_ids() {
        if accounting.node_residual(node) >= 0 {
            continue;
        }
        let mut carried: Vec<(ClientId, u64)> = tree
            .client_ids()
            .flat_map(|c| {
                survivor
                    .assignments(c)
                    .iter()
                    .filter(|a| a.server == node)
                    .map(|a| (c, a.amount))
                    .collect::<Vec<_>>()
            })
            .collect();
        carried.sort_by_key(|&(c, amount)| (amount, c.index()));
        for (client, amount) in carried {
            let deficit = -accounting.node_residual(node);
            if deficit <= 0 {
                break;
            }
            let shed = if policy.is_single_server() {
                amount
            } else {
                amount.min(deficit as u64)
            };
            let removed = survivor.unassign(client, node, shed);
            accounting.unassign(tree, client, node, removed);
            if removed > 0 {
                match orphans.iter_mut().find(|(c, _)| *c == client) {
                    Some(entry) => entry.1 += removed,
                    None => orphans.push((client, removed)),
                }
            }
        }
        if accounting.node_residual(node) < 0 {
            return None;
        }
    }

    // Re-home the orphans, hardest (largest) first.
    orphans.sort_by_key(|&(c, amount)| (std::cmp::Reverse(amount), c.index()));
    let mut rehomed = 0u64;
    for (client, amount) in orphans {
        if !rehome(
            problem,
            platform,
            &mut survivor,
            &mut accounting,
            client,
            amount,
            policy,
        ) {
            return None;
        }
        rehomed += 1;
    }

    prune_idle_replicas(&mut survivor, tree.num_nodes());
    let valid = survivor.is_valid(problem, policy);
    if valid {
        rp_obs::add(rp_obs::Counter::CoreRepairRehomedClients, rehomed);
    }
    valid.then_some(survivor)
}

/// Places `amount` orphaned requests of `client` onto surviving
/// servers; returns whether the whole amount found a home. Dead servers
/// and dead links are excluded automatically — their residuals are zero
/// in the degraded accounting. `survivor` and `accounting` must agree
/// (every assignment charged) before the call; on `false` they are left
/// exactly as they were (partial moves under Multiple are rolled back).
pub fn rehome(
    problem: &ProblemInstance,
    platform: &DegradedPlatform,
    survivor: &mut Placement,
    accounting: &mut FeasAccounting,
    client: ClientId,
    amount: u64,
    policy: Policy,
) -> bool {
    let tree = problem.tree();
    if amount == 0 {
        return true;
    }
    match policy {
        Policy::Closest => {
            let Some(target) = closest_target(problem, survivor, accounting, client, amount) else {
                return false;
            };
            survivor.add_replica(target);
            accounting.assign(tree, client, target, amount);
            survivor.assign(client, target, amount);
            true
        }
        Policy::Upwards => {
            let eligible: Vec<NodeId> = problem.eligible_servers(client).collect();
            let target = eligible
                .iter()
                .copied()
                .find(|&v| {
                    survivor.has_replica(v) && accounting.max_assignable(tree, client, v) >= amount
                })
                .or_else(|| {
                    eligible
                        .iter()
                        .copied()
                        .filter(|&v| {
                            !survivor.has_replica(v)
                                && !platform.is_server_dead(v)
                                && accounting.max_assignable(tree, client, v) >= amount
                        })
                        .min_by_key(|&v| (problem.storage_cost(v), v.index()))
                });
            let Some(v) = target else {
                return false;
            };
            survivor.add_replica(v);
            accounting.assign(tree, client, v, amount);
            survivor.assign(client, v, amount);
            true
        }
        Policy::Multiple => {
            let eligible: Vec<NodeId> = problem.eligible_servers(client).collect();
            let mut moved: Vec<(NodeId, u64)> = Vec::new();
            let mut left = amount;
            // Drain open replicas closest-first (free), then open the
            // cheapest helpful nodes.
            for &v in &eligible {
                if left == 0 {
                    break;
                }
                if !survivor.has_replica(v) {
                    continue;
                }
                let take = left.min(accounting.max_assignable(tree, client, v));
                if take > 0 {
                    accounting.assign(tree, client, v, take);
                    survivor.assign(client, v, take);
                    moved.push((v, take));
                    left -= take;
                }
            }
            while left > 0 {
                let best = eligible
                    .iter()
                    .copied()
                    .filter(|&v| !survivor.has_replica(v) && !platform.is_server_dead(v))
                    .map(|v| (v, accounting.max_assignable(tree, client, v)))
                    .filter(|&(_, headroom)| headroom > 0)
                    .min_by_key(|&(v, _)| (problem.storage_cost(v), v.index()));
                let Some((v, headroom)) = best else {
                    break;
                };
                let take = left.min(headroom);
                survivor.add_replica(v);
                accounting.assign(tree, client, v, take);
                survivor.assign(client, v, take);
                moved.push((v, take));
                left -= take;
            }
            if left > 0 {
                for &(v, take) in &moved {
                    accounting.unassign(tree, client, v, take);
                    survivor.unassign(client, v, take);
                }
                return false;
            }
            true
        }
    }
}

/// The one server `client` may use under Closest: the first surviving
/// replica on its eligible path if it has headroom for the whole
/// client, else the cheapest node strictly *below* the first replica
/// whose opening does not break any other client's first-replica rule.
fn closest_target(
    problem: &ProblemInstance,
    survivor: &Placement,
    accounting: &FeasAccounting,
    client: ClientId,
    amount: u64,
) -> Option<NodeId> {
    let tree = problem.tree();
    let mut openable: Vec<NodeId> = Vec::new();
    for v in problem.eligible_servers(client) {
        if survivor.has_replica(v) {
            // The first replica on the path: Closest forbids serving
            // past it, so it either takes the whole client or the
            // client must be re-homed below it.
            if accounting.max_assignable(tree, client, v) >= amount {
                return Some(v);
            }
            break;
        }
        openable.push(v);
    }
    openable
        .into_iter()
        .filter(|&v| {
            accounting.max_assignable(tree, client, v) >= amount
                && closest_safe_to_open(tree, survivor, v)
        })
        .min_by_key(|&v| (problem.storage_cost(v), v.index()))
}

/// Whether opening a replica at `v` keeps the Closest rule intact for
/// every already-assigned client: no client inside `subtree(v)` may be
/// served by a server strictly above `v` (a new replica at `v` would
/// shadow it).
fn closest_safe_to_open(tree: &rp_tree::TreeNetwork, survivor: &Placement, v: NodeId) -> bool {
    tree.subtree_clients(v).iter().all(|&k| {
        survivor
            .assignments(k)
            .iter()
            .all(|a| a.server == v || !tree.node_is_ancestor_or_self(v, a.server))
    })
}

/// Step 4: rebuild from scratch with the policy's own heuristics
/// (bandwidth-repaired, since dead links surface as zero-bandwidth
/// limits) and keep the cheapest valid placement.
pub fn heuristic_fallback(platform: &DegradedPlatform, policy: Policy) -> Option<Placement> {
    let problem = platform.problem();
    let mut best: Option<(u64, Placement)> = None;
    for heuristic in Heuristic::BASE {
        if heuristic.policy() != policy {
            continue;
        }
        if let Some(candidate) = BandwidthRepair(heuristic).run(problem) {
            let cost = candidate.cost(problem);
            if best.as_ref().map(|(b, _)| cost < *b).unwrap_or(true) {
                best = Some((cost, candidate));
            }
        }
    }
    best.map(|(_, placement)| placement)
}

/// Step 5: grow a best-effort partial placement from empty and shrink
/// it by validate-and-drop until provably correct. Total: every
/// platform, however broken, yields a verified report.
pub fn degraded_best_effort(platform: &DegradedPlatform, policy: Policy) -> DegradedPlacement {
    let problem = platform.problem();
    let tree = problem.tree();
    let mut placement = Placement::empty(tree.num_clients());
    let mut accounting = FeasAccounting::for_problem(problem);
    let mut unserved: Vec<ClientId> = Vec::new();

    // Serve the heavy clients while the surviving capacity lasts.
    let mut clients: Vec<ClientId> = tree.client_ids().collect();
    clients.sort_by_key(|&c| (std::cmp::Reverse(problem.requests(c)), c.index()));
    for client in clients {
        let requests = problem.requests(client);
        if requests == 0 {
            continue;
        }
        if !rehome(
            problem,
            platform,
            &mut placement,
            &mut accounting,
            client,
            requests,
            policy,
        ) {
            unserved.push(client);
        }
    }
    prune_idle_replicas(&mut placement, tree.num_nodes());

    // Validate-and-drop: every round either converges or drops one more
    // client, and with everything dropped the placement is vacuously
    // valid — the loop is total.
    let mut rounds = tree.num_clients() + 2;
    loop {
        let check = platform.problem_with_unserved_dropped(&unserved);
        let Err(violations) = placement.validate(&check, policy) else {
            break;
        };
        let victim = violations
            .iter()
            .find_map(|v| violating_client(v, &placement, tree))
            .filter(|c| !unserved.contains(c));
        match victim {
            Some(client) if rounds > 0 => {
                rounds -= 1;
                let current: Vec<(NodeId, u64)> = placement
                    .assignments(client)
                    .iter()
                    .map(|a| (a.server, a.amount))
                    .collect();
                for (server, amount) in current {
                    placement.unassign(client, server, amount);
                }
                unserved.push(client);
                prune_idle_replicas(&mut placement, tree.num_nodes());
            }
            _ => {
                // Cannot attribute the violation (or ran out of rounds):
                // fall back to the vacuously valid empty report.
                placement = Placement::empty(tree.num_clients());
                unserved = tree
                    .client_ids()
                    .filter(|&c| problem.requests(c) > 0)
                    .collect();
                break;
            }
        }
    }

    unserved.sort();
    unserved.dedup();
    let served_requests: u64 = tree
        .client_ids()
        .filter(|c| !unserved.contains(c))
        .map(|c| problem.requests(c))
        .sum();
    let total_requests: u64 = tree.client_ids().map(|c| problem.requests(c)).sum();
    let cost = placement.cost(problem);
    DegradedPlacement {
        placement,
        unserved,
        served_requests,
        total_requests,
        cost,
    }
}

/// Maps a violation to a client whose removal resolves it.
fn violating_client(
    violation: &Violation,
    placement: &Placement,
    tree: &rp_tree::TreeNetwork,
) -> Option<ClientId> {
    match violation {
        Violation::RequestsNotCovered { client, .. }
        | Violation::MultipleServersUnderSingleServerPolicy { client, .. }
        | Violation::ServerWithoutReplica { client, .. }
        | Violation::ServerOffPath { client, .. }
        | Violation::NotClosestReplica { client, .. }
        | Violation::QosExceeded { client, .. } => Some(*client),
        Violation::CapacityExceeded { server, .. } => tree
            .client_ids()
            .find(|&c| placement.assignments(c).iter().any(|a| a.server == *server)),
        Violation::BandwidthExceeded { link, .. } => tree.client_ids().find(|&c| {
            placement.assignments(c).iter().any(|a| {
                tree.client_path_links(c, a.server)
                    .map(|mut links| links.any(|l| l == *link))
                    .unwrap_or(false)
            })
        }),
        Violation::WrongClientCount { .. } => None,
    }
}

/// Drops replicas that no longer serve anything (they cost money and,
/// under Closest, can shadow the real server).
pub fn prune_idle_replicas(placement: &mut Placement, num_nodes: usize) {
    let mut loads = rp_tree::NodeMap::filled(num_nodes, 0u64);
    placement.accumulate_server_loads(&mut loads);
    let idle: Vec<NodeId> = placement
        .replicas()
        .iter()
        .copied()
        .filter(|&n| loads[n] == 0)
        .collect();
    for node in idle {
        placement.remove_replica(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::{LinkId, TreeBuilder};

    /// root(W=10,s=10) -> mid(W=5,s=5) -> {c0: 4}; mid -> c1: 2;
    /// root -> c2: 3.
    fn sample() -> (ProblemInstance, Vec<NodeId>, Vec<ClientId>) {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        let c0 = b.add_client(mid);
        let c1 = b.add_client(mid);
        let c2 = b.add_client(root);
        let tree = b.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![4, 2, 3], vec![10, 5]);
        (p, vec![root, mid], vec![c0, c1, c2])
    }

    fn serve_all_at(p: &ProblemInstance, server: NodeId) -> Placement {
        let mut placement = Placement::empty(p.tree().num_clients());
        placement.add_replica(server);
        for c in p.tree().client_ids() {
            placement.assign(c, server, p.requests(c));
        }
        placement
    }

    #[test]
    fn crash_of_the_only_replica_is_repaired_onto_survivors() {
        let (p, n, _) = sample();
        // Everything at mid is invalid (c2 off-path); serve at root.
        let placement = serve_all_at(&p, n[0]);
        assert!(placement.is_valid(&p, Policy::Upwards));
        for policy in Policy::ALL {
            let (platform, outcome) =
                inject_and_repair(&p, &placement, policy, &[FailureEvent::ServerCrash(n[0])]);
            assert!(outcome.verify(&platform, policy), "{policy}");
            // Root dead: c2 (3 requests) is unservable, c0+c1 (6) fit
            // on mid only if W allows — 6 > 5, so some shortfall under
            // every policy.
            assert!(!outcome.is_full(), "{policy}");
            assert!(outcome.served_fraction() < 1.0, "{policy}");
        }
    }

    #[test]
    fn single_server_crash_with_room_elsewhere_restores_full_service() {
        let (p, n, c) = {
            // Same shape as `sample`, but mid holds its full subtree
            // (W = 6) so the starting placement is Closest-valid.
            let mut b = TreeBuilder::new();
            let root = b.add_root();
            let mid = b.add_node(root);
            let c0 = b.add_client(mid);
            let c1 = b.add_client(mid);
            let c2 = b.add_client(root);
            let tree = b.build().unwrap();
            let p = ProblemInstance::replica_cost(tree, vec![4, 2, 3], vec![10, 6]);
            let nodes: Vec<NodeId> = p.tree().node_ids().collect();
            (p, nodes, vec![c0, c1, c2])
        };
        // Serve c0+c1 at mid, c2 at root.
        let mut placement = Placement::empty(3);
        placement.add_replica(n[0]);
        placement.add_replica(n[1]);
        placement.assign(c[0], n[1], 4);
        placement.assign(c[1], n[1], 2);
        placement.assign(c[2], n[0], 3);
        assert!(placement.is_valid(&p, Policy::Closest));
        // Mid crashes: its 6 requests re-home to the root (3+6 ≤ 10).
        for policy in Policy::ALL {
            let (platform, outcome) =
                inject_and_repair(&p, &placement, policy, &[FailureEvent::ServerCrash(n[1])]);
            assert!(outcome.is_full(), "{policy}");
            assert!(outcome.verify(&platform, policy), "{policy}");
            assert!(outcome.placement().has_replica(n[0]), "{policy}");
        }
    }

    #[test]
    fn capacity_loss_sheds_and_rehomes_the_excess() {
        let (p, n, c) = sample();
        let mut placement = Placement::empty(3);
        placement.add_replica(n[0]);
        placement.add_replica(n[1]);
        placement.assign(c[0], n[1], 4);
        placement.assign(c[1], n[1], 2);
        placement.assign(c[2], n[0], 3);
        // Mid degrades to capacity 3: 3 of its 6 requests must move up.
        let events = [FailureEvent::CapacityLoss {
            node: n[1],
            remaining: 3,
        }];
        for policy in Policy::ALL {
            let (platform, outcome) = inject_and_repair(&p, &placement, policy, &events);
            assert!(outcome.verify(&platform, policy), "{policy}");
            assert!(outcome.is_full(), "{policy}");
        }
    }

    #[test]
    fn dead_client_uplink_degrades_to_a_correct_partial_report() {
        let (p, _, c) = sample();
        let placement = serve_all_at(&p, p.tree().root());
        let events = [FailureEvent::UplinkDown(LinkId::Client(c[0]))];
        for policy in Policy::ALL {
            let (platform, outcome) = inject_and_repair(&p, &placement, policy, &events);
            assert!(outcome.verify(&platform, policy), "{policy}");
            match outcome {
                RepairOutcome::Degraded(report) => {
                    assert_eq!(report.unserved, vec![c[0]]);
                    assert_eq!(report.served_requests, 5);
                    assert_eq!(report.total_requests, 9);
                }
                RepairOutcome::Full(_) => panic!("{policy}: c0 is unreachable"),
            }
        }
    }

    #[test]
    fn subtree_failure_cuts_off_the_subtree_but_serves_the_rest() {
        let (p, n, c) = sample();
        let placement = serve_all_at(&p, p.tree().root());
        let events = [FailureEvent::SubtreeFailure(n[1])];
        for policy in Policy::ALL {
            let (platform, outcome) = inject_and_repair(&p, &placement, policy, &events);
            assert!(outcome.verify(&platform, policy), "{policy}");
            match outcome {
                RepairOutcome::Degraded(report) => {
                    assert_eq!(report.unserved, vec![c[0], c[1]]);
                    assert_eq!(report.served_requests, 3);
                }
                RepairOutcome::Full(_) => panic!("{policy}: the subtree is gone"),
            }
        }
    }

    #[test]
    fn closest_repair_respects_the_first_replica_rule() {
        // root -> a -> {c0: 2}; a -> b -> {c1: 2}. Replicas at root and
        // b; root crashes. c0 must re-home below: opening at `a` would
        // be cheapest, but b already shields c1 — opening `a` is safe
        // for c1 (b is *below* a, so b keeps shielding); the repaired
        // placement must satisfy Closest exactly.
        let mut bld = TreeBuilder::new();
        let root = bld.add_root();
        let a = bld.add_node(root);
        let c0 = bld.add_client(a);
        let b = bld.add_node(a);
        let c1 = bld.add_client(b);
        let tree = bld.build().unwrap();
        let p = ProblemInstance::replica_cost(tree, vec![2, 2], vec![10, 4, 4]);
        let nodes: Vec<NodeId> = p.tree().node_ids().collect();
        let (root_id, a_id, b_id) = (nodes[0], nodes[1], nodes[2]);
        let mut placement = Placement::empty(2);
        placement.add_replica(root_id);
        placement.add_replica(b_id);
        placement.assign(c0, root_id, 2);
        placement.assign(c1, b_id, 2);
        assert!(placement.is_valid(&p, Policy::Closest));
        let (platform, outcome) = inject_and_repair(
            &p,
            &placement,
            Policy::Closest,
            &[FailureEvent::ServerCrash(root_id)],
        );
        assert!(outcome.is_full());
        assert!(outcome.verify(&platform, Policy::Closest));
        assert!(outcome.placement().has_replica(a_id));
        let _ = c1;
    }

    #[test]
    fn no_failures_is_a_no_op_repair() {
        let (p, n, _) = sample();
        let placement = serve_all_at(&p, n[0]);
        for policy in [Policy::Upwards, Policy::Multiple] {
            let (platform, outcome) = inject_and_repair(&p, &placement, policy, &[]);
            assert!(outcome.is_full(), "{policy}");
            assert!(outcome.verify(&platform, policy), "{policy}");
            assert_eq!(outcome.placement().cost(platform.problem()), 10);
        }
    }

    #[test]
    fn total_platform_loss_yields_the_empty_report() {
        let (p, n, _) = sample();
        let placement = serve_all_at(&p, n[0]);
        let events = [FailureEvent::SubtreeFailure(n[0])];
        for policy in Policy::ALL {
            let (platform, outcome) = inject_and_repair(&p, &placement, policy, &events);
            assert!(outcome.verify(&platform, policy), "{policy}");
            match outcome {
                RepairOutcome::Degraded(report) => {
                    assert_eq!(report.served_requests, 0);
                    assert_eq!(report.served_fraction(), 0.0);
                    assert_eq!(report.unserved.len(), 3);
                    assert_eq!(report.placement.num_replicas(), 0);
                }
                RepairOutcome::Full(_) => panic!("{policy}: nothing survives"),
            }
        }
    }
}
