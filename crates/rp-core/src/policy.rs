//! The three server access policies compared in the paper (Section 3).

use std::fmt;

/// How a client's requests may be mapped onto replica servers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Policy {
    /// *Closest* — the classical policy from the literature: every client
    /// is served entirely by the **first** replica encountered on its
    /// path to the root. A replica therefore "shields" its subtree:
    /// requests from below may never traverse it to be served higher up.
    Closest,
    /// *Upwards* — the general single-server policy introduced by the
    /// paper: every client is served entirely by a single replica, which
    /// may be **any** node on its path to the root.
    Upwards,
    /// *Multiple* — the multiple-server policy introduced by the paper:
    /// a client's requests may be **split** across several replicas on
    /// its path to the root.
    Multiple,
}

impl Policy {
    /// All three policies, from most to least constrained.
    pub const ALL: [Policy; 3] = [Policy::Closest, Policy::Upwards, Policy::Multiple];

    /// Short name used in tables and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Closest => "Closest",
            Policy::Upwards => "Upwards",
            Policy::Multiple => "Multiple",
        }
    }

    /// Whether each client must be served by exactly one replica.
    pub fn is_single_server(self) -> bool {
        matches!(self, Policy::Closest | Policy::Upwards)
    }

    /// Returns `true` when any valid solution under `self` is also valid
    /// under `other` (the policy hierarchy of Section 3: Closest ⊆
    /// Upwards ⊆ Multiple). Consequently the optimal cost under `other`
    /// is at most the optimal cost under `self`.
    pub fn is_refined_by(self, other: Policy) -> bool {
        self.rank() <= other.rank()
    }

    fn rank(self) -> u8 {
        match self {
            Policy::Closest => 0,
            Policy::Upwards => 1,
            Policy::Multiple => 2,
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display_agree() {
        for p in Policy::ALL {
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(Policy::Closest.name(), "Closest");
        assert_eq!(Policy::Upwards.name(), "Upwards");
        assert_eq!(Policy::Multiple.name(), "Multiple");
    }

    #[test]
    fn single_server_classification() {
        assert!(Policy::Closest.is_single_server());
        assert!(Policy::Upwards.is_single_server());
        assert!(!Policy::Multiple.is_single_server());
    }

    #[test]
    fn refinement_hierarchy_matches_the_paper() {
        // A Closest solution is valid for Upwards and Multiple; an Upwards
        // solution is valid for Multiple; not the other way round.
        assert!(Policy::Closest.is_refined_by(Policy::Upwards));
        assert!(Policy::Closest.is_refined_by(Policy::Multiple));
        assert!(Policy::Upwards.is_refined_by(Policy::Multiple));
        assert!(Policy::Closest.is_refined_by(Policy::Closest));
        assert!(!Policy::Multiple.is_refined_by(Policy::Upwards));
        assert!(!Policy::Upwards.is_refined_by(Policy::Closest));
    }

    #[test]
    fn all_lists_each_policy_once() {
        let set: std::collections::HashSet<_> = Policy::ALL.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
