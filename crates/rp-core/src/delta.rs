//! Typed instance deltas — the vocabulary of the online engine.
//!
//! A long-lived placement service does not see whole new instances; it
//! sees a *stream of changes* against the instance it already solved:
//! clients arriving and leaving, demand drifting, capacity being
//! re-provisioned, and the failure/recovery events of
//! [`failures`](crate::failures). [`InstanceDelta`] is that vocabulary.
//!
//! The tree topology itself is immutable (every precomputed traversal
//! in `rp-tree` depends on it), so client arrival and departure are
//! modelled as request transitions on existing client slots: a
//! workload generator lays out the maximum client population up front
//! and an absent client simply has zero requests. This mirrors the
//! paper's model, where a client with `r_i = 0` constrains nothing.

use std::fmt;

use rp_tree::{ClientId, NodeId};

use crate::failures::FailureEvent;

/// One change to a live [`ProblemInstance`](crate::ProblemInstance),
/// applied by the online engine against its current state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstanceDelta {
    /// A client joins (or re-joins) with `requests > 0`. Applying it to
    /// an already-present client overwrites its demand, so traces may
    /// be replayed from any checkpoint without pre-state bookkeeping.
    ClientArrived {
        /// The client slot that becomes active.
        client: ClientId,
        /// Its request volume.
        requests: u64,
    },
    /// A client leaves: its requests drop to zero and its assignments
    /// become free capacity.
    ClientDeparted {
        /// The client slot that goes quiet.
        client: ClientId,
    },
    /// A present client's demand drifts to a new absolute volume.
    DemandChanged {
        /// The client whose demand moved.
        client: ClientId,
        /// The new request volume (may be higher or lower).
        requests: u64,
    },
    /// The server at `node` is re-provisioned to a new *healthy*
    /// capacity. Independent of the failure axis: a crashed server that
    /// is re-provisioned stays dead until it recovers, and then comes
    /// back at the new capacity.
    CapacityChanged {
        /// The re-provisioned server.
        node: NodeId,
        /// Its new healthy capacity.
        capacity: u64,
    },
    /// A platform failure or recovery (see [`FailureEvent`]).
    Failure(FailureEvent),
}

impl InstanceDelta {
    /// Short machine-readable tag used in traces and JSON output.
    pub fn kind_name(self) -> &'static str {
        match self {
            InstanceDelta::ClientArrived { .. } => "client-arrived",
            InstanceDelta::ClientDeparted { .. } => "client-departed",
            InstanceDelta::DemandChanged { .. } => "demand-changed",
            InstanceDelta::CapacityChanged { .. } => "capacity-changed",
            InstanceDelta::Failure(event) => event.kind_name(),
        }
    }
}

impl fmt::Display for InstanceDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceDelta::ClientArrived { client, requests } => {
                write!(f, "client {client} arrived with {requests} requests")
            }
            InstanceDelta::ClientDeparted { client } => {
                write!(f, "client {client} departed")
            }
            InstanceDelta::DemandChanged { client, requests } => {
                write!(f, "client {client} demand changed to {requests}")
            }
            InstanceDelta::CapacityChanged { node, capacity } => {
                write!(f, "server {node} re-provisioned to capacity {capacity}")
            }
            InstanceDelta::Failure(event) => event.fmt(f),
        }
    }
}

impl From<FailureEvent> for InstanceDelta {
    fn from(event: FailureEvent) -> Self {
        InstanceDelta::Failure(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::RecoveryScope;

    #[test]
    fn kind_names_and_display_are_informative() {
        let client = ClientId::from_index(2);
        let node = NodeId::from_index(1);
        let deltas = [
            InstanceDelta::ClientArrived {
                client,
                requests: 5,
            },
            InstanceDelta::ClientDeparted { client },
            InstanceDelta::DemandChanged {
                client,
                requests: 9,
            },
            InstanceDelta::CapacityChanged { node, capacity: 12 },
            InstanceDelta::Failure(FailureEvent::ServerCrash(node)),
            FailureEvent::Recovered(RecoveryScope::Server(node)).into(),
        ];
        let kinds: Vec<_> = deltas.iter().map(|d| d.kind_name()).collect();
        assert_eq!(
            kinds,
            [
                "client-arrived",
                "client-departed",
                "demand-changed",
                "capacity-changed",
                "server-crash",
                "recovered"
            ]
        );
        for delta in deltas {
            assert!(!delta.to_string().is_empty());
        }
        assert!(deltas[0].to_string().contains("5 requests"));
    }
}
