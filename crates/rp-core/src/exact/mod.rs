//! Exact solvers: the paper's polynomial algorithm for
//! Multiple/homogeneous instances and an exhaustive oracle for small
//! instances of every policy.

pub mod exhaustive;
pub mod multiple_homogeneous;

pub use exhaustive::{optimal_cost, solve_exhaustive, solve_exhaustive_with, ExhaustiveOptions};
pub use multiple_homogeneous::{solve_multiple_homogeneous, MultipleHomogeneousOutcome};
