//! The paper's optimal polynomial algorithm for **Replica Counting with
//! the Multiple policy on homogeneous nodes** (Section 4.1, Theorem 1).
//!
//! The algorithm works in three passes over the tree:
//!
//! * **Pass 1** computes, bottom-up, the flow of unserved requests
//!   climbing each link; whenever the flow reaching a node is at least
//!   `W`, a replica is placed there (it will be fully *saturated*) and
//!   `W` requests are removed from the flow.
//! * **Pass 2** (only needed when the root still sees a positive flow
//!   that it cannot absorb) repeatedly places one extra replica on the
//!   free node with maximal *useful flow* — the largest number of
//!   currently-unserved requests it could take without starving the
//!   saturated nodes above it — until the flow at the root vanishes or
//!   no progress is possible (in which case the instance is infeasible).
//! * **Pass 3** turns the replica set into an explicit request
//!   assignment with a single greedy bottom-up sweep.
//!
//! The proof of optimality (Section 4.1.3) shows that any optimal
//! solution can be rewritten into this canonical form.

use rp_tree::{ClientId, NodeId};

use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Outcome of the optimal Multiple/homogeneous algorithm.
#[derive(Clone, Debug)]
pub enum MultipleHomogeneousOutcome {
    /// A placement serving every request with the minimum number of
    /// replicas.
    Optimal(Placement),
    /// The instance has no solution (even placing a replica on every
    /// node cannot absorb all requests).
    Infeasible,
}

impl MultipleHomogeneousOutcome {
    /// The placement, if the instance was feasible.
    pub fn into_placement(self) -> Option<Placement> {
        match self {
            MultipleHomogeneousOutcome::Optimal(p) => Some(p),
            MultipleHomogeneousOutcome::Infeasible => None,
        }
    }
}

/// Runs the optimal algorithm. Panics when the instance is not
/// homogeneous (the algorithm's correctness relies on a uniform `W`);
/// QoS and bandwidth constraints are not supported (the paper studies
/// this algorithm for the plain Replica Counting problem).
pub fn solve_multiple_homogeneous(problem: &ProblemInstance) -> MultipleHomogeneousOutcome {
    let capacity = problem
        .homogeneous_capacity()
        .expect("the Multiple/homogeneous algorithm requires identical server capacities");
    assert!(
        !problem.has_qos() && !problem.has_bandwidth_limits(),
        "the Multiple/homogeneous algorithm targets the plain Replica Counting problem"
    );
    let tree = problem.tree();
    if capacity == 0 {
        return if problem.total_requests() == 0 {
            MultipleHomogeneousOutcome::Optimal(Placement::empty(tree.num_clients()))
        } else {
            MultipleHomogeneousOutcome::Infeasible
        };
    }

    let postorder = tree.postorder_nodes();
    let root = tree.root();

    // ---- Pass 1: saturate nodes bottom-up. ----
    let mut flow: Vec<u64> = vec![0; tree.num_nodes()];
    let mut replicas: Vec<bool> = vec![false; tree.num_nodes()];
    for &node in postorder {
        let mut f: u64 = tree
            .child_clients(node)
            .iter()
            .map(|&c| problem.requests(c))
            .sum();
        f += tree
            .child_nodes(node)
            .iter()
            .map(|&child| flow[child.index()])
            .sum::<u64>();
        if f >= capacity {
            f -= capacity;
            replicas[node.index()] = true;
        }
        flow[node.index()] = f;
    }

    // If the root's residual flow vanished, or fits in a (still free)
    // root replica, we are done with pass 1.
    let root_flow = flow[root.index()];
    if root_flow > 0 {
        if root_flow <= capacity && !replicas[root.index()] {
            replicas[root.index()] = true;
            flow[root.index()] = 0;
        } else {
            // ---- Pass 2: add replicas by maximal useful flow. ----
            if !pass2(problem, &mut flow, &mut replicas) {
                return MultipleHomogeneousOutcome::Infeasible;
            }
        }
    }

    // ---- Pass 3: build the explicit assignment. ----
    let replica_nodes: Vec<NodeId> = tree.node_ids().filter(|n| replicas[n.index()]).collect();
    let placement = pass3(problem, capacity, &replica_nodes);
    MultipleHomogeneousOutcome::Optimal(placement)
}

/// Pass 2 of the algorithm: repeatedly place a replica on the free node
/// with the largest useful flow, until the root flow reaches zero.
/// Returns `false` when the instance is infeasible.
fn pass2(problem: &ProblemInstance, flow: &mut [u64], replicas: &mut [bool]) -> bool {
    let tree = problem.tree();
    let root = tree.root();
    let bfs = tree.bfs_nodes();

    while flow[root.index()] != 0 {
        if replicas.iter().all(|&r| r) {
            return false;
        }
        // Useful flow: uflow(root) = flow(root); going down,
        // uflow(j) = min(flow(j), uflow(parent(j))).
        let mut uflow: Vec<u64> = vec![0; tree.num_nodes()];
        uflow[root.index()] = flow[root.index()];
        for &node in bfs.iter().skip(1) {
            let parent = tree
                .parent_of_node(node)
                .expect("non-root nodes have a parent");
            uflow[node.index()] = flow[node.index()].min(uflow[parent.index()]);
        }

        // Select the free node with maximal useful flow (first such node
        // in BFS order on ties, matching the depth-first tie-break of the
        // paper closely enough for optimality: any maximiser works).
        let mut best: Option<NodeId> = None;
        let mut best_uflow = 0u64;
        for &node in bfs {
            if !replicas[node.index()] && uflow[node.index()] > best_uflow {
                best_uflow = uflow[node.index()];
                best = Some(node);
            }
        }
        let chosen = match best {
            Some(node) if best_uflow > 0 => node,
            _ => return false,
        };
        replicas[chosen.index()] = true;
        flow[chosen.index()] -= best_uflow;
        for ancestor in tree.ancestors_of_node(chosen) {
            flow[ancestor.index()] -= best_uflow;
        }
    }
    true
}

/// Pass 3: greedy bottom-up construction of the request assignment. Each
/// replica serves pending requests from its subtree up to `capacity`,
/// splitting one client's requests when needed (this is where the
/// Multiple policy is essential).
fn pass3(problem: &ProblemInstance, capacity: u64, replica_nodes: &[NodeId]) -> Placement {
    let tree = problem.tree();
    let mut placement = Placement::empty(tree.num_clients());
    for &r in replica_nodes {
        placement.add_replica(r);
    }

    let mut remaining: Vec<u64> = tree.client_ids().map(|c| problem.requests(c)).collect();
    // Pending clients (with unassigned requests) per subtree, accumulated
    // bottom-up.
    let mut pending: Vec<Vec<ClientId>> = vec![Vec::new(); tree.num_nodes()];

    for &node in tree.postorder_nodes() {
        let mut clients: Vec<ClientId> = Vec::new();
        for &c in tree.child_clients(node) {
            if remaining[c.index()] > 0 {
                clients.push(c);
            }
        }
        for &child in tree.child_nodes(node) {
            clients.append(&mut pending[child.index()]);
        }

        if placement.has_replica(node) {
            let mut used = 0u64;
            for &client in &clients {
                if used == capacity {
                    break;
                }
                let take = remaining[client.index()].min(capacity - used);
                if take > 0 {
                    placement.assign(client, node, take);
                    remaining[client.index()] -= take;
                    used += take;
                }
            }
        }

        clients.retain(|&c| remaining[c.index()] > 0);
        pending[node.index()] = clients;
    }

    debug_assert!(
        remaining.iter().all(|&r| r == 0),
        "passes 1-2 guarantee that pass 3 can serve every request"
    );
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use rp_tree::{TreeBuilder, TreeNetwork};

    fn counting(tree: TreeNetwork, requests: Vec<u64>, capacity: u64) -> ProblemInstance {
        ProblemInstance::replica_counting(tree, requests, capacity)
    }

    /// The worked example of Figure 6: W = 10, and the algorithm places
    /// 5 saturated replicas in pass 1 plus n4 and n2 in pass 2, for a
    /// total of 7 replicas.
    fn figure6() -> (ProblemInstance, Vec<NodeId>) {
        // Topology (from Figure 6(a), request counts on the leaves):
        // n1 (root) -> n2, n3, n4
        //   n2 -> clients [2, 2], node n5
        //        n5 -> clients [9, 7]
        //   n3 -> clients [1], node n6
        //        n6 -> clients [12, 1]
        //   n4 -> node n7, node n8, node n9
        //        n7 -> clients [2]
        //        n8 -> clients [7, 4]  (the "11" branch of the figure)
        //        n9 -> node n10, node n11
        //             n10 -> clients [1, 1]   (leaf pair)
        //             n11 -> clients [6]
        // Requests are chosen so that pass 1 saturates several nodes and
        // pass 2 must add exactly two more, mirroring the figure's story.
        let mut b = TreeBuilder::new();
        let n1 = b.add_root();
        let n2 = b.add_node(n1);
        let n3 = b.add_node(n1);
        let n4 = b.add_node(n1);
        let n5 = b.add_node(n2);
        let n6 = b.add_node(n3);
        let n7 = b.add_node(n4);
        let n8 = b.add_node(n4);
        let n9 = b.add_node(n4);
        let n10 = b.add_node(n9);
        let n11 = b.add_node(n9);
        // clients in index order:
        let mut reqs = Vec::new();
        for (parent, r) in [
            (n2, 2),
            (n2, 2),
            (n5, 9),
            (n5, 7),
            (n3, 1),
            (n6, 12),
            (n6, 1),
            (n7, 2),
            (n8, 7),
            (n8, 4),
            (n10, 1),
            (n10, 1),
            (n11, 6),
        ] {
            b.add_client(parent);
            reqs.push(r);
        }
        let tree = b.build().unwrap();
        let p = counting(tree, reqs, 10);
        (p, vec![n1, n2, n3, n4, n5, n6, n7, n8, n9, n10, n11])
    }

    #[test]
    fn figure_1a_single_request() {
        let mut b = TreeBuilder::new();
        let s2 = b.add_root();
        let s1 = b.add_node(s2);
        b.add_client(s1);
        let p = counting(b.build().unwrap(), vec![1], 1);
        let placement = solve_multiple_homogeneous(&p).into_placement().unwrap();
        assert_eq!(placement.num_replicas(), 1);
        assert!(placement.is_valid(&p, Policy::Multiple));
    }

    #[test]
    fn figure_1c_needs_two_servers() {
        // One client with 2 requests, two nodes with W = 1: only the
        // Multiple policy can solve it, with replicas on both nodes.
        let mut b = TreeBuilder::new();
        let s2 = b.add_root();
        let s1 = b.add_node(s2);
        b.add_client(s1);
        let p = counting(b.build().unwrap(), vec![2], 1);
        let placement = solve_multiple_homogeneous(&p).into_placement().unwrap();
        assert_eq!(placement.num_replicas(), 2);
        assert!(placement.is_valid(&p, Policy::Multiple));
    }

    #[test]
    fn infeasible_when_total_capacity_is_short() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let p = counting(b.build().unwrap(), vec![5], 2);
        assert!(matches!(
            solve_multiple_homogeneous(&p),
            MultipleHomogeneousOutcome::Infeasible
        ));
    }

    #[test]
    fn multiple_beats_upwards_on_figure_3() {
        // Figure 3 with n = 3: root + nodes s1..s3, each with children
        // v_j (client with n requests) and w_j (client with n+1
        // requests), plus a client with n requests at the root; W = 2n.
        // The Multiple optimum uses n + 1 = 4 replicas.
        let n: u64 = 3;
        let w = 2 * n;
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mut reqs = Vec::new();
        b.add_client(root);
        reqs.push(n);
        for _ in 0..n {
            let s = b.add_node(root);
            let v = b.add_node(s);
            let wnode = b.add_node(s);
            b.add_client(v);
            reqs.push(n);
            b.add_client(wnode);
            reqs.push(n + 1);
        }
        let p = counting(b.build().unwrap(), reqs, w);
        let placement = solve_multiple_homogeneous(&p).into_placement().unwrap();
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert_eq!(placement.num_replicas(), (n + 1) as usize);
    }

    #[test]
    fn figure_5_costs_n_plus_one_replicas() {
        // Root with a client of W requests and n children nodes, each
        // with a client of W / n requests. The optimum is n + 1 replicas
        // even though the trivial lower bound is 2 (Section 3.4).
        let n = 4usize;
        let w: u64 = 20;
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mut reqs = vec![];
        b.add_client(root);
        reqs.push(w);
        for _ in 0..n {
            let s = b.add_node(root);
            b.add_client(s);
            reqs.push(w / n as u64);
        }
        let p = counting(b.build().unwrap(), reqs, w);
        let placement = solve_multiple_homogeneous(&p).into_placement().unwrap();
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert_eq!(placement.num_replicas(), n + 1);
    }

    #[test]
    fn worked_example_of_figure_6() {
        let (p, nodes) = figure6();
        // Total requests = 55, W = 10, so at least 6 replicas are needed;
        // the structure forces 7 (see the figure's narrative).
        let placement = solve_multiple_homogeneous(&p).into_placement().unwrap();
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert_eq!(p.total_requests(), 55);
        assert!(placement.num_replicas() >= 6);
        assert!(placement.num_replicas() <= 7);
        // Every replica load stays within W.
        for (_, &load) in placement.server_loads(p.tree().num_nodes()).iter() {
            assert!(load <= 10);
        }
        let _ = nodes;
    }

    #[test]
    fn zero_requests_need_no_replica() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_clients(root, 3);
        let p = counting(b.build().unwrap(), vec![0, 0, 0], 5);
        let placement = solve_multiple_homogeneous(&p).into_placement().unwrap();
        assert_eq!(placement.num_replicas(), 0);
        assert!(placement.is_valid(&p, Policy::Multiple));
    }

    #[test]
    fn zero_capacity_with_requests_is_infeasible() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        let p = counting(b.build().unwrap(), vec![1], 0);
        assert!(matches!(
            solve_multiple_homogeneous(&p),
            MultipleHomogeneousOutcome::Infeasible
        ));
    }

    #[test]
    #[should_panic(expected = "identical server capacities")]
    fn heterogeneous_instances_are_rejected() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mid = b.add_node(root);
        b.add_client(mid);
        let p = ProblemInstance::replica_cost(b.build().unwrap(), vec![1], vec![1, 2]);
        let _ = solve_multiple_homogeneous(&p);
    }

    #[test]
    fn two_level_tree_needs_three_replicas() {
        // Five mid nodes each with a 3-request client, W = 10: 15
        // requests in total. Any solution needs total capacity >= 15, and
        // each mid node only sees 3 requests, so the optimum is the root
        // plus two mid nodes = 3 replicas (the trivial bound of 2 is not
        // achievable, another instance of the Figure 5 phenomenon).
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mut reqs = vec![];
        for _ in 0..5 {
            let mid = b.add_node(root);
            b.add_client(mid);
        }
        reqs.extend(std::iter::repeat_n(3, 5));
        let p = counting(b.build().unwrap(), reqs, 10);
        let placement = solve_multiple_homogeneous(&p).into_placement().unwrap();
        assert!(placement.is_valid(&p, Policy::Multiple));
        assert_eq!(placement.num_replicas(), 3);
    }
}
