//! Exhaustive search over replica sets — an exact (exponential) oracle
//! for small instances.
//!
//! The search enumerates every subset of internal nodes in order of
//! non-decreasing storage cost and returns the first subset for which a
//! valid request assignment exists under the requested policy. It is
//! used by the test suite to certify the optimal Multiple/homogeneous
//! algorithm, the ILP formulations and the heuristics on instances small
//! enough to enumerate (the NP-completeness results of Section 4 rule
//! out anything better in general).

use rp_tree::NodeId;

use crate::assignment::{
    closest_assignment, greedy_multiple_assignment, upwards_assignment_backtracking,
    UpwardsSearchOptions,
};
use crate::policy::Policy;
use crate::problem::ProblemInstance;
use crate::solution::Placement;

/// Options for the exhaustive search.
#[derive(Clone, Copy, Debug)]
pub struct ExhaustiveOptions {
    /// Maximum number of internal nodes the search will accept
    /// (2^n subsets are enumerated).
    pub max_nodes: usize,
    /// Step limit handed to the Upwards backtracking feasibility check.
    pub upwards: UpwardsSearchOptions,
}

impl Default for ExhaustiveOptions {
    fn default() -> Self {
        ExhaustiveOptions {
            max_nodes: 22,
            upwards: UpwardsSearchOptions::default(),
        }
    }
}

/// Finds a minimum-cost placement under `policy` by exhaustive
/// enumeration, or `None` when the instance is infeasible.
///
/// Panics when the tree has more internal nodes than
/// [`ExhaustiveOptions::max_nodes`].
pub fn solve_exhaustive(problem: &ProblemInstance, policy: Policy) -> Option<Placement> {
    solve_exhaustive_with(problem, policy, &ExhaustiveOptions::default())
}

/// [`solve_exhaustive`] with explicit options.
pub fn solve_exhaustive_with(
    problem: &ProblemInstance,
    policy: Policy,
    options: &ExhaustiveOptions,
) -> Option<Placement> {
    let tree = problem.tree();
    let n = tree.num_nodes();
    assert!(
        n <= options.max_nodes,
        "exhaustive search limited to {} internal nodes, tree has {n}",
        options.max_nodes
    );

    let nodes: Vec<NodeId> = tree.node_ids().collect();
    let costs: Vec<u64> = nodes.iter().map(|&n| problem.storage_cost(n)).collect();

    // Enumerate subsets ordered by total cost (then by replica count for
    // determinism on cost ties).
    let mut subsets: Vec<(u64, u32, u64)> = (0u64..(1u64 << n))
        .map(|mask| {
            let cost: u64 = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| costs[i])
                .sum();
            (cost, mask.count_ones(), mask)
        })
        .collect();
    subsets.sort_unstable();

    for (_, _, mask) in subsets {
        let replicas: Vec<NodeId> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| nodes[i])
            .collect();
        let placement = feasible_assignment(problem, policy, &replicas, options);
        if let Some(placement) = placement {
            return Some(placement);
        }
    }
    None
}

/// The minimum cost under `policy`, if the instance is feasible.
pub fn optimal_cost(problem: &ProblemInstance, policy: Policy) -> Option<u64> {
    solve_exhaustive(problem, policy).map(|p| p.cost(problem))
}

fn feasible_assignment(
    problem: &ProblemInstance,
    policy: Policy,
    replicas: &[NodeId],
    options: &ExhaustiveOptions,
) -> Option<Placement> {
    match policy {
        Policy::Closest => closest_assignment(problem, replicas),
        Policy::Upwards => upwards_assignment_backtracking(problem, replicas, &options.upwards),
        Policy::Multiple => greedy_multiple_assignment(problem, replicas),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::multiple_homogeneous::solve_multiple_homogeneous;
    use rp_tree::TreeBuilder;

    /// Figure 2 of the paper with a small n: Upwards needs 3 replicas
    /// where Closest needs n + 2.
    fn figure2(n: u64) -> ProblemInstance {
        // s_{2n+2} is the root, with one client (1 request) and child
        // s_{2n+1}; s_{2n+1} has 2n child nodes s_1..s_2n, each with one
        // client issuing a single request. Every node has capacity W = n.
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let mut reqs = vec![];
        b.add_client(root);
        reqs.push(1);
        let hub = b.add_node(root);
        for _ in 0..2 * n {
            let s = b.add_node(hub);
            b.add_client(s);
        }
        reqs.extend(std::iter::repeat_n(1, 2 * n as usize));
        let tree = b.build().unwrap();
        ProblemInstance::replica_counting(tree, reqs, n)
    }

    #[test]
    fn policy_hierarchy_on_figure_1() {
        // Two stacked nodes with W = 1.
        let build = |clients: &[u64]| {
            let mut b = TreeBuilder::new();
            let s2 = b.add_root();
            let s1 = b.add_node(s2);
            for _ in clients {
                b.add_client(s1);
            }
            ProblemInstance::replica_counting(b.build().unwrap(), clients.to_vec(), 1)
        };
        // (a) one unit client: everyone solves it with 1 replica.
        let p = build(&[1]);
        for policy in Policy::ALL {
            assert_eq!(optimal_cost(&p, policy), Some(1), "policy {policy}");
        }
        // (b) two unit clients: Closest fails, Upwards/Multiple need 2.
        let p = build(&[1, 1]);
        assert_eq!(optimal_cost(&p, Policy::Closest), None);
        assert_eq!(optimal_cost(&p, Policy::Upwards), Some(2));
        assert_eq!(optimal_cost(&p, Policy::Multiple), Some(2));
        // (c) one client with two requests: only Multiple solves it.
        let p = build(&[2]);
        assert_eq!(optimal_cost(&p, Policy::Closest), None);
        assert_eq!(optimal_cost(&p, Policy::Upwards), None);
        assert_eq!(optimal_cost(&p, Policy::Multiple), Some(2));
    }

    #[test]
    fn upwards_beats_closest_on_figure_2() {
        let p = figure2(2); // n = 2: W = 2, 5 clients
        let closest = optimal_cost(&p, Policy::Closest);
        let upwards = optimal_cost(&p, Policy::Upwards);
        // Upwards: replicas on root, hub and one chain node... the paper
        // places them on s_2n, s_2n+1, s_2n+2; cost 3.
        assert_eq!(upwards, Some(3));
        // Closest: the paper shows n + 2 = 4 replicas are needed.
        assert_eq!(closest, Some(4));
    }

    #[test]
    fn exhaustive_matches_optimal_multiple_algorithm() {
        // Randomish small homogeneous instances: the exhaustive Multiple
        // optimum must equal the polynomial algorithm's replica count.
        let shapes: Vec<(Vec<usize>, Vec<u64>, u64)> = vec![
            // (children per node in a two-level tree, requests, W)
            (vec![2, 2], vec![3, 1, 2, 2], 4),
            (vec![3, 1], vec![1, 1, 1, 5], 5),
            (vec![1, 1, 1], vec![4, 4, 4], 6),
        ];
        for (arms, reqs, w) in shapes {
            let mut b = TreeBuilder::new();
            let root = b.add_root();
            let mut idx = 0;
            for &arm in &arms {
                let mid = b.add_node(root);
                for _ in 0..arm {
                    b.add_client(mid);
                    idx += 1;
                }
            }
            assert_eq!(idx, reqs.len());
            let p = ProblemInstance::replica_counting(b.build().unwrap(), reqs, w);
            let exhaustive = optimal_cost(&p, Policy::Multiple);
            let algorithmic = solve_multiple_homogeneous(&p)
                .into_placement()
                .map(|pl| pl.cost(&p));
            assert_eq!(exhaustive, algorithmic);
        }
    }

    #[test]
    fn costs_respect_the_policy_hierarchy() {
        // On any instance where all three are feasible:
        // cost(Multiple) <= cost(Upwards) <= cost(Closest).
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        let c = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(c);
        b.add_client(root);
        let p = ProblemInstance::replica_cost(b.build().unwrap(), vec![3, 2, 4, 1], vec![6, 5, 4]);
        let closest = optimal_cost(&p, Policy::Closest).unwrap();
        let upwards = optimal_cost(&p, Policy::Upwards).unwrap();
        let multiple = optimal_cost(&p, Policy::Multiple).unwrap();
        assert!(multiple <= upwards);
        assert!(upwards <= closest);
    }

    #[test]
    fn returned_placements_validate() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let a = b.add_node(root);
        b.add_client(a);
        b.add_client(a);
        b.add_client(root);
        let p = ProblemInstance::replica_cost(b.build().unwrap(), vec![2, 3, 1], vec![4, 5]);
        for policy in Policy::ALL {
            if let Some(placement) = solve_exhaustive(&p, policy) {
                assert!(placement.is_valid(&p, policy), "policy {policy}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exhaustive search limited")]
    fn too_many_nodes_are_rejected() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        for _ in 0..25 {
            b.add_node(root);
        }
        b.add_client(root);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![1], 1);
        let _ = solve_exhaustive(&p, Policy::Multiple);
    }

    #[test]
    fn infeasible_instances_return_none_for_all_policies() {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        b.add_client(root);
        let p = ProblemInstance::replica_counting(b.build().unwrap(), vec![10], 3);
        for policy in Policy::ALL {
            assert_eq!(optimal_cost(&p, policy), None, "policy {policy}");
        }
    }
}
