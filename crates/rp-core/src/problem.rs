//! Problem instances: a distribution tree decorated with the request,
//! capacity, cost, QoS and bandwidth parameters of Section 2.
//!
//! * every client `i` issues `r_i` requests per time unit and may carry a
//!   QoS bound `q_i` expressed as a maximum number of hops to its
//!   server(s) (the paper's *QoS = distance* simplification);
//! * every internal node `j` has a processing capacity `W_j` (requests
//!   per time unit) and a storage cost `s_j` (the paper's experiments use
//!   `s_j = W_j`, and `s_j = 1` for Replica Counting);
//! * every link may carry at most `BW_l` requests per time unit
//!   (`None` = unbounded, the default).

use std::sync::Arc;

use rp_tree::{ClientId, ClientMap, LinkId, NodeId, NodeMap, TreeNetwork};

/// Which flavour of the optimisation problem an instance represents.
///
/// The distinction only affects how costs are reported; the solvers and
/// heuristics always minimise `Σ s_j` over the chosen replicas.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProblemKind {
    /// Homogeneous nodes, unit storage cost: minimise the number of
    /// replicas (the paper's **Replica Counting**).
    ReplicaCounting,
    /// Heterogeneous (or homogeneous) nodes with `s_j = W_j`: minimise
    /// the total capacity bought (the paper's **Replica Cost**).
    ReplicaCost,
}

/// A fully-specified replica-placement instance.
#[derive(Clone, Debug)]
pub struct ProblemInstance {
    tree: Arc<TreeNetwork>,
    requests: ClientMap<u64>,
    capacities: NodeMap<u64>,
    storage_costs: NodeMap<u64>,
    qos: ClientMap<Option<u32>>,
    client_link_bandwidth: ClientMap<Option<u64>>,
    node_link_bandwidth: NodeMap<Option<u64>>,
    kind: ProblemKind,
}

impl ProblemInstance {
    /// Starts building an instance over `tree`.
    pub fn builder(tree: impl Into<Arc<TreeNetwork>>) -> ProblemBuilder {
        ProblemBuilder::new(tree.into())
    }

    /// Builds a homogeneous **Replica Counting** instance: every node has
    /// capacity `capacity` and unit storage cost.
    pub fn replica_counting(
        tree: impl Into<Arc<TreeNetwork>>,
        requests: Vec<u64>,
        capacity: u64,
    ) -> Self {
        let tree = tree.into();
        let n = tree.num_nodes();
        ProblemBuilder::new(tree)
            .requests(requests)
            .capacities(vec![capacity; n])
            .storage_costs(vec![1; n])
            .kind(ProblemKind::ReplicaCounting)
            .build()
    }

    /// Builds a **Replica Cost** instance with `s_j = W_j` (the paper's
    /// convention for heterogeneous platforms).
    pub fn replica_cost(
        tree: impl Into<Arc<TreeNetwork>>,
        requests: Vec<u64>,
        capacities: Vec<u64>,
    ) -> Self {
        let tree = tree.into();
        ProblemBuilder::new(tree)
            .requests(requests)
            .storage_costs(capacities.clone())
            .capacities(capacities)
            .kind(ProblemKind::ReplicaCost)
            .build()
    }

    /// The underlying tree.
    pub fn tree(&self) -> &TreeNetwork {
        &self.tree
    }

    /// Shared handle to the underlying tree.
    pub fn tree_arc(&self) -> Arc<TreeNetwork> {
        Arc::clone(&self.tree)
    }

    /// Problem flavour.
    pub fn kind(&self) -> ProblemKind {
        self.kind
    }

    /// Requests per time unit issued by `client` (`r_i`).
    pub fn requests(&self, client: ClientId) -> u64 {
        self.requests[client]
    }

    /// Processing capacity of `node` (`W_j`).
    pub fn capacity(&self, node: NodeId) -> u64 {
        self.capacities[node]
    }

    /// Storage cost of `node` (`s_j`).
    pub fn storage_cost(&self, node: NodeId) -> u64 {
        self.storage_costs[node]
    }

    /// QoS bound of `client` in hops, if any (`q_i`).
    pub fn qos(&self, client: ClientId) -> Option<u32> {
        self.qos[client]
    }

    /// Bandwidth of a link, if bounded (`BW_l`).
    pub fn bandwidth(&self, link: LinkId) -> Option<u64> {
        match link {
            LinkId::Client(c) => self.client_link_bandwidth[c],
            LinkId::Node(n) => self.node_link_bandwidth[n],
        }
    }

    /// Sum of all client requests.
    pub fn total_requests(&self) -> u64 {
        self.requests.as_slice().iter().sum()
    }

    /// Sum of all node capacities.
    pub fn total_capacity(&self) -> u64 {
        self.capacities.as_slice().iter().sum()
    }

    /// Load factor `λ = Σ r_i / Σ W_j` used to parameterise the paper's
    /// experiments (Section 7.2).
    pub fn load_factor(&self) -> f64 {
        let capacity = self.total_capacity();
        if capacity == 0 {
            return f64::INFINITY;
        }
        self.total_requests() as f64 / capacity as f64
    }

    /// `true` when every node has the same capacity and the same cost.
    pub fn is_homogeneous(&self) -> bool {
        let caps = self.capacities.as_slice();
        let costs = self.storage_costs.as_slice();
        caps.windows(2).all(|w| w[0] == w[1]) && costs.windows(2).all(|w| w[0] == w[1])
    }

    /// `true` when at least one client carries a QoS bound.
    pub fn has_qos(&self) -> bool {
        self.qos.as_slice().iter().any(|q| q.is_some())
    }

    /// `true` when at least one link carries a bandwidth bound.
    pub fn has_bandwidth_limits(&self) -> bool {
        self.client_link_bandwidth
            .as_slice()
            .iter()
            .any(|b| b.is_some())
            || self
                .node_link_bandwidth
                .as_slice()
                .iter()
                .any(|b| b.is_some())
    }

    /// Total number of requests issued in `subtree(node)` — the paper's
    /// `tflow`/initial `inreq` quantity.
    pub fn subtree_requests(&self, node: NodeId) -> u64 {
        self.tree
            .subtree_clients(node)
            .iter()
            .map(|&c| self.requests(c))
            .sum()
    }

    /// Candidate servers for `client` under *any* policy: the nodes on
    /// its path to the root, filtered by the client's QoS bound when one
    /// is present. Lazy and allocation-free; collect it if a `Vec` is
    /// genuinely needed.
    pub fn eligible_servers(&self, client: ClientId) -> impl Iterator<Item = NodeId> + '_ {
        let limit = match self.qos(client) {
            None => usize::MAX,
            Some(q) => q as usize,
        };
        self.tree.ancestors_of_client(client).take(limit)
    }

    /// The homogeneous capacity `W`, if the instance is homogeneous.
    pub fn homogeneous_capacity(&self) -> Option<u64> {
        let caps = self.capacities.as_slice();
        let first = *caps.first()?;
        caps.iter().all(|&w| w == first).then_some(first)
    }
}

/// Builder for [`ProblemInstance`].
#[derive(Clone, Debug)]
pub struct ProblemBuilder {
    tree: Arc<TreeNetwork>,
    requests: Option<Vec<u64>>,
    capacities: Option<Vec<u64>>,
    storage_costs: Option<Vec<u64>>,
    qos: Option<Vec<Option<u32>>>,
    client_link_bandwidth: Option<Vec<Option<u64>>>,
    node_link_bandwidth: Option<Vec<Option<u64>>>,
    kind: ProblemKind,
}

impl ProblemBuilder {
    fn new(tree: Arc<TreeNetwork>) -> Self {
        ProblemBuilder {
            tree,
            requests: None,
            capacities: None,
            storage_costs: None,
            qos: None,
            client_link_bandwidth: None,
            node_link_bandwidth: None,
            kind: ProblemKind::ReplicaCost,
        }
    }

    /// Sets `r_i` for every client, in client-index order.
    pub fn requests(mut self, requests: Vec<u64>) -> Self {
        assert_eq!(
            requests.len(),
            self.tree.num_clients(),
            "one request count per client is required"
        );
        self.requests = Some(requests);
        self
    }

    /// Sets `W_j` for every node, in node-index order.
    pub fn capacities(mut self, capacities: Vec<u64>) -> Self {
        assert_eq!(
            capacities.len(),
            self.tree.num_nodes(),
            "one capacity per internal node is required"
        );
        self.capacities = Some(capacities);
        self
    }

    /// Sets `s_j` for every node, in node-index order. Defaults to the
    /// capacities (the paper's `s_j = W_j` convention).
    pub fn storage_costs(mut self, costs: Vec<u64>) -> Self {
        assert_eq!(
            costs.len(),
            self.tree.num_nodes(),
            "one storage cost per internal node is required"
        );
        self.storage_costs = Some(costs);
        self
    }

    /// Sets the per-client QoS bounds (hops), in client-index order.
    pub fn qos(mut self, qos: Vec<Option<u32>>) -> Self {
        assert_eq!(
            qos.len(),
            self.tree.num_clients(),
            "one QoS entry per client is required"
        );
        self.qos = Some(qos);
        self
    }

    /// Sets the same QoS bound (hops) on every client.
    pub fn uniform_qos(self, hops: u32) -> Self {
        let n = self.tree.num_clients();
        self.qos(vec![Some(hops); n])
    }

    /// Sets the bandwidth of the link above every client, in client-index
    /// order.
    pub fn client_link_bandwidths(mut self, bandwidths: Vec<Option<u64>>) -> Self {
        assert_eq!(bandwidths.len(), self.tree.num_clients());
        self.client_link_bandwidth = Some(bandwidths);
        self
    }

    /// Sets the bandwidth of the link above every node, in node-index
    /// order (the root's entry is ignored: it has no upwards link).
    pub fn node_link_bandwidths(mut self, bandwidths: Vec<Option<u64>>) -> Self {
        assert_eq!(bandwidths.len(), self.tree.num_nodes());
        self.node_link_bandwidth = Some(bandwidths);
        self
    }

    /// Sets the problem flavour used for reporting.
    pub fn kind(mut self, kind: ProblemKind) -> Self {
        self.kind = kind;
        self
    }

    /// Finalises the instance. Panics when requests or capacities are
    /// missing (they have no sensible default).
    pub fn build(self) -> ProblemInstance {
        let requests = self.requests.expect("requests must be provided");
        let capacities = self.capacities.expect("capacities must be provided");
        let storage_costs = self.storage_costs.unwrap_or_else(|| capacities.clone());
        let num_clients = self.tree.num_clients();
        let num_nodes = self.tree.num_nodes();
        ProblemInstance {
            tree: self.tree,
            requests: ClientMap::from_vec(requests),
            capacities: NodeMap::from_vec(capacities),
            storage_costs: NodeMap::from_vec(storage_costs),
            qos: ClientMap::from_vec(self.qos.unwrap_or_else(|| vec![None; num_clients])),
            client_link_bandwidth: ClientMap::from_vec(
                self.client_link_bandwidth
                    .unwrap_or_else(|| vec![None; num_clients]),
            ),
            node_link_bandwidth: NodeMap::from_vec(
                self.node_link_bandwidth
                    .unwrap_or_else(|| vec![None; num_nodes]),
            ),
            kind: self.kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_tree::TreeBuilder;

    /// root(n0) -> n1 -> {c0 (3 req), c1 (5 req)}; root -> c2 (2 req)
    fn sample_tree() -> TreeNetwork {
        let mut b = TreeBuilder::new();
        let root = b.add_root();
        let n1 = b.add_node(root);
        b.add_client(n1);
        b.add_client(n1);
        b.add_client(root);
        b.build().unwrap()
    }

    #[test]
    fn replica_counting_constructor_sets_unit_costs() {
        let p = ProblemInstance::replica_counting(sample_tree(), vec![3, 5, 2], 10);
        assert_eq!(p.kind(), ProblemKind::ReplicaCounting);
        for node in p.tree().node_ids().collect::<Vec<_>>() {
            assert_eq!(p.capacity(node), 10);
            assert_eq!(p.storage_cost(node), 1);
        }
        assert!(p.is_homogeneous());
        assert_eq!(p.homogeneous_capacity(), Some(10));
    }

    #[test]
    fn replica_cost_constructor_uses_capacity_as_cost() {
        let p = ProblemInstance::replica_cost(sample_tree(), vec![3, 5, 2], vec![10, 20]);
        assert_eq!(p.kind(), ProblemKind::ReplicaCost);
        let nodes: Vec<_> = p.tree().node_ids().collect();
        assert_eq!(p.capacity(nodes[0]), 10);
        assert_eq!(p.storage_cost(nodes[0]), 10);
        assert_eq!(p.capacity(nodes[1]), 20);
        assert_eq!(p.storage_cost(nodes[1]), 20);
        assert!(!p.is_homogeneous());
        assert_eq!(p.homogeneous_capacity(), None);
    }

    #[test]
    fn totals_and_load_factor() {
        let p = ProblemInstance::replica_cost(sample_tree(), vec![3, 5, 2], vec![10, 30]);
        assert_eq!(p.total_requests(), 10);
        assert_eq!(p.total_capacity(), 40);
        assert!((p.load_factor() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn subtree_requests_matches_manual_sum() {
        let p = ProblemInstance::replica_cost(sample_tree(), vec![3, 5, 2], vec![10, 10]);
        let nodes: Vec<_> = p.tree().node_ids().collect();
        assert_eq!(p.subtree_requests(nodes[0]), 10); // whole tree
        assert_eq!(p.subtree_requests(nodes[1]), 8); // c0 + c1
    }

    #[test]
    fn eligible_servers_respect_qos() {
        let tree = sample_tree();
        let p = ProblemInstance::builder(tree)
            .requests(vec![3, 5, 2])
            .capacities(vec![10, 10])
            .qos(vec![Some(1), None, Some(1)])
            .build();
        let clients: Vec<_> = p.tree().client_ids().collect();
        let nodes: Vec<_> = p.tree().node_ids().collect();
        // c0 with q=1 may only use its parent n1.
        assert!(p.eligible_servers(clients[0]).eq([nodes[1]]));
        // c1 without QoS may use n1 and the root.
        assert!(p.eligible_servers(clients[1]).eq([nodes[1], nodes[0]]));
        // c2 hangs off the root: q=1 still allows the root.
        assert!(p.eligible_servers(clients[2]).eq([nodes[0]]));
        assert!(p.has_qos());
    }

    #[test]
    fn bandwidth_defaults_to_unbounded() {
        let p = ProblemInstance::replica_cost(sample_tree(), vec![1, 1, 1], vec![5, 5]);
        assert!(!p.has_bandwidth_limits());
        for link in p.tree().link_ids().collect::<Vec<_>>() {
            assert_eq!(p.bandwidth(link), None);
        }
    }

    #[test]
    fn bandwidth_can_be_bounded_per_link() {
        let tree = sample_tree();
        let p = ProblemInstance::builder(tree)
            .requests(vec![3, 5, 2])
            .capacities(vec![10, 10])
            .client_link_bandwidths(vec![Some(3), Some(5), None])
            .node_link_bandwidths(vec![None, Some(8)])
            .build();
        assert!(p.has_bandwidth_limits());
        let clients: Vec<_> = p.tree().client_ids().collect();
        let nodes: Vec<_> = p.tree().node_ids().collect();
        assert_eq!(p.bandwidth(LinkId::Client(clients[0])), Some(3));
        assert_eq!(p.bandwidth(LinkId::Client(clients[2])), None);
        assert_eq!(p.bandwidth(LinkId::Node(nodes[1])), Some(8));
    }

    #[test]
    fn uniform_qos_applies_to_all_clients() {
        let p = ProblemInstance::builder(sample_tree())
            .requests(vec![1, 1, 1])
            .capacities(vec![5, 5])
            .uniform_qos(2)
            .build();
        for c in p.tree().client_ids().collect::<Vec<_>>() {
            assert_eq!(p.qos(c), Some(2));
        }
    }

    #[test]
    #[should_panic(expected = "one request count per client")]
    fn wrong_request_vector_length_panics() {
        let _ = ProblemInstance::replica_counting(sample_tree(), vec![1, 2], 10);
    }

    #[test]
    #[should_panic(expected = "requests must be provided")]
    fn missing_requests_panics() {
        let _ = ProblemInstance::builder(sample_tree())
            .capacities(vec![5, 5])
            .build();
    }

    #[test]
    fn load_factor_with_zero_capacity_is_infinite() {
        let p = ProblemInstance::replica_cost(sample_tree(), vec![1, 1, 1], vec![0, 0]);
        assert!(p.load_factor().is_infinite());
    }
}
