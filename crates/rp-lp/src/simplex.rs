//! Dense two-phase primal simplex.
//!
//! The solver works on the continuous relaxation of a [`Model`]: integer
//! markers are ignored here (branch-and-bound, in
//! [`crate::branch_bound`], layers integrality on top).
//!
//! The implementation is a textbook full-tableau simplex:
//!
//! 1. shift every variable by its lower bound so all variables are
//!    non-negative, and turn finite upper bounds into extra rows;
//! 2. normalise rows to non-negative right-hand sides and add slack,
//!    surplus and artificial columns;
//! 3. phase 1 minimises the sum of artificials to find a basic feasible
//!    solution (or prove infeasibility);
//! 4. phase 2 minimises the true objective, with Dantzig pricing and an
//!    automatic switch to Bland's rule to guarantee termination.
//!
//! This is `O(m·n)` memory and `O(m·n)` work per pivot — ample for the
//! replica-placement formulations used by the experiment harness, and
//! entirely dependency-free.
//!
//! # Buffer reuse
//!
//! The tableau is stored row-major in one flat `Vec<f64>` inside a
//! [`SimplexWorkspace`]. A workspace can be handed to
//! [`solve_lp_reusing`] across many solves (branch-and-bound does this
//! for every node), in which case the matrix and all per-phase vectors
//! keep their capacity: after the first solve of a given shape, building
//! and solving a tableau performs no heap allocation beyond the returned
//! [`Solution`]'s value vector.

use crate::error::SolveBudget;
use crate::model::{Cmp, Model, Sense};
use crate::revised::{DualPricing, Pricing, Scaling};
use crate::solution::{Solution, Status};

/// Tunable solver parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimplexOptions {
    /// Feasibility / optimality tolerance.
    pub tolerance: f64,
    /// Hard cap on pivot iterations per phase. `None` picks a bound that
    /// scales with the problem size.
    pub max_iterations: Option<usize>,
    /// Number of pricing iterations before switching to Bland's rule
    /// (anti-cycling).
    pub bland_after: usize,
    /// Primal pricing rule of the **revised** engine (the dense tableau
    /// keeps its built-in Dantzig/Bland pricing).
    pub pricing: Pricing,
    /// Leaving-row rule of the revised engine's dual simplex — the warm
    /// cleanup after bound changes and the cold dual start. The dense
    /// tableau has no dual path and ignores it.
    pub dual_pricing: DualPricing,
    /// Run the presolve pass (singleton rows/columns, forcing and
    /// redundant constraints) before a cold solve. **Revised engine
    /// only**; branch-and-bound disables it for its node solves, where
    /// per-node bound changes would invalidate the reductions. Models
    /// below the micro-size threshold skip the pass regardless (the
    /// analysis there costs more than it saves).
    pub presolve: bool,
    /// Geometric-mean equilibration of the constraint matrix before the
    /// solve (**revised engine only**; the dense tableau ignores it).
    /// The default `Auto` scales only genuinely ill-scaled matrices —
    /// the bandwidth-constrained and wide-range multi-object replica
    /// formulations — and leaves the near-unimodular classic
    /// formulations on their historical pivot paths. The solution is
    /// unscaled on extraction (exactly: scales are powers of two).
    pub scaling: Scaling,
    /// Whole-solve resource budget: wall-clock deadline and/or a total
    /// iteration cap, both unlimited by default. A budget stop returns
    /// the best primal-feasible point found so far (see
    /// [`crate::error`]). **Revised engine only**; the dense tableau
    /// ignores it.
    pub budget: SolveBudget,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            tolerance: 1e-7,
            max_iterations: None,
            bland_after: 10_000,
            pricing: Pricing::default(),
            dual_pricing: DualPricing::default(),
            presolve: true,
            scaling: Scaling::default(),
            budget: SolveBudget::UNLIMITED,
        }
    }
}

/// Solves the continuous relaxation of `model` with default options.
pub fn solve_lp(model: &Model) -> Solution {
    solve_lp_with(model, &SimplexOptions::default())
}

/// Solves the continuous relaxation of `model`.
pub fn solve_lp_with(model: &Model, options: &SimplexOptions) -> Solution {
    let mut workspace = SimplexWorkspace::default();
    solve_lp_reusing(model, options, &mut workspace)
}

/// Solves the continuous relaxation of `model`, reusing the buffers of
/// `workspace`. Repeated solves of same-shaped models (e.g. the nodes of
/// a branch-and-bound tree) allocate nothing after the first call.
pub fn solve_lp_reusing(
    model: &Model,
    options: &SimplexOptions,
    workspace: &mut SimplexWorkspace,
) -> Solution {
    Tableau::build(model, options, workspace).solve(model)
}

/// Column classification inside the tableau.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ColKind {
    /// Shifted structural variable (index into the model's variables).
    Structural(usize),
    /// Slack or surplus column.
    Slack,
    /// Artificial column (phase 1 only).
    Artificial,
}

/// Reusable buffers for the dense simplex. See [`solve_lp_reusing`].
#[derive(Default)]
pub struct SimplexWorkspace {
    /// `rows x (num_cols + 1)`, row-major; the last column of every row
    /// is the right-hand side.
    data: Vec<f64>,
    /// Basis: for each row, the column currently basic in it.
    basis: Vec<usize>,
    /// Kind of every column.
    kinds: Vec<ColKind>,
    /// Phase-2 cost of every column.
    costs: Vec<f64>,
    /// Lower bounds of the original variables (for unshifting).
    lower_bounds: Vec<f64>,
    /// Per-iteration scratch: reduced costs, basic costs, the pivot row.
    reduced: Vec<f64>,
    basic_costs: Vec<f64>,
    pivot_row: Vec<f64>,
    phase1_costs: Vec<f64>,
}

impl SimplexWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        SimplexWorkspace::default()
    }
}

struct Tableau<'w> {
    ws: &'w mut SimplexWorkspace,
    /// Number of rows.
    m: usize,
    /// Number of columns excluding the RHS; row stride is `cols + 1`.
    cols: usize,
    /// Constant added back to the objective after solving.
    objective_shift: f64,
    /// `true` when the model maximises (costs negated internally).
    maximise: bool,
    options: SimplexOptions,
    /// Set when preprocessing already proved infeasibility.
    trivially_infeasible: bool,
}

impl<'w> Tableau<'w> {
    fn build(model: &Model, options: &SimplexOptions, ws: &'w mut SimplexWorkspace) -> Self {
        let n = model.num_vars();
        let maximise = model.sense() == Sense::Maximize;
        ws.lower_bounds.clear();
        ws.lower_bounds
            .extend(model.variables.iter().map(|v| v.lower));

        let objective_shift: f64 = model.variables.iter().map(|v| v.objective * v.lower).sum();

        // Row census: every constraint plus one bound row per finite
        // upper bound. The RHS (after the lower-bound shift) decides
        // whether a slack and/or an artificial column is needed.
        let mut trivially_infeasible = false;
        let num_bound_rows = model.variables.iter().filter(|v| v.upper.is_some()).count();
        let m = model.constraints.len() + num_bound_rows;

        let shifted_rhs = |terms: &[(crate::model::VarId, f64)], rhs: f64| -> f64 {
            let mut shifted = rhs;
            for &(var, coeff) in terms {
                shifted -= coeff * ws.lower_bounds[var.index()];
            }
            shifted
        };

        let mut num_slack = 0usize;
        let mut num_art = 0usize;
        let mut census = |cmp: Cmp, rhs: f64| match effective_cmp(cmp, rhs < 0.0) {
            Cmp::Le => num_slack += 1,
            Cmp::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Cmp::Eq => num_art += 1,
        };
        for c in &model.constraints {
            census(c.cmp, shifted_rhs(&c.terms, c.rhs));
        }
        for v in &model.variables {
            if let Some(ub) = v.upper {
                let range = ub - v.lower;
                if range < 0.0 {
                    trivially_infeasible = true;
                }
                census(Cmp::Le, range);
            }
        }

        let cols = n + num_slack + num_art;
        let stride = cols + 1;
        ws.data.clear();
        ws.data.resize(m * stride, 0.0);
        ws.basis.clear();
        ws.basis.resize(m, usize::MAX);
        ws.kinds.clear();
        ws.kinds.extend((0..n).map(ColKind::Structural));
        ws.kinds
            .extend(std::iter::repeat_n(ColKind::Slack, num_slack));
        ws.kinds
            .extend(std::iter::repeat_n(ColKind::Artificial, num_art));
        ws.costs.clear();
        ws.costs.extend(model.variables.iter().map(|v| {
            if maximise {
                -v.objective
            } else {
                v.objective
            }
        }));
        ws.costs
            .extend(std::iter::repeat_n(0.0, num_slack + num_art));

        // Fill pass.
        let mut next_slack = n;
        let mut next_art = n + num_slack;
        let mut row = 0usize;
        for c in &model.constraints {
            let rhs = shifted_rhs(&c.terms, c.rhs);
            fill_row(
                &mut ws.data,
                &mut ws.basis,
                row,
                stride,
                cols,
                &mut next_slack,
                &mut next_art,
                c.terms.iter().map(|&(var, coeff)| (var.index(), coeff)),
                c.cmp,
                rhs,
            );
            row += 1;
        }
        for (j, v) in model.variables.iter().enumerate() {
            if let Some(ub) = v.upper {
                let range = ub - v.lower;
                fill_row(
                    &mut ws.data,
                    &mut ws.basis,
                    row,
                    stride,
                    cols,
                    &mut next_slack,
                    &mut next_art,
                    std::iter::once((j, 1.0)),
                    Cmp::Le,
                    range,
                );
                row += 1;
            }
        }
        debug_assert_eq!(row, m);

        Tableau {
            ws,
            m,
            cols,
            objective_shift,
            maximise,
            options: *options,
            trivially_infeasible,
        }
    }

    #[inline]
    fn stride(&self) -> usize {
        self.cols + 1
    }

    #[inline]
    fn at(&self, row: usize, col: usize) -> f64 {
        self.ws.data[row * self.stride() + col]
    }

    fn solve(mut self, model: &Model) -> Solution {
        if self.trivially_infeasible {
            return Solution::status_only(Status::Infeasible);
        }
        let tol = self.options.tolerance;

        // ---- Phase 1: minimise the sum of artificial variables. ----
        let has_artificials = self.ws.kinds.contains(&ColKind::Artificial);
        if has_artificials {
            let mut phase1_costs = std::mem::take(&mut self.ws.phase1_costs);
            phase1_costs.clear();
            phase1_costs.extend(self.ws.kinds.iter().map(|k| {
                if *k == ColKind::Artificial {
                    1.0
                } else {
                    0.0
                }
            }));
            let outcome =
                self.run_phase(&phase1_costs, /* allow_artificial_entering = */ true);
            let phase1_obj = self.objective_of(&phase1_costs);
            self.ws.phase1_costs = phase1_costs;
            match outcome {
                PhaseOutcome::Optimal => {}
                PhaseOutcome::Unbounded => {
                    // Phase 1 objective is bounded below by 0; this would be
                    // a numerical failure. Treat conservatively.
                    return Solution::status_only(Status::IterationLimit);
                }
                PhaseOutcome::IterationLimit => {
                    return Solution::status_only(Status::IterationLimit);
                }
            }
            if phase1_obj > tol * 10.0 {
                return Solution::status_only(Status::Infeasible);
            }
            self.drive_out_artificials();
        }

        // ---- Phase 2: minimise the shifted objective. ----
        let phase2_costs = std::mem::take(&mut self.ws.costs);
        let outcome = self.run_phase(&phase2_costs, /* allow_artificial_entering = */ false);
        self.ws.costs = phase2_costs;
        match outcome {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded => return Solution::status_only(Status::Unbounded),
            PhaseOutcome::IterationLimit => return Solution::status_only(Status::IterationLimit),
        }

        // Extract the solution, unshift, restore the sense.
        let mut values = self.ws.lower_bounds.clone();
        let rhs_col = self.cols;
        for (row, &col) in self.ws.basis.iter().enumerate() {
            if let ColKind::Structural(j) = self.ws.kinds[col] {
                values[j] += self.at(row, rhs_col).max(0.0);
            }
        }
        let mut objective = model.objective_value(&values);
        // Guard against tiny negative noise around zero.
        if objective.abs() < tol {
            objective = 0.0;
        }
        let _ = self.objective_shift; // already folded in via objective_value
        let _ = self.maximise;
        Solution {
            status: Status::Optimal,
            objective,
            values,
        }
    }

    /// Value of `costs` at the current basic solution.
    fn objective_of(&self, costs: &[f64]) -> f64 {
        let rhs = self.cols;
        self.ws
            .basis
            .iter()
            .enumerate()
            .map(|(row, &col)| costs[col] * self.at(row, rhs))
            .sum()
    }

    /// Runs pivots until optimality for the given cost vector.
    fn run_phase(&mut self, costs: &[f64], allow_artificial_entering: bool) -> PhaseOutcome {
        let tol = self.options.tolerance;
        let m = self.m;
        let n = self.cols;
        let stride = self.stride();
        let max_iter = self
            .options
            .max_iterations
            .unwrap_or_else(|| 200 + 50 * (m + n));

        for iteration in 0..max_iter {
            // Reduced costs: r_j = c_j - c_B^T (B^-1 A_j), accumulated
            // row-major so the flat matrix is walked sequentially.
            let mut reduced = std::mem::take(&mut self.ws.reduced);
            let mut basic_costs = std::mem::take(&mut self.ws.basic_costs);
            reduced.clear();
            reduced.extend_from_slice(&costs[..n]);
            basic_costs.clear();
            basic_costs.extend(self.ws.basis.iter().map(|&c| costs[c]));
            for (row, &bc) in basic_costs.iter().enumerate() {
                if bc != 0.0 {
                    let row_data = &self.ws.data[row * stride..row * stride + n];
                    for (r, &a) in reduced.iter_mut().zip(row_data) {
                        *r -= bc * a;
                    }
                }
            }

            let use_bland = iteration >= self.options.bland_after;
            let entering =
                self.choose_entering(&reduced, tol, use_bland, allow_artificial_entering);
            self.ws.reduced = reduced;
            self.ws.basic_costs = basic_costs;
            let entering = match entering {
                Some(j) => j,
                None => return PhaseOutcome::Optimal,
            };

            // Ratio test.
            let rhs_col = self.cols;
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for row in 0..m {
                let a = self.at(row, entering);
                if a > tol {
                    let ratio = self.at(row, rhs_col) / a;
                    let better = ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && leaving
                                .map(|l| self.ws.basis[row] < self.ws.basis[l])
                                .unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(row);
                    }
                }
            }
            let leaving = match leaving {
                Some(row) => row,
                None => return PhaseOutcome::Unbounded,
            };

            self.pivot(leaving, entering);
        }
        PhaseOutcome::IterationLimit
    }

    fn choose_entering(
        &self,
        reduced: &[f64],
        tol: f64,
        use_bland: bool,
        allow_artificial: bool,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (j, &r) in reduced.iter().enumerate() {
            if !allow_artificial && self.ws.kinds[j] == ColKind::Artificial {
                continue;
            }
            if r < -tol {
                if use_bland {
                    return Some(j);
                }
                match best {
                    Some((_, best_r)) if r >= best_r => {}
                    _ => best = Some((j, r)),
                }
            }
        }
        best.map(|(j, _)| j)
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let stride = self.stride();
        let rhs = self.cols;
        let base = pivot_row * stride;
        let pivot_value = self.ws.data[base + pivot_col];
        debug_assert!(pivot_value.abs() > 0.0, "pivot on a zero element");
        let inv = 1.0 / pivot_value;
        for value in &mut self.ws.data[base..base + stride] {
            *value *= inv;
        }
        // Stash the normalised pivot row in the reusable scratch so the
        // elimination loop can read it while mutating other rows.
        let mut pivot_copy = std::mem::take(&mut self.ws.pivot_row);
        pivot_copy.clear();
        pivot_copy.extend_from_slice(&self.ws.data[base..base + stride]);
        for row in 0..self.m {
            if row == pivot_row {
                continue;
            }
            let row_base = row * stride;
            let factor = self.ws.data[row_base + pivot_col];
            if factor != 0.0 {
                let row_data = &mut self.ws.data[row_base..row_base + stride];
                for (value, &p) in row_data.iter_mut().zip(&pivot_copy) {
                    *value -= factor * p;
                }
                // Clean up numerical dust in the pivot column and RHS.
                row_data[pivot_col] = 0.0;
                if row_data[rhs].abs() < 1e-12 {
                    row_data[rhs] = 0.0;
                }
            }
        }
        self.ws.pivot_row = pivot_copy;
        self.ws.basis[pivot_row] = pivot_col;
    }

    /// After phase 1, replace basic artificial variables (at value 0) by
    /// structural or slack columns wherever possible, so phase 2 never
    /// pivots on them.
    fn drive_out_artificials(&mut self) {
        let tol = self.options.tolerance;
        for row in 0..self.m {
            if self.ws.kinds[self.ws.basis[row]] != ColKind::Artificial {
                continue;
            }
            // Find any non-artificial column with a non-zero entry.
            let replacement = (0..self.cols)
                .find(|&j| self.ws.kinds[j] != ColKind::Artificial && self.at(row, j).abs() > tol);
            if let Some(col) = replacement {
                self.pivot(row, col);
            }
            // If none exists the row is redundant; the artificial stays
            // basic at value zero, which is harmless because artificials
            // are barred from entering in phase 2.
        }
    }
}

/// Writes one normalised tableau row: applies the sign flip for negative
/// right-hand sides and installs the slack / surplus / artificial
/// columns, recording the initial basic column.
#[allow(clippy::too_many_arguments)]
fn fill_row(
    data: &mut [f64],
    basis: &mut [usize],
    row: usize,
    stride: usize,
    cols: usize,
    next_slack: &mut usize,
    next_art: &mut usize,
    terms: impl Iterator<Item = (usize, f64)>,
    cmp: Cmp,
    rhs: f64,
) {
    let base = row * stride;
    let flip = rhs < 0.0;
    let sign = if flip { -1.0 } else { 1.0 };
    for (j, coeff) in terms {
        data[base + j] += sign * coeff;
    }
    data[base + cols] = sign * rhs;
    match effective_cmp(cmp, flip) {
        Cmp::Le => {
            data[base + *next_slack] = 1.0;
            basis[row] = *next_slack;
            *next_slack += 1;
        }
        Cmp::Ge => {
            data[base + *next_slack] = -1.0;
            *next_slack += 1;
            data[base + *next_art] = 1.0;
            basis[row] = *next_art;
            *next_art += 1;
        }
        Cmp::Eq => {
            data[base + *next_art] = 1.0;
            basis[row] = *next_art;
            *next_art += 1;
        }
    }
}

fn effective_cmp(cmp: Cmp, rhs_negative: bool) -> Cmp {
    if !rhs_negative {
        return cmp;
    }
    match cmp {
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
    }
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{lin_sum, LinExpr, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn maximisation_with_two_variables() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None, 3.0);
        let y = m.add_var("y", 0.0, None, 5.0);
        m.add_constraint("c1", LinExpr::var(x), Cmp::Le, 4.0);
        m.add_constraint("c2", lin_sum([(2.0, y)]), Cmp::Le, 12.0);
        m.add_constraint("c3", lin_sum([(3.0, x), (2.0, y)]), Cmp::Le, 18.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn minimisation_with_ge_constraints_needs_phase_one() {
        // min 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 3  => x=7,y=3 -> 23.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 2.0);
        let y = m.add_var("y", 0.0, None, 3.0);
        m.add_constraint("sum", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 10.0);
        m.add_constraint("xmin", LinExpr::var(x), Cmp::Ge, 2.0);
        m.add_constraint("ymin", LinExpr::var(y), Cmp::Ge, 3.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 23.0);
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_constraints_are_respected() {
        // min x + y  s.t. x + 2y = 8, x <= 4: x = 8-2y, obj = 8 - y, so
        // maximise y: y <= 4 (x >= 0). Best y=4, x=0, obj 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(4.0), 1.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("eq", lin_sum([(1.0, x), (2.0, y)]), Cmp::Eq, 8.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 4.0);
        assert_close(sol.value(x), 0.0);
        assert_close(sol.value(y), 4.0);
    }

    #[test]
    fn infeasible_system_is_detected() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(1.0), 1.0);
        m.add_constraint("too_big", LinExpr::var(x), Cmp::Ge, 5.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Infeasible);
        assert!(!sol.has_point());
    }

    #[test]
    fn contradictory_equalities_are_infeasible() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("a", lin_sum([(1.0, x), (1.0, y)]), Cmp::Eq, 4.0);
        m.add_constraint("b", lin_sum([(1.0, x), (1.0, y)]), Cmp::Eq, 6.0);
        assert_eq!(solve_lp(&m).status, Status::Infeasible);
    }

    #[test]
    fn unbounded_problem_is_detected() {
        // max x with only a lower bound.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None, 1.0);
        m.add_constraint("ge", LinExpr::var(x), Cmp::Ge, 1.0);
        assert_eq!(solve_lp(&m).status, Status::Unbounded);
    }

    #[test]
    fn lower_bound_shift_is_applied() {
        // min x + y with x >= 3, y >= 4 and x + y >= 10 => 10.
        let mut m = Model::minimize();
        let x = m.add_var("x", 3.0, None, 1.0);
        let y = m.add_var("y", 4.0, None, 1.0);
        m.add_constraint("sum", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 10.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 10.0);
        assert!(sol.value(x) >= 3.0 - 1e-9);
        assert!(sol.value(y) >= 4.0 - 1e-9);
    }

    #[test]
    fn inverted_bounds_are_infeasible() {
        let mut m = Model::minimize();
        // Upper bound below lower bound cannot be constructed through the
        // checked API, so emulate it with constraints.
        let x = m.add_var("x", 2.0, None, 1.0);
        m.add_constraint("ub", LinExpr::var(x), Cmp::Le, 1.0);
        assert_eq!(solve_lp(&m).status, Status::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic cycling-prone instance (Beale's example). Bland's rule
        // fallback must terminate with the optimum (maximisation form:
        // max 0.75a - 150b + 0.02c - 6d).
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, None, 0.75);
        let b = m.add_var("b", 0.0, None, -150.0);
        let c = m.add_var("c", 0.0, None, 0.02);
        let d = m.add_var("d", 0.0, None, -6.0);
        m.add_constraint(
            "r1",
            lin_sum([(0.25, a), (-60.0, b), (-0.04, c), (9.0, d)]),
            Cmp::Le,
            0.0,
        );
        m.add_constraint(
            "r2",
            lin_sum([(0.5, a), (-90.0, b), (-0.02, c), (3.0, d)]),
            Cmp::Le,
            0.0,
        );
        m.add_constraint("r3", LinExpr::var(c), Cmp::Le, 1.0);
        let options = SimplexOptions {
            bland_after: 20,
            ..SimplexOptions::default()
        };
        let sol = solve_lp_with(&m, &options);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 0.05);
    }

    #[test]
    fn zero_constraint_model_uses_bounds_only() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.5, Some(9.0), 2.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 3.0);
        assert_close(sol.value(x), 1.5);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // x - y <= -2 with x,y >= 0: equivalent to y >= x + 2.
        // min y s.t. that => x = 0, y = 2.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 0.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("neg", lin_sum([(1.0, x), (-1.0, y)]), Cmp::Le, -2.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 2.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase_two() {
        // Same equality twice: redundant artificial row must be handled.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        let y = m.add_var("y", 0.0, None, 2.0);
        m.add_constraint("e1", lin_sum([(1.0, x), (1.0, y)]), Cmp::Eq, 5.0);
        m.add_constraint("e2", lin_sum([(2.0, x), (2.0, y)]), Cmp::Eq, 10.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 5.0);
        assert_close(sol.value(x), 5.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn transportation_like_problem() {
        // Two suppliers (cap 20, 30), three consumers (demand 10, 25, 15),
        // costs:
        //        c1 c2 c3
        //   s1:   2  3  1
        //   s2:   5  4  8
        // Optimal plan: s1 -> c3 (15 @ 1) + c1 (5 @ 2) = 25,
        //               s2 -> c1 (5 @ 5) + c2 (25 @ 4) = 125, total 150.
        let mut m = Model::minimize();
        let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
        let caps = [20.0, 30.0];
        let demands = [10.0, 25.0, 15.0];
        let mut vars = vec![vec![]; 2];
        for (s, row) in costs.iter().enumerate() {
            for (c, &cost) in row.iter().enumerate() {
                vars[s].push(m.add_var(format!("x{s}{c}"), 0.0, None, cost));
            }
        }
        for s in 0..2 {
            let expr = lin_sum(vars[s].iter().map(|&v| (1.0, v)));
            m.add_constraint(format!("cap{s}"), expr, Cmp::Le, caps[s]);
        }
        for c in 0..3 {
            let expr = lin_sum((0..2).map(|s| (1.0, vars[s][c])));
            m.add_constraint(format!("dem{c}"), expr, Cmp::Ge, demands[c]);
        }
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 150.0);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn solution_respects_upper_bounds() {
        // max x + y with x <= 2, y <= 3 (as variable bounds).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, Some(2.0), 1.0);
        let y = m.add_var("y", 0.0, Some(3.0), 1.0);
        m.add_constraint("mix", lin_sum([(1.0, x), (1.0, y)]), Cmp::Le, 10.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 5.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None, 3.0);
        let y = m.add_var("y", 0.0, None, 5.0);
        m.add_constraint("c1", LinExpr::var(x), Cmp::Le, 4.0);
        m.add_constraint("c2", lin_sum([(2.0, y)]), Cmp::Le, 12.0);
        m.add_constraint("c3", lin_sum([(3.0, x), (2.0, y)]), Cmp::Le, 18.0);
        let options = SimplexOptions {
            max_iterations: Some(1),
            ..SimplexOptions::default()
        };
        let sol = solve_lp_with(&m, &options);
        assert_eq!(sol.status, Status::IterationLimit);
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        // The same workspace must solve a sequence of differently shaped
        // models and report the same answers as fresh solves.
        let mut ws = SimplexWorkspace::new();
        for trial in 0..3 {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 0.0, Some(4.0 + trial as f64), 3.0);
            let y = m.add_var("y", 0.0, None, 5.0);
            m.add_constraint("c2", lin_sum([(2.0, y)]), Cmp::Le, 12.0);
            m.add_constraint("c3", lin_sum([(3.0, x), (2.0, y)]), Cmp::Le, 18.0);
            let fresh = solve_lp(&m);
            let reused = solve_lp_reusing(&m, &SimplexOptions::default(), &mut ws);
            assert_eq!(fresh.status, reused.status);
            assert_close(fresh.objective, reused.objective);
        }
        // An infeasible solve must not poison the workspace.
        let mut infeasible = Model::minimize();
        let x = infeasible.add_var("x", 0.0, Some(1.0), 1.0);
        infeasible.add_constraint("big", LinExpr::var(x), Cmp::Ge, 5.0);
        assert_eq!(
            solve_lp_reusing(&infeasible, &SimplexOptions::default(), &mut ws).status,
            Status::Infeasible
        );
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 2.0);
        m.add_constraint("ge", LinExpr::var(x), Cmp::Ge, 2.5);
        let sol = solve_lp_reusing(&m, &SimplexOptions::default(), &mut ws);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 5.0);
    }
}
