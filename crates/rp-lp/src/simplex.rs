//! Dense two-phase primal simplex.
//!
//! The solver works on the continuous relaxation of a [`Model`]: integer
//! markers are ignored here (branch-and-bound, in
//! [`crate::branch_bound`], layers integrality on top).
//!
//! The implementation is a textbook full-tableau simplex:
//!
//! 1. shift every variable by its lower bound so all variables are
//!    non-negative, and turn finite upper bounds into extra rows;
//! 2. normalise rows to non-negative right-hand sides and add slack,
//!    surplus and artificial columns;
//! 3. phase 1 minimises the sum of artificials to find a basic feasible
//!    solution (or prove infeasibility);
//! 4. phase 2 minimises the true objective, with Dantzig pricing and an
//!    automatic switch to Bland's rule to guarantee termination.
//!
//! This is `O(m·n)` memory and `O(m·n)` work per pivot — ample for the
//! replica-placement formulations used by the experiment harness, and
//! entirely dependency-free.

use crate::model::{Cmp, Model, Sense};
use crate::solution::{Solution, Status};

/// Tunable solver parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimplexOptions {
    /// Feasibility / optimality tolerance.
    pub tolerance: f64,
    /// Hard cap on pivot iterations per phase. `None` picks a bound that
    /// scales with the problem size.
    pub max_iterations: Option<usize>,
    /// Number of Dantzig-pricing iterations before switching to Bland's
    /// rule (anti-cycling).
    pub bland_after: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            tolerance: 1e-7,
            max_iterations: None,
            bland_after: 10_000,
        }
    }
}

/// Solves the continuous relaxation of `model` with default options.
pub fn solve_lp(model: &Model) -> Solution {
    solve_lp_with(model, &SimplexOptions::default())
}

/// Solves the continuous relaxation of `model`.
pub fn solve_lp_with(model: &Model, options: &SimplexOptions) -> Solution {
    Tableau::build(model, options).solve(model)
}

/// Column classification inside the tableau.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ColKind {
    /// Shifted structural variable (index into the model's variables).
    Structural(usize),
    /// Slack or surplus column.
    Slack,
    /// Artificial column (phase 1 only).
    Artificial,
}

struct Tableau {
    /// `rows x (num_cols + 1)`; the last column is the right-hand side.
    data: Vec<Vec<f64>>,
    /// Basis: for each row, the column currently basic in it.
    basis: Vec<usize>,
    /// Kind of every column.
    kinds: Vec<ColKind>,
    /// Phase-2 cost of every column (structural columns carry the shifted
    /// objective, slack/surplus are 0, artificials are irrelevant because
    /// they are barred from entering in phase 2).
    costs: Vec<f64>,
    /// Constant added back to the objective after solving (from the lower
    /// bound shift and the sense flip).
    objective_shift: f64,
    /// Lower bounds of the original variables (for unshifting).
    lower_bounds: Vec<f64>,
    /// `true` when the model maximises (we negate costs internally).
    maximise: bool,
    options: SimplexOptions,
    /// Set when the constraint preprocessing already proved infeasibility
    /// (e.g. a bound row with negative range).
    trivially_infeasible: bool,
}

impl Tableau {
    fn build(model: &Model, options: &SimplexOptions) -> Self {
        let n = model.num_vars();
        let maximise = model.sense() == Sense::Maximize;
        let lower_bounds: Vec<f64> = model.variables.iter().map(|v| v.lower).collect();

        // Shifted objective: cost of x'_j is c_j (sign-flipped when
        // maximising); the constant c^T l is restored afterwards.
        let mut costs_structural: Vec<f64> = model
            .variables
            .iter()
            .map(|v| if maximise { -v.objective } else { v.objective })
            .collect();
        let objective_shift: f64 = model
            .variables
            .iter()
            .map(|v| v.objective * v.lower)
            .sum();

        // Collect rows: (terms over structural vars, cmp, rhs) with the
        // lower-bound shift applied.
        let mut rows: Vec<(Vec<(usize, f64)>, Cmp, f64)> = Vec::new();
        let mut trivially_infeasible = false;
        for c in &model.constraints {
            let mut rhs = c.rhs;
            let mut terms = Vec::with_capacity(c.terms.len());
            for &(var, coeff) in &c.terms {
                rhs -= coeff * lower_bounds[var.index()];
                terms.push((var.index(), coeff));
            }
            rows.push((terms, c.cmp, rhs));
        }
        // Upper bounds become x'_j <= u_j - l_j.
        for (j, v) in model.variables.iter().enumerate() {
            if let Some(ub) = v.upper {
                let range = ub - v.lower;
                if range < 0.0 {
                    trivially_infeasible = true;
                }
                rows.push((vec![(j, 1.0)], Cmp::Le, range));
            }
        }

        let m = rows.len();
        // Column layout: structural | slack/surplus | artificial | rhs.
        let mut kinds: Vec<ColKind> = (0..n).map(ColKind::Structural).collect();
        let mut costs: Vec<f64> = std::mem::take(&mut costs_structural);

        // First pass: count slack and artificial columns.
        let mut num_slack = 0usize;
        let mut num_art = 0usize;
        for (_, cmp, rhs) in &rows {
            let rhs_negative = *rhs < 0.0;
            let effective = effective_cmp(*cmp, rhs_negative);
            match effective {
                Cmp::Le => num_slack += 1,
                Cmp::Ge => {
                    num_slack += 1;
                    num_art += 1;
                }
                Cmp::Eq => num_art += 1,
            }
        }
        let total_cols = n + num_slack + num_art;
        let mut data = vec![vec![0.0; total_cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        kinds.extend(std::iter::repeat_n(ColKind::Slack, num_slack));
        kinds.extend(std::iter::repeat_n(ColKind::Artificial, num_art));
        costs.extend(std::iter::repeat_n(0.0, num_slack + num_art));

        let mut next_slack = n;
        let mut next_art = n + num_slack;
        for (i, (terms, cmp, rhs)) in rows.iter().enumerate() {
            let flip = *rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            for &(j, coeff) in terms {
                data[i][j] += sign * coeff;
            }
            data[i][total_cols] = sign * rhs;
            match effective_cmp(*cmp, flip) {
                Cmp::Le => {
                    data[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    data[i][next_slack] = -1.0;
                    next_slack += 1;
                    data[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    data[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        Tableau {
            data,
            basis,
            kinds,
            costs,
            objective_shift,
            lower_bounds,
            maximise,
            options: *options,
            trivially_infeasible,
        }
    }

    fn num_cols(&self) -> usize {
        self.kinds.len()
    }

    fn rhs_col(&self) -> usize {
        self.kinds.len()
    }

    fn solve(mut self, model: &Model) -> Solution {
        if self.trivially_infeasible {
            return Solution::status_only(Status::Infeasible);
        }
        let tol = self.options.tolerance;

        // ---- Phase 1: minimise the sum of artificial variables. ----
        let has_artificials = self.kinds.contains(&ColKind::Artificial);
        if has_artificials {
            let phase1_costs: Vec<f64> = self
                .kinds
                .iter()
                .map(|k| if *k == ColKind::Artificial { 1.0 } else { 0.0 })
                .collect();
            match self.run_phase(&phase1_costs, /* allow_artificial_entering = */ true) {
                PhaseOutcome::Optimal => {}
                PhaseOutcome::Unbounded => {
                    // Phase 1 objective is bounded below by 0; this would be
                    // a numerical failure. Treat conservatively.
                    return Solution::status_only(Status::IterationLimit);
                }
                PhaseOutcome::IterationLimit => {
                    return Solution::status_only(Status::IterationLimit);
                }
            }
            let phase1_obj = self.objective_of(&phase1_costs);
            if phase1_obj > tol * 10.0 {
                return Solution::status_only(Status::Infeasible);
            }
            self.drive_out_artificials();
        }

        // ---- Phase 2: minimise the shifted objective. ----
        let phase2_costs = self.costs.clone();
        match self.run_phase(&phase2_costs, /* allow_artificial_entering = */ false) {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded => return Solution::status_only(Status::Unbounded),
            PhaseOutcome::IterationLimit => {
                return Solution::status_only(Status::IterationLimit)
            }
        }

        // Extract the solution, unshift, restore the sense.
        let mut values = self.lower_bounds.clone();
        let rhs_col = self.rhs_col();
        for (row, &col) in self.basis.iter().enumerate() {
            if let ColKind::Structural(j) = self.kinds[col] {
                values[j] += self.data[row][rhs_col].max(0.0);
            }
        }
        let mut objective = model.objective_value(&values);
        // Guard against tiny negative noise around zero.
        if objective.abs() < tol {
            objective = 0.0;
        }
        let _ = self.objective_shift; // already folded in via objective_value
        let _ = self.maximise;
        Solution {
            status: Status::Optimal,
            objective,
            values,
        }
    }

    /// Value of `costs` at the current basic solution.
    fn objective_of(&self, costs: &[f64]) -> f64 {
        let rhs = self.rhs_col();
        self.basis
            .iter()
            .enumerate()
            .map(|(row, &col)| costs[col] * self.data[row][rhs])
            .sum()
    }

    /// Runs pivots until optimality for the given cost vector.
    fn run_phase(&mut self, costs: &[f64], allow_artificial_entering: bool) -> PhaseOutcome {
        let tol = self.options.tolerance;
        let m = self.data.len();
        let n = self.num_cols();
        let max_iter = self
            .options
            .max_iterations
            .unwrap_or_else(|| 200 + 50 * (m + n));
        let mut reduced = vec![0.0; n];

        for iteration in 0..max_iter {
            // Reduced costs: r_j = c_j - c_B^T (B^-1 A_j).
            let basic_costs: Vec<f64> = self.basis.iter().map(|&c| costs[c]).collect();
            for (j, r) in reduced.iter_mut().enumerate() {
                let mut dot = 0.0;
                for (row, bc) in basic_costs.iter().enumerate() {
                    if *bc != 0.0 {
                        dot += bc * self.data[row][j];
                    }
                }
                *r = costs[j] - dot;
            }

            let use_bland = iteration >= self.options.bland_after;
            let entering = self.choose_entering(&reduced, tol, use_bland, allow_artificial_entering);
            let entering = match entering {
                Some(j) => j,
                None => return PhaseOutcome::Optimal,
            };

            // Ratio test.
            let rhs_col = self.rhs_col();
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for row in 0..m {
                let a = self.data[row][entering];
                if a > tol {
                    let ratio = self.data[row][rhs_col] / a;
                    let better = ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && leaving
                                .map(|l| self.basis[row] < self.basis[l])
                                .unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(row);
                    }
                }
            }
            let leaving = match leaving {
                Some(row) => row,
                None => return PhaseOutcome::Unbounded,
            };

            self.pivot(leaving, entering);
        }
        PhaseOutcome::IterationLimit
    }

    fn choose_entering(
        &self,
        reduced: &[f64],
        tol: f64,
        use_bland: bool,
        allow_artificial: bool,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (j, &r) in reduced.iter().enumerate() {
            if !allow_artificial && self.kinds[j] == ColKind::Artificial {
                continue;
            }
            if r < -tol {
                if use_bland {
                    return Some(j);
                }
                match best {
                    Some((_, best_r)) if r >= best_r => {}
                    _ => best = Some((j, r)),
                }
            }
        }
        best.map(|(j, _)| j)
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let rhs = self.rhs_col();
        let pivot_value = self.data[pivot_row][pivot_col];
        debug_assert!(pivot_value.abs() > 0.0, "pivot on a zero element");
        let inv = 1.0 / pivot_value;
        for value in self.data[pivot_row].iter_mut() {
            *value *= inv;
        }
        let pivot_row_copy = self.data[pivot_row].clone();
        for (row, row_data) in self.data.iter_mut().enumerate() {
            if row == pivot_row {
                continue;
            }
            let factor = row_data[pivot_col];
            if factor != 0.0 {
                for (col, value) in row_data.iter_mut().enumerate() {
                    *value -= factor * pivot_row_copy[col];
                }
                // Clean up numerical dust in the pivot column and RHS.
                row_data[pivot_col] = 0.0;
                if row_data[rhs].abs() < 1e-12 {
                    row_data[rhs] = 0.0;
                }
            }
        }
        self.basis[pivot_row] = pivot_col;
    }

    /// After phase 1, replace basic artificial variables (at value 0) by
    /// structural or slack columns wherever possible, so phase 2 never
    /// pivots on them.
    fn drive_out_artificials(&mut self) {
        let tol = self.options.tolerance;
        for row in 0..self.data.len() {
            if self.kinds[self.basis[row]] != ColKind::Artificial {
                continue;
            }
            // Find any non-artificial column with a non-zero entry.
            let replacement = (0..self.num_cols())
                .find(|&j| self.kinds[j] != ColKind::Artificial && self.data[row][j].abs() > tol);
            if let Some(col) = replacement {
                self.pivot(row, col);
            }
            // If none exists the row is redundant; the artificial stays
            // basic at value zero, which is harmless because artificials
            // are barred from entering in phase 2.
        }
    }
}

fn effective_cmp(cmp: Cmp, rhs_negative: bool) -> Cmp {
    if !rhs_negative {
        return cmp;
    }
    match cmp {
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
    }
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{lin_sum, LinExpr, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn maximisation_with_two_variables() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None, 3.0);
        let y = m.add_var("y", 0.0, None, 5.0);
        m.add_constraint("c1", LinExpr::var(x), Cmp::Le, 4.0);
        m.add_constraint("c2", lin_sum([(2.0, y)]), Cmp::Le, 12.0);
        m.add_constraint("c3", lin_sum([(3.0, x), (2.0, y)]), Cmp::Le, 18.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn minimisation_with_ge_constraints_needs_phase_one() {
        // min 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 3  => x=7,y=3 -> 23.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 2.0);
        let y = m.add_var("y", 0.0, None, 3.0);
        m.add_constraint("sum", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 10.0);
        m.add_constraint("xmin", LinExpr::var(x), Cmp::Ge, 2.0);
        m.add_constraint("ymin", LinExpr::var(y), Cmp::Ge, 3.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 23.0);
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_constraints_are_respected() {
        // min x + y  s.t. x + 2y = 8, x <= 4  => y >= 2; best x=4,y=2 -> 6...
        // check: objective x+y with x+2y=8 => x = 8-2y, obj = 8 - y, so
        // maximise y: y <= 4 (x >= 0). Best y=4, x=0, obj 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(4.0), 1.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("eq", lin_sum([(1.0, x), (2.0, y)]), Cmp::Eq, 8.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 4.0);
        assert_close(sol.value(x), 0.0);
        assert_close(sol.value(y), 4.0);
    }

    #[test]
    fn infeasible_system_is_detected() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(1.0), 1.0);
        m.add_constraint("too_big", LinExpr::var(x), Cmp::Ge, 5.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Infeasible);
        assert!(!sol.has_point());
    }

    #[test]
    fn contradictory_equalities_are_infeasible() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("a", lin_sum([(1.0, x), (1.0, y)]), Cmp::Eq, 4.0);
        m.add_constraint("b", lin_sum([(1.0, x), (1.0, y)]), Cmp::Eq, 6.0);
        assert_eq!(solve_lp(&m).status, Status::Infeasible);
    }

    #[test]
    fn unbounded_problem_is_detected() {
        // max x with only a lower bound.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None, 1.0);
        m.add_constraint("ge", LinExpr::var(x), Cmp::Ge, 1.0);
        assert_eq!(solve_lp(&m).status, Status::Unbounded);
    }

    #[test]
    fn lower_bound_shift_is_applied() {
        // min x + y with x >= 3, y >= 4 and x + y >= 10 => 10.
        let mut m = Model::minimize();
        let x = m.add_var("x", 3.0, None, 1.0);
        let y = m.add_var("y", 4.0, None, 1.0);
        m.add_constraint("sum", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 10.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 10.0);
        assert!(sol.value(x) >= 3.0 - 1e-9);
        assert!(sol.value(y) >= 4.0 - 1e-9);
    }

    #[test]
    fn inverted_bounds_are_infeasible() {
        let mut m = Model::minimize();
        // Upper bound below lower bound cannot be constructed through the
        // checked API, so emulate it with constraints.
        let x = m.add_var("x", 2.0, None, 1.0);
        m.add_constraint("ub", LinExpr::var(x), Cmp::Le, 1.0);
        assert_eq!(solve_lp(&m).status, Status::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic cycling-prone instance (Beale's example). Bland's rule
        // fallback must terminate with the optimum -0.05 (maximisation form:
        // max 0.75a - 150b + 0.02c - 6d).
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, None, 0.75);
        let b = m.add_var("b", 0.0, None, -150.0);
        let c = m.add_var("c", 0.0, None, 0.02);
        let d = m.add_var("d", 0.0, None, -6.0);
        m.add_constraint(
            "r1",
            lin_sum([(0.25, a), (-60.0, b), (-0.04, c), (9.0, d)]),
            Cmp::Le,
            0.0,
        );
        m.add_constraint(
            "r2",
            lin_sum([(0.5, a), (-90.0, b), (-0.02, c), (3.0, d)]),
            Cmp::Le,
            0.0,
        );
        m.add_constraint("r3", LinExpr::var(c), Cmp::Le, 1.0);
        let options = SimplexOptions {
            bland_after: 20,
            ..SimplexOptions::default()
        };
        let sol = solve_lp_with(&m, &options);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 0.05);
    }

    #[test]
    fn zero_constraint_model_uses_bounds_only() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.5, Some(9.0), 2.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 3.0);
        assert_close(sol.value(x), 1.5);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // x - y <= -2 with x,y >= 0: equivalent to y >= x + 2.
        // min y s.t. that => x = 0, y = 2.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 0.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("neg", lin_sum([(1.0, x), (-1.0, y)]), Cmp::Le, -2.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 2.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase_two() {
        // Same equality twice: redundant artificial row must be handled.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        let y = m.add_var("y", 0.0, None, 2.0);
        m.add_constraint("e1", lin_sum([(1.0, x), (1.0, y)]), Cmp::Eq, 5.0);
        m.add_constraint("e2", lin_sum([(2.0, x), (2.0, y)]), Cmp::Eq, 10.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 5.0);
        assert_close(sol.value(x), 5.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn transportation_like_problem() {
        // Two suppliers (cap 20, 30), three consumers (demand 10, 25, 15),
        // costs:
        //        c1 c2 c3
        //   s1:   2  3  1
        //   s2:   5  4  8
        // Optimal plan: s1 -> c3 (15 @ 1) + c1 (5 @ 2) = 25,
        //               s2 -> c1 (5 @ 5) + c2 (25 @ 4) = 125, total 150.
        // (Any unit moved from s1's cheap cells to c2 costs a net +2.)
        let mut m = Model::minimize();
        let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
        let caps = [20.0, 30.0];
        let demands = [10.0, 25.0, 15.0];
        let mut vars = vec![vec![]; 2];
        for s in 0..2 {
            for c in 0..3 {
                vars[s].push(m.add_var(format!("x{s}{c}"), 0.0, None, costs[s][c]));
            }
        }
        for s in 0..2 {
            let expr = lin_sum(vars[s].iter().map(|&v| (1.0, v)));
            m.add_constraint(format!("cap{s}"), expr, Cmp::Le, caps[s]);
        }
        for c in 0..3 {
            let expr = lin_sum((0..2).map(|s| (1.0, vars[s][c])));
            m.add_constraint(format!("dem{c}"), expr, Cmp::Ge, demands[c]);
        }
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 150.0);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn solution_respects_upper_bounds() {
        // max x + y with x <= 2, y <= 3 (as variable bounds).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, Some(2.0), 1.0);
        let y = m.add_var("y", 0.0, Some(3.0), 1.0);
        m.add_constraint("mix", lin_sum([(1.0, x), (1.0, y)]), Cmp::Le, 10.0);
        let sol = solve_lp(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 5.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None, 3.0);
        let y = m.add_var("y", 0.0, None, 5.0);
        m.add_constraint("c1", LinExpr::var(x), Cmp::Le, 4.0);
        m.add_constraint("c2", lin_sum([(2.0, y)]), Cmp::Le, 12.0);
        m.add_constraint("c3", lin_sum([(3.0, x), (2.0, y)]), Cmp::Le, 18.0);
        let options = SimplexOptions {
            max_iterations: Some(1),
            ..SimplexOptions::default()
        };
        let sol = solve_lp_with(&m, &options);
        assert_eq!(sol.status, Status::IterationLimit);
    }
}
