//! Solver outcomes.

use std::fmt;

use crate::model::VarId;

/// Termination status of an LP or MILP solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The iteration limit was reached before convergence.
    IterationLimit,
    /// The wall-clock deadline of a
    /// [`SolveBudget`](crate::SolveBudget) passed before convergence.
    /// The reported solution (if any) is the best primal-feasible point
    /// found so far, not a proven optimum.
    DeadlineExceeded,
    /// The branch-and-bound node limit was reached; the reported solution
    /// (if any) is the best incumbent and the bound may not be proven
    /// optimal.
    NodeLimit,
}

impl Status {
    /// `true` for [`Status::Optimal`].
    pub fn is_optimal(self) -> bool {
        matches!(self, Status::Optimal)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::IterationLimit => "iteration limit reached",
            Status::DeadlineExceeded => "deadline exceeded",
            Status::NodeLimit => "node limit reached",
        };
        write!(f, "{s}")
    }
}

/// The result of solving a model.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Why the solver stopped.
    pub status: Status,
    /// Objective value in the *original* model sense (only meaningful
    /// when a feasible point was found).
    pub objective: f64,
    /// Value of each variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
}

impl Solution {
    /// Builds a solution carrying only a status (no feasible point).
    pub fn status_only(status: Status) -> Self {
        Solution {
            status,
            objective: f64::NAN,
            values: Vec::new(),
        }
    }

    /// Builds a solution carrying a *bound* but no point: `objective`
    /// is a valid dual bound on the optimum (for a minimisation, a
    /// lower bound) while no primal-feasible values exist yet.
    /// [`Solution::has_point`] stays `false`, so point-consuming
    /// callers are unaffected; bound-consuming callers (branch &
    /// bound, the online engine's budgeted re-solves) read
    /// `objective` directly.
    pub fn bound_only(status: Status, objective: f64) -> Self {
        Solution {
            status,
            objective,
            values: Vec::new(),
        }
    }

    /// Value of a single variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Returns `true` when the solution holds a usable feasible point
    /// (optimal, or best incumbent under a node limit).
    pub fn has_point(&self) -> bool {
        !self.values.is_empty()
    }

    /// Pairs every tagged variable with its fractional value, skipping
    /// entries whose value does not exceed `tolerance`.
    ///
    /// This is the extraction primitive for LP-guided rounding: a caller
    /// that tagged its variables with domain keys (a node, a
    /// client/server pair, a link) recovers the *fractional assignment*
    /// of the relaxation — the part of an optimum that a pure
    /// objective-value API would discard — without re-deriving variable
    /// indices.
    pub fn fractional_assignment<'a, K: Copy>(
        &'a self,
        vars: &'a [(K, VarId)],
        tolerance: f64,
    ) -> impl Iterator<Item = (K, f64)> + 'a {
        vars.iter().filter_map(move |&(key, var)| {
            let value = self.values[var.index()];
            (value > tolerance).then_some((key, value))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_display_and_predicates() {
        assert!(Status::Optimal.is_optimal());
        assert!(!Status::Infeasible.is_optimal());
        assert_eq!(Status::Unbounded.to_string(), "unbounded");
        assert_eq!(
            Status::IterationLimit.to_string(),
            "iteration limit reached"
        );
        assert_eq!(Status::DeadlineExceeded.to_string(), "deadline exceeded");
        assert_eq!(Status::NodeLimit.to_string(), "node limit reached");
    }

    #[test]
    fn status_only_solutions_have_no_point() {
        let s = Solution::status_only(Status::Infeasible);
        assert!(!s.has_point());
        assert!(s.objective.is_nan());
    }

    #[test]
    fn fractional_assignment_filters_by_tolerance() {
        let s = Solution {
            status: Status::Optimal,
            objective: 1.0,
            values: vec![0.75, 0.0, 1e-9, 0.25],
        };
        let tagged: Vec<(u32, VarId)> = (0..4u32).map(|i| (i, VarId(i))).collect();
        let picked: Vec<(u32, f64)> = s.fractional_assignment(&tagged, 1e-6).collect();
        assert_eq!(picked, vec![(0, 0.75), (3, 0.25)]);
    }
}
