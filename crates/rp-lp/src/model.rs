//! Linear-program model builder.
//!
//! A [`Model`] is a collection of named variables (continuous or
//! integer, with bounds), linear constraints and a linear objective.
//! It is deliberately small: just enough expressive power for the
//! replica-placement formulations of the paper (Section 5), which only
//! need non-negative variables, `<=`/`>=`/`=` constraints and a
//! minimisation objective.

use std::fmt;

/// Identifier of a decision variable within a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a constraint within a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConstraintId(pub(crate) u32);

impl ConstraintId {
    /// Dense index of the constraint.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether the objective is minimised or maximised.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Sense {
    /// Minimise the objective (the default for replica cost).
    #[default]
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Direction of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Le => write!(f, "<="),
            Cmp::Ge => write!(f, ">="),
            Cmp::Eq => write!(f, "=="),
        }
    }
}

/// A linear expression: a sum of `coefficient * variable` terms.
///
/// Terms may mention the same variable several times; they are merged
/// when the expression is added to a model constraint.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// The empty expression (value 0).
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// An expression consisting of a single `1.0 * var` term.
    pub fn var(var: VarId) -> Self {
        LinExpr {
            terms: vec![(var, 1.0)],
        }
    }

    /// Adds `coeff * var` to the expression (builder style).
    pub fn plus(mut self, coeff: f64, var: VarId) -> Self {
        self.terms.push((var, coeff));
        self
    }

    /// Adds `coeff * var` to the expression in place.
    pub fn add_term(&mut self, coeff: f64, var: VarId) {
        self.terms.push((var, coeff));
    }

    /// Number of (unmerged) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over raw terms (before merging).
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// Merges duplicate variables, dropping zero coefficients; the result
    /// is sorted by variable index.
    pub fn merged(&self) -> Vec<(VarId, f64)> {
        let mut sorted = self.terms.clone();
        sorted.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(sorted.len());
        for (var, coeff) in sorted {
            match out.last_mut() {
                Some((last_var, last_coeff)) if *last_var == var => *last_coeff += coeff,
                _ => out.push((var, coeff)),
            }
        }
        out.retain(|(_, c)| c.abs() > 0.0);
        out
    }

    /// Evaluates the expression for a dense assignment of variable values.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(var, coeff)| coeff * values[var.index()])
            .sum()
    }
}

/// Builds a `LinExpr` as a sum of `coeff * var` pairs.
pub fn lin_sum<I>(terms: I) -> LinExpr
where
    I: IntoIterator<Item = (f64, VarId)>,
{
    let mut expr = LinExpr::new();
    for (coeff, var) in terms {
        expr.add_term(coeff, var);
    }
    expr
}

/// A decision variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Variable {
    /// Human-readable name (used in diagnostics).
    pub name: String,
    /// Lower bound (must be finite and non-negative for the solver).
    pub lower: f64,
    /// Optional finite upper bound.
    pub upper: Option<f64>,
    /// Whether the variable must take an integral value in MILP solves.
    pub integer: bool,
    /// Coefficient in the objective.
    pub objective: f64,
}

/// A linear constraint `expr cmp rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    /// Human-readable name (used in diagnostics).
    pub name: String,
    /// Left-hand side, already merged (sorted by variable, no duplicates).
    pub terms: Vec<(VarId, f64)>,
    /// Constraint direction.
    pub cmp: Cmp,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// A linear / mixed-integer linear program.
#[derive(Clone, Debug, Default)]
pub struct Model {
    pub(crate) variables: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) sense: Sense,
}

impl Model {
    /// Creates an empty minimisation model.
    pub fn new(sense: Sense) -> Self {
        Model {
            variables: Vec::new(),
            constraints: Vec::new(),
            sense,
        }
    }

    /// Creates an empty minimisation model (the common case here).
    pub fn minimize() -> Self {
        Model::new(Sense::Minimize)
    }

    /// Objective sense of the model.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a continuous variable with bounds `[lower, upper]` and the
    /// given objective coefficient. `upper = None` means unbounded above.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: Option<f64>,
        objective: f64,
    ) -> VarId {
        self.push_var(name.into(), lower, upper, objective, false)
    }

    /// Adds an integer variable with bounds `[lower, upper]`.
    pub fn add_int_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: Option<f64>,
        objective: f64,
    ) -> VarId {
        self.push_var(name.into(), lower, upper, objective, true)
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary_var(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.push_var(name.into(), 0.0, Some(1.0), objective, true)
    }

    fn push_var(
        &mut self,
        name: String,
        lower: f64,
        upper: Option<f64>,
        objective: f64,
        integer: bool,
    ) -> VarId {
        assert!(
            lower.is_finite() && lower >= 0.0,
            "variable {name}: lower bound must be finite and non-negative (got {lower})"
        );
        if let Some(ub) = upper {
            assert!(
                ub.is_finite() && ub >= lower,
                "variable {name}: upper bound {ub} must be finite and >= lower bound {lower}"
            );
        }
        let id = VarId(self.variables.len() as u32);
        self.variables.push(Variable {
            name,
            lower,
            upper,
            integer,
            objective,
        });
        id
    }

    /// Adds the constraint `expr cmp rhs`.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        cmp: Cmp,
        rhs: f64,
    ) -> ConstraintId {
        let id = ConstraintId(self.constraints.len() as u32);
        self.constraints.push(Constraint {
            name: name.into(),
            terms: expr.merged(),
            cmp,
            rhs,
        });
        id
    }

    /// Marks an existing variable as integer (used when tightening a
    /// relaxation into the paper's "mixed" lower bound).
    pub fn set_integer(&mut self, var: VarId, integer: bool) {
        self.variables[var.index()].integer = integer;
    }

    /// Overrides the bounds of a variable (used by branch-and-bound).
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: Option<f64>) {
        assert!(lower.is_finite() && lower >= 0.0);
        self.variables[var.index()].lower = lower;
        self.variables[var.index()].upper = upper;
    }

    /// Overrides the objective coefficient of a variable. Objective
    /// edits keep a stored revised-simplex basis structurally valid, so
    /// sibling re-solves after this call take the warm-start fast path.
    pub fn set_objective(&mut self, var: VarId, objective: f64) {
        self.variables[var.index()].objective = objective;
    }

    /// Overrides the right-hand side of a constraint. Like objective
    /// edits, right-hand-side edits preserve the constraint matrix and
    /// therefore warm-startability.
    pub fn set_rhs(&mut self, c: ConstraintId, rhs: f64) {
        self.constraints[c.index()].rhs = rhs;
    }

    /// Iterates over all constraint ids.
    pub fn constraint_ids(&self) -> impl Iterator<Item = ConstraintId> + '_ {
        (0..self.constraints.len()).map(|i| ConstraintId(i as u32))
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Access to a variable's metadata.
    pub fn variable(&self, var: VarId) -> &Variable {
        &self.variables[var.index()]
    }

    /// Access to a constraint.
    pub fn constraint(&self, c: ConstraintId) -> &Constraint {
        &self.constraints[c.index()]
    }

    /// Iterates over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.variables.len()).map(|i| VarId(i as u32))
    }

    /// Ids of the integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.var_ids()
            .filter(|v| self.variables[v.index()].integer)
            .collect()
    }

    /// Returns `true` if no variable is marked integer.
    pub fn is_pure_lp(&self) -> bool {
        self.variables.iter().all(|v| !v.integer)
    }

    /// Evaluates the objective for a dense assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.variables
            .iter()
            .enumerate()
            .map(|(i, v)| v.objective * values[i])
            .sum()
    }

    /// Checks whether a dense assignment satisfies every constraint and
    /// variable bound within `tol`. Mostly used by tests and debug
    /// assertions.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (i, v) in self.variables.iter().enumerate() {
            if values[i] < v.lower - tol {
                return false;
            }
            if let Some(ub) = v.upper {
                if values[i] > ub + tol {
                    return false;
                }
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, k)| k * values[v.index()]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sense = match self.sense {
            Sense::Minimize => "minimize",
            Sense::Maximize => "maximize",
        };
        writeln!(f, "{sense}")?;
        let obj: Vec<String> = self
            .variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.objective != 0.0)
            .map(|(i, v)| format!("{:+} {}", v.objective, display_name(&v.name, i)))
            .collect();
        writeln!(f, "  {}", obj.join(" "))?;
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            let lhs: Vec<String> = c
                .terms
                .iter()
                .map(|(v, k)| {
                    format!(
                        "{:+} {}",
                        k,
                        display_name(&self.variables[v.index()].name, v.index())
                    )
                })
                .collect();
            writeln!(f, "  {}: {} {} {}", c.name, lhs.join(" "), c.cmp, c.rhs)?;
        }
        writeln!(f, "bounds")?;
        for (i, v) in self.variables.iter().enumerate() {
            let kind = if v.integer { "int" } else { "cont" };
            match v.upper {
                Some(ub) => writeln!(
                    f,
                    "  {} <= {} <= {} ({kind})",
                    v.lower,
                    display_name(&v.name, i),
                    ub
                )?,
                None => writeln!(f, "  {} <= {} ({kind})", v.lower, display_name(&v.name, i))?,
            }
        }
        Ok(())
    }
}

fn display_name(name: &str, index: usize) -> String {
    if name.is_empty() {
        format!("x{index}")
    } else {
        name.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lin_expr_merges_duplicate_terms() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        let expr = LinExpr::var(x).plus(2.0, y).plus(3.0, x).plus(-2.0, y);
        let merged = expr.merged();
        assert_eq!(merged, vec![(x, 4.0)]);
    }

    #[test]
    fn lin_sum_builds_expressions() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 0.0);
        let y = m.add_var("y", 0.0, None, 0.0);
        let expr = lin_sum([(1.5, x), (2.5, y)]);
        assert_eq!(expr.num_terms(), 2);
        assert!((expr.evaluate(&[2.0, 4.0]) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn model_tracks_vars_and_constraints() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(10.0), 3.0);
        let b = m.add_binary_var("b", 5.0);
        let k = m.add_int_var("k", 0.0, Some(7.0), 0.0);
        assert_eq!(m.num_vars(), 3);
        assert!(m.variable(b).integer);
        assert!(m.variable(k).integer);
        assert!(!m.variable(x).integer);
        assert_eq!(m.integer_vars(), vec![b, k]);
        assert!(!m.is_pure_lp());

        let c = m.add_constraint("cap", LinExpr::var(x).plus(1.0, b), Cmp::Le, 4.0);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.constraint(c).terms.len(), 2);
        assert_eq!(m.constraint(c).cmp, Cmp::Le);
    }

    #[test]
    fn objective_and_feasibility_evaluation() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(5.0), 2.0);
        let y = m.add_var("y", 1.0, None, 3.0);
        m.add_constraint("c1", LinExpr::var(x).plus(1.0, y), Cmp::Ge, 3.0);
        m.add_constraint("c2", LinExpr::var(x).plus(-1.0, y), Cmp::Le, 1.0);

        let point = vec![2.0, 1.5];
        assert!((m.objective_value(&point) - 8.5).abs() < 1e-12);
        assert!(m.is_feasible(&point, 1e-9));
        // Violates c1.
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9));
        // Violates y lower bound.
        assert!(!m.is_feasible(&[3.0, 0.0], 1e-9));
        // Violates x upper bound.
        assert!(!m.is_feasible(&[6.0, 1.0], 1e-9));
        // Wrong dimension.
        assert!(!m.is_feasible(&[1.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite and non-negative")]
    fn negative_lower_bound_is_rejected() {
        let mut m = Model::minimize();
        m.add_var("bad", -1.0, None, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and >= lower bound")]
    fn inverted_bounds_are_rejected() {
        let mut m = Model::minimize();
        m.add_var("bad", 2.0, Some(1.0), 0.0);
    }

    #[test]
    fn set_bounds_and_set_integer() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        m.set_bounds(x, 1.0, Some(2.0));
        assert_eq!(m.variable(x).lower, 1.0);
        assert_eq!(m.variable(x).upper, Some(2.0));
        m.set_integer(x, true);
        assert!(m.variable(x).integer);
        m.set_integer(x, false);
        assert!(m.is_pure_lp());
    }

    #[test]
    fn display_contains_all_sections() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(1.0), 1.0);
        let y = m.add_int_var("y", 0.0, None, 2.0);
        m.add_constraint("c", LinExpr::var(x).plus(1.0, y), Cmp::Ge, 1.0);
        let text = m.to_string();
        assert!(text.contains("minimize"));
        assert!(text.contains("subject to"));
        assert!(text.contains("bounds"));
        assert!(text.contains("c:"));
        assert!(text.contains("(int)"));
        assert!(text.contains("(cont)"));
    }
}
