//! Solver-engine selection.
//!
//! Two LP engines coexist in this crate:
//!
//! * [`LpEngine::DenseTableau`] — the original full-tableau two-phase
//!   simplex ([`crate::simplex`]). `O(m·n)` per pivot with upper bounds
//!   materialised as extra rows; simple, battle-tested, and kept as the
//!   **differential-testing oracle** for the revised engine.
//! * [`LpEngine::Revised`] — the bounded-variable revised simplex with
//!   an LU-factorised basis ([`crate::revised`]). The default: it keeps
//!   `m` at the constraint count (no bound rows) and supports
//!   warm-started branch-and-bound.
//!
//! [`LpWorkspace`] bundles one reusable workspace per engine so callers
//! that sweep over many models (the experiment harness, benchmarks) can
//! switch engines without reallocating.

use crate::error::LpError;
use crate::model::Model;
use crate::revised::{solve_lp_revised_reusing, RevisedWorkspace};
use crate::simplex::{solve_lp_reusing, SimplexOptions, SimplexWorkspace};
use crate::solution::{Solution, Status};

/// Which LP engine to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LpEngine {
    /// Dense full-tableau two-phase simplex (the differential oracle).
    DenseTableau,
    /// Bounded-variable revised simplex with a factorised basis.
    #[default]
    Revised,
}

impl std::fmt::Display for LpEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpEngine::DenseTableau => write!(f, "dense-tableau"),
            LpEngine::Revised => write!(f, "revised"),
        }
    }
}

/// Reusable buffers for both engines. Only the engine actually used
/// allocates anything.
#[derive(Default)]
pub struct LpWorkspace {
    /// The dense tableau workspace.
    pub dense: SimplexWorkspace,
    /// The revised-simplex workspace (factorisation, basis, scratch).
    pub revised: RevisedWorkspace,
}

impl LpWorkspace {
    /// A fresh workspace for either engine.
    pub fn new() -> Self {
        LpWorkspace::default()
    }
}

/// Solves the continuous relaxation of `model` with the selected engine,
/// reusing `workspace`'s buffers.
pub fn solve_lp_engine(
    model: &Model,
    engine: LpEngine,
    options: &SimplexOptions,
    workspace: &mut LpWorkspace,
) -> Solution {
    match engine {
        LpEngine::DenseTableau => solve_lp_reusing(model, options, &mut workspace.dense),
        LpEngine::Revised => solve_lp_revised_reusing(model, options, &mut workspace.revised),
    }
}

/// Which rung of the hardened escalation ladder produced an answer.
/// See [`solve_lp_hardened`] for the ladder itself.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EscalationRung {
    /// The checked revised solve answered directly, with no forced
    /// refactorisation along the way.
    CheckedRevised,
    /// The revised solve answered, but only after at least one refused
    /// Forrest–Tomlin update forced a refactor-retry inside the engine.
    RefactorRetry,
    /// The dense-tableau oracle answered after the revised engine
    /// stopped with a solver-internal failure.
    DenseOracle,
}

impl EscalationRung {
    /// The wire name used in metrics and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            EscalationRung::CheckedRevised => "checked_revised",
            EscalationRung::RefactorRetry => "refactor_retry",
            EscalationRung::DenseOracle => "dense_oracle",
        }
    }
}

impl std::fmt::Display for EscalationRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A successful [`solve_lp_hardened`] outcome: the solution plus which
/// escalation rung answered — a healthy instance must answer on
/// [`EscalationRung::CheckedRevised`], and the perf-budget gate fails
/// the build when dense-oracle fallbacks appear where none are allowed.
#[derive(Clone, Debug)]
pub struct HardenedSolve {
    /// The solution the answering engine produced.
    pub solution: Solution,
    /// The rung that produced it.
    pub rung: EscalationRung,
}

/// Hardened solve: revised simplex first, dense-tableau oracle as the
/// safety net.
///
/// The escalation ladder for a failing solve is
///
/// 1. **refactor and retry** — a refused Forrest–Tomlin update already
///    triggers a refactorisation *inside* the revised engine;
/// 2. **dense-oracle fallback** — if the revised engine still stops
///    with a solver-internal failure ([`LpError::SingularBasis`] or
///    [`LpError::NumericalLoss`]), the model is re-solved on the
///    independently implemented dense tableau, whose full elimination
///    does not share the factorisation's failure mode;
/// 3. **typed error** — only when both engines fail does the caller see
///    an `Err`.
///
/// The returned [`HardenedSolve`] names the rung that answered, and the
/// same classification lands on the `lp.hardened.*` registry counters.
///
/// Budget stops ([`LpError::IterationLimit`] /
/// [`LpError::DeadlineExceeded`]) are *intentional* and never retried —
/// the best primal point found is returned when one exists, the typed
/// error otherwise.
pub fn solve_lp_hardened(
    model: &Model,
    options: &SimplexOptions,
    workspace: &mut LpWorkspace,
) -> Result<HardenedSolve, LpError> {
    let solution = solve_lp_revised_reusing(model, options, &mut workspace.revised);
    // A refused FT update that forced a mid-solve refactorisation is
    // the ladder's first escalation, even though the engine absorbs it
    // internally.
    let revised_rung = if workspace.revised.last_stats().refactor_ft_refused > 0 {
        EscalationRung::RefactorRetry
    } else {
        EscalationRung::CheckedRevised
    };
    let outcome = match workspace.revised.last_error() {
        None => Ok(HardenedSolve {
            solution,
            rung: revised_rung,
        }),
        Some(err @ (LpError::SingularBasis | LpError::NumericalLoss)) => {
            let oracle = solve_lp_reusing(model, options, &mut workspace.dense);
            match oracle.status {
                Status::Optimal | Status::Infeasible | Status::Unbounded => Ok(HardenedSolve {
                    solution: oracle,
                    rung: EscalationRung::DenseOracle,
                }),
                _ => Err(err),
            }
        }
        Some(err) => {
            if solution.has_point() {
                Ok(HardenedSolve {
                    solution,
                    rung: revised_rung,
                })
            } else {
                Err(err)
            }
        }
    };
    rp_obs::incr(match &outcome {
        Ok(answer) => match answer.rung {
            EscalationRung::CheckedRevised => rp_obs::Counter::LpHardenedCheckedRevised,
            EscalationRung::RefactorRetry => rp_obs::Counter::LpHardenedRefactorRetry,
            EscalationRung::DenseOracle => rp_obs::Counter::LpHardenedDenseFallback,
        },
        Err(_) => rp_obs::Counter::LpHardenedError,
    });
    // Reaching the dense oracle means the revised engine lost the
    // factorisation — rare enough that every occurrence is worth a
    // flight-recorder dump.
    if matches!(
        &outcome,
        Ok(answer) if answer.rung == EscalationRung::DenseOracle
    ) {
        rp_obs::note_anomaly(rp_obs::AnomalyKind::DenseOracle);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{lin_sum, Cmp, Model};
    use crate::solution::Status;

    #[test]
    fn both_engines_agree_through_the_facade() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(4.0), 2.0);
        let y = m.add_var("y", 0.0, None, 3.0);
        m.add_constraint("c", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 6.0);
        let mut ws = LpWorkspace::new();
        let options = SimplexOptions::default();
        let dense = solve_lp_engine(&m, LpEngine::DenseTableau, &options, &mut ws);
        let revised = solve_lp_engine(&m, LpEngine::Revised, &options, &mut ws);
        assert_eq!(dense.status, Status::Optimal);
        assert_eq!(revised.status, Status::Optimal);
        assert!((dense.objective - revised.objective).abs() < 1e-6);
    }

    #[test]
    fn hardened_solves_agree_with_the_plain_engine_when_healthy() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(4.0), 2.0);
        let y = m.add_var("y", 0.0, None, 3.0);
        m.add_constraint("c", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 6.0);
        let mut ws = LpWorkspace::new();
        let options = SimplexOptions::default();
        let hardened = solve_lp_hardened(&m, &options, &mut ws).expect("healthy solve");
        assert_eq!(hardened.solution.status, Status::Optimal);
        // A healthy instance answers on the first rung — no dense
        // fallback, no FT-refused refactor-retry.
        assert_eq!(hardened.rung, EscalationRung::CheckedRevised);
        let plain = solve_lp_engine(&m, LpEngine::Revised, &options, &mut ws);
        assert!((hardened.solution.objective - plain.objective).abs() < 1e-9);
    }

    #[test]
    fn hardened_solves_surface_budget_stops_as_typed_errors() {
        use crate::error::SolveBudget;
        use std::time::Duration;
        // Two overlapping >= rows force real phase-1 pivots (the crash
        // pass cannot cover either row), so the zero deadline expires
        // before any feasible point exists.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("c1", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 4.0);
        m.add_constraint("c2", lin_sum([(1.0, x), (2.0, y)]), Cmp::Ge, 6.0);
        let options = SimplexOptions {
            budget: SolveBudget::with_deadline(Duration::ZERO),
            ..SimplexOptions::default()
        };
        let mut ws = LpWorkspace::new();
        let err = solve_lp_hardened(&m, &options, &mut ws).unwrap_err();
        assert_eq!(err, LpError::DeadlineExceeded);
    }

    #[test]
    fn engine_metadata() {
        assert_eq!(LpEngine::default(), LpEngine::Revised);
        assert_eq!(LpEngine::Revised.to_string(), "revised");
        assert_eq!(LpEngine::DenseTableau.to_string(), "dense-tableau");
        assert_eq!(
            EscalationRung::CheckedRevised.to_string(),
            "checked_revised"
        );
        assert_eq!(EscalationRung::RefactorRetry.to_string(), "refactor_retry");
        assert_eq!(EscalationRung::DenseOracle.to_string(), "dense_oracle");
    }
}
