//! Typed solver failures and solve budgets.
//!
//! # `LpError` semantics
//!
//! Historically every abnormal stop of the revised simplex collapsed
//! into [`Status::IterationLimit`], which made "the basis went
//! singular" indistinguishable from "the caller's iteration cap was too
//! small". [`LpError`] names the four distinct ways a solve can stop
//! without a proven answer:
//!
//! * [`LpError::SingularBasis`] — the sparse LU refactorisation of the
//!   current basis failed. The basis matrix is (numerically) rank
//!   deficient, so no further pivots are possible on this
//!   factorisation. The hardened entry point
//!   ([`crate::solve_lp_hardened`]) reacts by re-solving on the dense
//!   tableau oracle, whose independent elimination usually survives.
//! * [`LpError::IterationLimit`] — the per-phase pivot cap
//!   ([`crate::SimplexOptions::max_iterations`]) or the whole-solve cap
//!   ([`SolveBudget::max_iterations`]) ran out before convergence.
//! * [`LpError::DeadlineExceeded`] — the wall-clock deadline of
//!   [`SolveBudget::deadline`] passed. Deadline stops are *intentional*
//!   — the caller asked for an anytime answer — so they are never
//!   retried on the oracle; the best primal point found so far is
//!   returned instead (see below).
//! * [`LpError::NumericalLoss`] — internal cross-checks disagreed: the
//!   phase-1 objective (bounded below by zero) priced as unbounded, the
//!   dual ratio test's BTRAN row contradicted the FTRAN column, or the
//!   pricing state desynchronised from the basis. The factorisation is
//!   not trustworthy; the hardened entry point falls back to the dense
//!   oracle.
//!
//! Whatever the reason, the typed value is recorded on the workspace
//! ([`crate::RevisedWorkspace::last_error`]) *in addition to* the
//! conservative [`Status`] carried by the returned [`Solution`] — the
//! status-based API stays unchanged for existing callers, and
//! [`crate::solve_lp_revised_checked`] surfaces the error as a `Result`
//! for callers that want to handle it.
//!
//! # Budgets return the best bound so far
//!
//! A budget stop during phase 2 (or the warm-start polish) happens at a
//! *primal-feasible* basis — bounded primal simplex never leaves the
//! feasible region once phase 1 ends — so the solve extracts and
//! returns that point rather than discarding the work: the solution
//! carries `values`, its true `objective`, and a non-`Optimal` status.
//! For a minimisation this objective is an upper bound on the optimum
//! (and vice versa), which is exactly what anytime callers such as the
//! failure-repair pass need. A stop during phase 1 has no feasible
//! point yet and returns a status-only solution.
//!
//! A deadline stop during the **warm dual cleanup** (the sibling /
//! delta-resolve path, where only bounds or right-hand sides changed)
//! returns the *dual-side* best bound: every basis the dual simplex
//! visits is dual feasible, so by weak duality the objective of its
//! basic solution bounds the optimum from the other side — a lower
//! bound for a minimisation. The solution carries that value with **no
//! point** ([`crate::Solution::bound_only`];
//! [`crate::Solution::has_point`] is `false`, since the basic solution
//! is primal infeasible mid-cleanup), and the basis stays warm so the
//! next delta or a retry with a larger budget resumes where the clock
//! ran out. This is what lets the online engine bound its per-delta
//! work without ever running long under churn.
//!
//! [`Status`]: crate::Status
//! [`Status::IterationLimit`]: crate::Status::IterationLimit
//! [`Solution`]: crate::Solution

use std::fmt;
use std::time::Duration;

use crate::solution::Status;

/// Why a solve stopped without a proven answer. See the
/// [module docs](self) for the semantics of each variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpError {
    /// The basis factorisation is (numerically) singular.
    SingularBasis,
    /// A pivot-iteration cap ran out before convergence.
    IterationLimit,
    /// The wall-clock deadline of the [`SolveBudget`] passed.
    DeadlineExceeded,
    /// Internal numerical cross-checks disagreed; the factorisation is
    /// not trustworthy.
    NumericalLoss,
}

impl LpError {
    /// The conservative [`Status`] this error maps to on the
    /// status-based API: deadline stops get their own variant, every
    /// other failure keeps the historical `IterationLimit` reporting.
    pub fn status(self) -> Status {
        match self {
            LpError::DeadlineExceeded => Status::DeadlineExceeded,
            LpError::SingularBasis | LpError::IterationLimit | LpError::NumericalLoss => {
                Status::IterationLimit
            }
        }
    }
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpError::SingularBasis => "basis factorisation is singular",
            LpError::IterationLimit => "iteration budget exhausted before convergence",
            LpError::DeadlineExceeded => "wall-clock deadline exceeded",
            LpError::NumericalLoss => "numerical accuracy lost (internal cross-checks disagree)",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for LpError {}

/// A whole-solve resource budget: wall-clock deadline and/or a cap on
/// total simplex iterations (both phases, warm-start cleanup included).
///
/// The default budget is unlimited, so existing callers are unaffected.
/// Unlike [`crate::SimplexOptions::max_iterations`] — a *per-phase*
/// pivot cap — the budget is charged across the entire solve, and a
/// budget stop returns the best primal point found so far (see the
/// [module docs](self)). Honoured by the revised engine; the dense
/// tableau oracle ignores it, like the other revised-only options.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SolveBudget {
    /// Wall-clock allowance for the whole solve, measured from entry.
    /// `None` means no deadline.
    pub deadline: Option<Duration>,
    /// Total simplex iterations (pivots and bound flips, all phases)
    /// allowed for the whole solve. `None` means no cap.
    pub max_iterations: Option<usize>,
}

impl SolveBudget {
    /// The default: no deadline, no iteration cap.
    pub const UNLIMITED: SolveBudget = SolveBudget {
        deadline: None,
        max_iterations: None,
    };

    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        SolveBudget {
            deadline: Some(deadline),
            ..SolveBudget::UNLIMITED
        }
    }

    /// A budget with only a whole-solve iteration cap.
    pub fn with_iterations(max_iterations: usize) -> Self {
        SolveBudget {
            max_iterations: Some(max_iterations),
            ..SolveBudget::UNLIMITED
        }
    }

    /// `true` when neither limit is set (the fast path: no per-pivot
    /// clock reads).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_iterations.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_status_mapping() {
        assert_eq!(
            LpError::SingularBasis.to_string(),
            "basis factorisation is singular"
        );
        assert_eq!(LpError::DeadlineExceeded.status(), Status::DeadlineExceeded);
        assert_eq!(LpError::SingularBasis.status(), Status::IterationLimit);
        assert_eq!(LpError::NumericalLoss.status(), Status::IterationLimit);
        assert_eq!(LpError::IterationLimit.status(), Status::IterationLimit);
    }

    #[test]
    fn budget_constructors() {
        assert!(SolveBudget::UNLIMITED.is_unlimited());
        assert!(SolveBudget::default().is_unlimited());
        let d = SolveBudget::with_deadline(Duration::from_millis(5));
        assert!(!d.is_unlimited());
        assert_eq!(d.max_iterations, None);
        let i = SolveBudget::with_iterations(100);
        assert!(!i.is_unlimited());
        assert_eq!(i.deadline, None);
    }
}
