//! # rp-lp — linear programming substrate
//!
//! A small, dependency-free LP/MILP toolkit used by `rp-core` to express
//! the integer-linear-program formulations of the replica-placement
//! problem (Section 5 of the paper) and to compute the LP-based lower
//! bound of Section 7.1.
//!
//! * [`Model`] — variables (continuous or integer, bounded), linear
//!   constraints, linear objective.
//! * [`solve_lp`] — dense two-phase primal simplex for the continuous
//!   relaxation.
//! * [`solve_milp`] — LP-based branch-and-bound over the declared
//!   integer variables, reporting both the best incumbent and a proven
//!   bound.
//!
//! The paper used off-the-shelf solvers (GLPK / Maple); this crate is a
//! from-scratch replacement sized for the formulations at hand, so the
//! whole reproduction remains self-contained (see DESIGN.md).
//!
//! ```
//! use rp_lp::{Model, LinExpr, Cmp, Sense, solve_milp};
//!
//! // Minimise the number of bins of capacity 10 needed for items 6, 5, 4.
//! let mut m = Model::minimize();
//! let bins: Vec<_> = (0..3).map(|b| m.add_binary_var(format!("bin{b}"), 1.0)).collect();
//! let mut assign = vec![];
//! for item in 0..3 {
//!     let row: Vec<_> = (0..3)
//!         .map(|b| m.add_binary_var(format!("item{item}_in{b}"), 0.0))
//!         .collect();
//!     let expr = row.iter().fold(LinExpr::new(), |e, &v| e.plus(1.0, v));
//!     m.add_constraint(format!("assign{item}"), expr, Cmp::Eq, 1.0);
//!     assign.push(row);
//! }
//! let sizes = [6.0, 5.0, 4.0];
//! for b in 0..3 {
//!     let mut expr = LinExpr::new();
//!     for item in 0..3 {
//!         expr.add_term(sizes[item], assign[item][b]);
//!     }
//!     expr.add_term(-10.0, bins[b]);
//!     m.add_constraint(format!("cap{b}"), expr, Cmp::Le, 0.0);
//! }
//! let out = solve_milp(&m);
//! assert_eq!(out.objective().unwrap().round() as i64, 2);
//! let _ = Sense::Minimize;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod branch_bound;
mod model;
mod simplex;
mod solution;

pub use branch_bound::{solve_milp, solve_milp_with, BranchBoundOptions, MilpOutcome};
pub use model::{lin_sum, Cmp, Constraint, ConstraintId, LinExpr, Model, Sense, VarId, Variable};
pub use simplex::{solve_lp, solve_lp_reusing, solve_lp_with, SimplexOptions, SimplexWorkspace};
pub use solution::{Solution, Status};
