//! # rp-lp — linear programming substrate
//!
//! A small, dependency-free LP/MILP toolkit used by `rp-core` to express
//! the integer-linear-program formulations of the replica-placement
//! problem (Section 5 of the paper) and to compute the LP-based lower
//! bound of Section 7.1.
//!
//! * [`Model`] — variables (continuous or integer, bounded), linear
//!   constraints, linear objective.
//! * [`solve_lp`] — dense two-phase primal simplex for the continuous
//!   relaxation (the original engine, kept as a differential oracle).
//! * [`solve_lp_revised`] — bounded-variable **revised simplex** with a
//!   factorised basis: the default engine, an order of magnitude faster
//!   on the replica formulations (see below).
//! * [`LpEngine`] / [`solve_lp_engine`] — explicit engine selection with
//!   shared, reusable workspaces.
//! * [`solve_milp`] — LP-based branch-and-bound over the declared
//!   integer variables, reporting both the best incumbent and a proven
//!   bound; under the revised engine every node warm-starts from the
//!   previous node's basis.
//!
//! The paper used off-the-shelf solvers (GLPK / Maple); this crate is a
//! from-scratch replacement sized for the formulations at hand, so the
//! whole reproduction remains self-contained (see DESIGN.md).
//!
//! # The revised simplex, and when to pick each engine
//!
//! The dense tableau ([`solve_lp`]) keeps the whole `m × n` eliminated
//! matrix and rewrites it on every pivot (`O(m·n)` work and memory),
//! with every finite variable upper bound materialised as an extra
//! `x_j ≤ u_j` row. The replica-placement relaxations bound *every*
//! variable (`x_j ≤ 1`, `y_{i,j} ≤ r_i`), so those rows **double** `m`
//! and the per-pivot cost — which is what kept paper-scale (`s = 400`)
//! instances out of reach.
//!
//! The revised engine ([`solve_lp_revised`], [`RevisedWorkspace`])
//! removes both costs:
//!
//! * **Implicit bounds** — variables live in `l ≤ x ≤ u` boxes and the
//!   bounded ratio test lets a nonbasic variable *flip* from one bound
//!   to the other without any basis change, so `m` equals the
//!   constraint count alone (half the dense row count on these LPs).
//! * **Sparse Markowitz LU** — the basis is factorised `P·B·Q = L·U`
//!   with Markowitz pivoting (threshold partial pivoting with `u=0.1`,
//!   Suhl-style shortest-column search, singleton fast paths), so both
//!   the factorisation work and the factor storage scale with the
//!   nonzeros rather than `m³`/`m²`. The tree-structured replica bases
//!   triangularise almost perfectly: at `s = 2000` (m = 2000 rows) `L`
//!   holds **zero** off-diagonal entries and `U` under `2 nnz/row`, and
//!   one refactorisation costs ~140 µs where a dense LU would pay
//!   seconds.
//! * **Forrest–Tomlin updates** — a basis change replaces a column of
//!   `U` with the FTRAN's intermediate spike, eliminates the spiked row
//!   with a short **row eta**, and cycles that step to the back of the
//!   elimination order. `U` stays genuinely triangular across hundreds
//!   of updates (unlike a product-form eta file, whose solve cost grows
//!   with every eta), and a numerically unsafe update is refused,
//!   triggering a refactorisation (cadence: every 256 updates — the
//!   hyper-sparse solves keep eta-file growth cheap enough that a long
//!   cadence wins).
//! * **Hyper-sparse solves** — both factors are stored column-wise and
//!   row-wise, and all four triangular solves run in scatter form,
//!   skipping every position whose running value is exactly zero: an
//!   FTRAN/BTRAN with a sparse right-hand side costs close to the
//!   nonzeros it touches plus one `O(m)` sweep.
//! * **Incremental pricing** — reduced costs are maintained by the
//!   rank-one update `d ← d − (d_q/α_q)·α` per pivot, with the pivot
//!   row `α = Aᵀ B⁻ᵀ e_r` computed row-wise over the nonzeros of
//!   `B⁻ᵀe_r` only. A pricing pass is a flat `O(n)` scan; the full
//!   `O(nnz)` recomputation happens only at phase starts and
//!   refactorisations (plus once to confirm optimality).
//! * **Partial pricing** ([`Pricing`], default `Partial`) —
//!   candidate-list multiple pricing on top of Forrest–Goldfarb devex
//!   weights: a full `O(n)` scan runs only to rebuild a small queue of
//!   the most attractive columns, and ordinary iterations re-price just
//!   the queue. Optimality is still only ever declared by a full scan,
//!   so the rule changes the pivot order but never the answer. Full
//!   devex, Dantzig and Bland remain selectable, and the differential
//!   proptests pin all of them to the same objective. (On the replica
//!   relaxations themselves the constraint matrices are near-unimodular
//!   — every tableau entry is ±1 — so the devex weights provably stay
//!   at 1 and devex coincides with Dantzig; `BENCH_sparse.json` records
//!   both this equality and the devex win on an ill-scaled family, and
//!   `BENCH_pricing.json` tracks every rule pair at `s = 400/2000`.)
//! * **Dual cold start, dual devex and the bound-flipping ratio test**
//!   — when the phase-2 costs are already dual feasible at the bound
//!   point (true of all the min-cost replica relaxations), the solve
//!   skips both primal phases and runs the dual simplex straight from
//!   the slack basis. The leaving row comes from **dual devex** row
//!   weights ([`DualPricing`], default) over an incrementally
//!   maintained candidate list of violated rows (no `O(m)` rescan per
//!   iteration), measured in *model units* so equilibration cannot bend
//!   the pivot path; the entering column comes from a **bound-flipping
//!   dual ratio test** that walks the pivot row's breakpoints and flips
//!   boxed columns for longer dual steps. This is what broke the
//!   pricing wall: the `s = 2000` bandwidth bound dropped from ~700 ms
//!   to under 50 ms (see `perf-budget.toml`).
//! * **Presolve** ([`SimplexOptions::presolve`], on by default) —
//!   singleton rows become bound tightenings, redundant and forcing
//!   rows (zero-request clients, saturated capacities, nodes with no
//!   eligible clients) are dropped with the variables they pin, and
//!   empty/singleton columns are fixed at their optimal bound; the
//!   postsolve restores every eliminated variable. Branch-and-bound
//!   disables it for node solves, where bound overrides would
//!   invalidate the reductions.
//! * **Crash basis** — instead of one artificial per infeasible row,
//!   the cold start makes a structural column basic in every coverage
//!   equality whose value fits its bounds (block-triangularly, so the
//!   start basis is trivially nonsingular). Phase 1 shrinks from one
//!   artificial per client to a handful of residual rows.
//! * **Geometric-mean equilibration** ([`SimplexOptions::scaling`],
//!   [`Scaling::Auto`] by default) — the bandwidth-constrained and
//!   multi-object formulations over wide-range platforms mix unit
//!   link/cover coefficients with capacities spanning five decades,
//!   so the absolute simplex tolerances stop meaning the same thing in
//!   every row. The scaling pass picks power-of-two row and column
//!   scales by the alternating geometric-mean iteration and solves
//!   `R·A·C`; the solution is unscaled on extraction **exactly**
//!   (powers of two commute with IEEE rounding), which the
//!   equilibration round-trip property test pins. `Auto` only fires
//!   above an entry-spread threshold, so the near-unimodular classic
//!   formulations keep their historical pivot paths bit for bit.
//! * **Micro-size fast path** — below ~50 rows the presolve analysis
//!   and the devex weight machinery cost more than they save (the
//!   documented 10–20% cold-solve overhead at `s ≤ 40`); such solves
//!   skip presolve and price with plain Dantzig automatically, and a
//!   regression test pins the micro-size iteration counts to the
//!   explicit fast-path configuration.
//! * **Warm starts** — a bound change (the only thing branch-and-bound
//!   does between nodes) leaves the reduced costs untouched, so the
//!   parent basis stays dual feasible and a short **dual simplex**
//!   cleanup re-optimises the child node; see
//!   [`RevisedWorkspace::solve_warm`]. The same machinery carries the
//!   basis across **sibling solves** (same constraint matrix, different
//!   objective/rhs/bounds — one tree under several load factors in the
//!   λ-sharded sweep, or consecutive branch-and-bound searches of one
//!   shape): [`solve_lp_revised_reusing`] and
//!   [`solve_milp_reusing`] re-solve with a refactorisation plus a few
//!   cleanup pivots, falling back to a cold solve on any structural
//!   change (verified entry-for-entry in `O(nnz)`).
//!
//! Pick [`LpEngine::Revised`] (the default) for anything but tiny
//! models; pick [`LpEngine::DenseTableau`] when you want a second,
//! independently implemented opinion — the property tests in
//! `tests/proptest_revised_equivalence.rs` pin the two engines (and
//! every pricing rule, presolve on/off, and warm vs cold paths) to each
//! other on random bounded LPs, and `rp-bench`'s `BENCH_revised.json` /
//! `BENCH_sparse.json` track the speedups.
//!
//! ```
//! use rp_lp::{Model, LinExpr, Cmp, Sense, solve_milp};
//!
//! // Minimise the number of bins of capacity 10 needed for items 6, 5, 4.
//! let mut m = Model::minimize();
//! let bins: Vec<_> = (0..3).map(|b| m.add_binary_var(format!("bin{b}"), 1.0)).collect();
//! let mut assign = vec![];
//! for item in 0..3 {
//!     let row: Vec<_> = (0..3)
//!         .map(|b| m.add_binary_var(format!("item{item}_in{b}"), 0.0))
//!         .collect();
//!     let expr = row.iter().fold(LinExpr::new(), |e, &v| e.plus(1.0, v));
//!     m.add_constraint(format!("assign{item}"), expr, Cmp::Eq, 1.0);
//!     assign.push(row);
//! }
//! let sizes = [6.0, 5.0, 4.0];
//! for b in 0..3 {
//!     let mut expr = LinExpr::new();
//!     for item in 0..3 {
//!         expr.add_term(sizes[item], assign[item][b]);
//!     }
//!     expr.add_term(-10.0, bins[b]);
//!     m.add_constraint(format!("cap{b}"), expr, Cmp::Le, 0.0);
//! }
//! let out = solve_milp(&m);
//! assert_eq!(out.objective().unwrap().round() as i64, 2);
//! let _ = Sense::Minimize;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Predates the workspace ban on panicking accessors (see clippy.toml);
// new long-lived code (rp-online, rp-obs) enforces it.
#![allow(clippy::disallowed_methods)]

mod branch_bound;
mod engine;
pub mod error;
mod model;
mod revised;
mod simplex;
mod solution;

pub use branch_bound::{
    solve_milp, solve_milp_reusing, solve_milp_with, BranchBoundOptions, MilpOutcome,
};
pub use engine::{
    solve_lp_engine, solve_lp_hardened, EscalationRung, HardenedSolve, LpEngine, LpWorkspace,
};
pub use error::{LpError, SolveBudget};
pub use model::{lin_sum, Cmp, Constraint, ConstraintId, LinExpr, Model, Sense, VarId, Variable};
pub use revised::{
    solve_lp_revised, solve_lp_revised_checked, solve_lp_revised_reusing, solve_lp_revised_with,
    DualPricing, Pricing, RevisedWorkspace, Scaling, SolveStats, TranCounters, WarmStart,
};
pub use simplex::{solve_lp, solve_lp_reusing, solve_lp_with, SimplexOptions, SimplexWorkspace};
pub use solution::{Solution, Status};
