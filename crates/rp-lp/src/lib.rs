//! # rp-lp — linear programming substrate
//!
//! A small, dependency-free LP/MILP toolkit used by `rp-core` to express
//! the integer-linear-program formulations of the replica-placement
//! problem (Section 5 of the paper) and to compute the LP-based lower
//! bound of Section 7.1.
//!
//! * [`Model`] — variables (continuous or integer, bounded), linear
//!   constraints, linear objective.
//! * [`solve_lp`] — dense two-phase primal simplex for the continuous
//!   relaxation (the original engine, kept as a differential oracle).
//! * [`solve_lp_revised`] — bounded-variable **revised simplex** with a
//!   factorised basis: the default engine, an order of magnitude faster
//!   on the replica formulations (see below).
//! * [`LpEngine`] / [`solve_lp_engine`] — explicit engine selection with
//!   shared, reusable workspaces.
//! * [`solve_milp`] — LP-based branch-and-bound over the declared
//!   integer variables, reporting both the best incumbent and a proven
//!   bound; under the revised engine every node warm-starts from the
//!   previous node's basis.
//!
//! The paper used off-the-shelf solvers (GLPK / Maple); this crate is a
//! from-scratch replacement sized for the formulations at hand, so the
//! whole reproduction remains self-contained (see DESIGN.md).
//!
//! # The revised simplex, and when to pick each engine
//!
//! The dense tableau ([`solve_lp`]) keeps the whole `m × n` eliminated
//! matrix and rewrites it on every pivot (`O(m·n)` work and memory),
//! with every finite variable upper bound materialised as an extra
//! `x_j ≤ u_j` row. The replica-placement relaxations bound *every*
//! variable (`x_j ≤ 1`, `y_{i,j} ≤ r_i`), so those rows **double** `m`
//! and the per-pivot cost — which is what kept paper-scale (`s = 400`)
//! instances out of reach.
//!
//! The revised engine ([`solve_lp_revised`], [`RevisedWorkspace`])
//! removes both costs:
//!
//! * **Implicit bounds** — variables live in `l ≤ x ≤ u` boxes and the
//!   bounded ratio test lets a nonbasic variable *flip* from one bound
//!   to the other without any basis change, so `m` equals the
//!   constraint count alone (half the dense row count on these LPs).
//! * **Factorised basis** — instead of the eliminated tableau the
//!   engine keeps an LU factorisation `P·B = L·U` of the basis plus a
//!   product-form **eta file**: each pivot appends one eta vector
//!   (`O(m)`) rather than rewriting `O(m·n)` entries. FTRAN/BTRAN
//!   solves cost `O(m² + k·m)` for `k` etas.
//! * **Hyper-sparse solves** — the LU factors are stored as sparse
//!   column lists and the forward/backward scatter solves skip
//!   positions whose running value is exactly zero, so an FTRAN with a
//!   sparse right-hand side (an entering column, a unit vector) costs
//!   close to the nonzeros it touches. The tree-structured replica
//!   bases barely fill in, which is where the order-of-magnitude win
//!   over the (zero-skipping, but `O(m·n)`-per-pivot) tableau comes
//!   from.
//! * **Crash basis** — instead of one artificial per infeasible row,
//!   the cold start makes a structural column basic in every coverage
//!   equality whose value fits its bounds (block-triangularly, so the
//!   start basis is trivially nonsingular). Phase 1 shrinks from one
//!   artificial per client to a handful of residual rows.
//! * **Refactorisation cadence** — every 64 eta updates the basis is
//!   refactorised from its columns and the basic values are recomputed
//!   from the right-hand side, bounding both the eta-file length and
//!   the accumulated floating-point drift.
//! * **Warm starts** — a bound change (the only thing branch-and-bound
//!   does between nodes) leaves the reduced costs untouched, so the
//!   parent basis stays dual feasible and a short **dual simplex**
//!   cleanup re-optimises the child node; see
//!   [`RevisedWorkspace::solve_warm`].
//!
//! Pick [`LpEngine::Revised`] (the default) for anything but tiny
//! models; pick [`LpEngine::DenseTableau`] when you want a second,
//! independently implemented opinion — the property tests in
//! `tests/proptest_revised_equivalence.rs` pin the two engines to each
//! other on random bounded LPs, and `rp-bench`'s `BENCH_revised.json`
//! tracks the speedup.
//!
//! ```
//! use rp_lp::{Model, LinExpr, Cmp, Sense, solve_milp};
//!
//! // Minimise the number of bins of capacity 10 needed for items 6, 5, 4.
//! let mut m = Model::minimize();
//! let bins: Vec<_> = (0..3).map(|b| m.add_binary_var(format!("bin{b}"), 1.0)).collect();
//! let mut assign = vec![];
//! for item in 0..3 {
//!     let row: Vec<_> = (0..3)
//!         .map(|b| m.add_binary_var(format!("item{item}_in{b}"), 0.0))
//!         .collect();
//!     let expr = row.iter().fold(LinExpr::new(), |e, &v| e.plus(1.0, v));
//!     m.add_constraint(format!("assign{item}"), expr, Cmp::Eq, 1.0);
//!     assign.push(row);
//! }
//! let sizes = [6.0, 5.0, 4.0];
//! for b in 0..3 {
//!     let mut expr = LinExpr::new();
//!     for item in 0..3 {
//!         expr.add_term(sizes[item], assign[item][b]);
//!     }
//!     expr.add_term(-10.0, bins[b]);
//!     m.add_constraint(format!("cap{b}"), expr, Cmp::Le, 0.0);
//! }
//! let out = solve_milp(&m);
//! assert_eq!(out.objective().unwrap().round() as i64, 2);
//! let _ = Sense::Minimize;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod branch_bound;
mod engine;
mod model;
mod revised;
mod simplex;
mod solution;

pub use branch_bound::{
    solve_milp, solve_milp_reusing, solve_milp_with, BranchBoundOptions, MilpOutcome,
};
pub use engine::{solve_lp_engine, LpEngine, LpWorkspace};
pub use model::{lin_sum, Cmp, Constraint, ConstraintId, LinExpr, Model, Sense, VarId, Variable};
pub use revised::{
    solve_lp_revised, solve_lp_revised_reusing, solve_lp_revised_with, RevisedWorkspace,
};
pub use simplex::{solve_lp, solve_lp_reusing, solve_lp_with, SimplexOptions, SimplexWorkspace};
pub use solution::{Solution, Status};
