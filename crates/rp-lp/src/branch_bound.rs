//! Branch-and-bound for mixed-integer linear programs.
//!
//! The replica-placement formulations only declare a modest number of
//! integer variables (the replica indicators `x_j`, one per internal
//! node), so a straightforward LP-based branch-and-bound is sufficient:
//! solve the continuous relaxation, branch on the most fractional
//! integer variable, and explore the resulting subtree depth-first
//! while pruning with the incumbent.
//!
//! Two relaxation engines are available (see [`crate::engine`]):
//!
//! * with [`LpEngine::Revised`] (the default) every node after the root
//!   **warm-starts from the previously solved node's basis**: a bound
//!   change keeps the basis dual feasible, so a short dual-simplex
//!   cleanup replaces the full two-phase solve — usually a handful of
//!   pivots per node;
//! * with [`LpEngine::DenseTableau`] every node re-runs the dense
//!   two-phase simplex (the slower differential oracle).
//!
//! The solver reports both the best incumbent and the best proven bound,
//! which is exactly what the paper's "mixed" lower bound (Section 7.1)
//! needs: even when the node limit stops the search early, the weakest
//! open-node relaxation value is still a valid lower bound on the
//! optimal integer objective.

use crate::engine::{solve_lp_engine, LpEngine, LpWorkspace};
use crate::model::{Model, Sense, VarId};
use crate::simplex::SimplexOptions;
use crate::solution::{Solution, Status};

/// Options for the branch-and-bound search.
#[derive(Clone, Copy, Debug)]
pub struct BranchBoundOptions {
    /// LP sub-solver options. Presolve is always disabled for the node
    /// relaxations (per-node bound changes would invalidate the
    /// reductions); the flag still applies to pure-LP pass-throughs.
    pub simplex: SimplexOptions,
    /// Which LP engine solves the node relaxations.
    pub engine: LpEngine,
    /// Maximum number of explored nodes before giving up.
    pub max_nodes: usize,
    /// Integrality tolerance: a value within this distance of an integer
    /// is considered integral.
    pub integrality_tolerance: f64,
    /// Keep the basis stored in the workspace across **sibling
    /// searches** ([`solve_milp_reusing`] called repeatedly on models
    /// of the same shape): when only the objective, right-hand sides or
    /// bounds changed since the previous search — the λ-sharded sweep
    /// re-solving one tree under a different load factor — the root
    /// relaxation warm-starts with a refactorisation and a short dual
    /// cleanup instead of a cold two-phase solve. Structural changes
    /// are detected (`O(nnz)`) and fall back to a cold root solve.
    pub warm_across_searches: bool,
}

impl Default for BranchBoundOptions {
    fn default() -> Self {
        BranchBoundOptions {
            simplex: SimplexOptions::default(),
            engine: LpEngine::default(),
            max_nodes: 10_000,
            integrality_tolerance: 1e-6,
            warm_across_searches: true,
        }
    }
}

/// Outcome of a MILP solve, with bound information.
#[derive(Clone, Debug)]
pub struct MilpOutcome {
    /// Best integral solution found (if any), in the original sense.
    pub incumbent: Option<Solution>,
    /// Best proven bound on the optimal objective: a lower bound for
    /// minimisation problems, an upper bound for maximisation problems.
    /// `None` when the root relaxation was infeasible.
    pub bound: Option<f64>,
    /// Overall status.
    pub status: Status,
    /// Number of explored branch-and-bound nodes.
    pub explored_nodes: usize,
}

impl MilpOutcome {
    /// Convenience accessor mirroring [`Solution`]: the objective of the
    /// incumbent, if one was found.
    pub fn objective(&self) -> Option<f64> {
        self.incumbent.as_ref().map(|s| s.objective)
    }
}

/// Solves `model` as a mixed-integer program with default options.
pub fn solve_milp(model: &Model) -> MilpOutcome {
    solve_milp_with(model, &BranchBoundOptions::default())
}

/// Solves `model` as a mixed-integer program.
pub fn solve_milp_with(model: &Model, options: &BranchBoundOptions) -> MilpOutcome {
    let mut workspace = LpWorkspace::new();
    solve_milp_reusing(model, options, &mut workspace)
}

/// [`solve_milp_with`] reusing the LP buffers of `workspace` (the warm
/// branch-and-bound path holds its basis there, so reusing the
/// workspace across many searches also reuses the factorisation
/// buffers).
pub fn solve_milp_reusing(
    model: &Model,
    options: &BranchBoundOptions,
    workspace: &mut LpWorkspace,
) -> MilpOutcome {
    let integer_vars = model.integer_vars();
    if integer_vars.is_empty() {
        let sol = solve_lp_engine(model, options.engine, &options.simplex, workspace);
        let bound = if sol.status == Status::Optimal {
            Some(sol.objective)
        } else {
            None
        };
        let status = sol.status;
        return MilpOutcome {
            incumbent: if sol.has_point() { Some(sol) } else { None },
            bound,
            status,
            explored_nodes: 1,
        };
    }

    let minimise = model.sense() == Sense::Minimize;
    // `better(a, b)`: is objective a strictly better than b?
    let better = |a: f64, b: f64| if minimise { a < b - 1e-9 } else { a > b + 1e-9 };

    #[derive(Clone)]
    struct NodeBounds {
        // (var, lower, upper) overrides relative to the root model.
        overrides: Vec<(VarId, f64, Option<f64>)>,
    }

    let mut stack: Vec<NodeBounds> = vec![NodeBounds { overrides: vec![] }];
    let mut incumbent: Option<Solution> = None;
    let mut explored = 0usize;
    // One scratch model for the whole search: each node applies its
    // bound overrides, solves, and restores — no per-node clone. The
    // LP workspace is likewise shared; under the revised engine it
    // carries the basis of the previously solved node, so each node's
    // relaxation is a warm dual-simplex cleanup rather than a cold
    // two-phase solve. With `warm_across_searches` the basis even
    // survives from the *previous search* of the same shape, making the
    // root relaxation of a sibling search (only objective/rhs/bounds
    // changed) a refactorisation-only fast path.
    let mut scratch = model.clone();
    if !options.warm_across_searches {
        workspace.revised.invalidate();
    }
    // Node relaxations must see the full constraint system: presolve
    // reductions derived from the root bounds would not survive the
    // per-node bound overrides.
    let mut node_simplex = options.simplex;
    node_simplex.presolve = false;
    let mut saved_bounds: Vec<(VarId, f64, Option<f64>)> = Vec::new();
    let mut root_relaxation: Option<f64> = None;
    let mut node_limit_hit = false;
    let mut open_bound: Option<f64> = None;

    while let Some(node) = stack.pop() {
        if explored >= options.max_nodes {
            node_limit_hit = true;
            // Nodes still on the stack were never examined: account for
            // them in the proven bound via their parent relaxations. We
            // conservatively fall back to the root relaxation below.
            break;
        }
        explored += 1;

        // Apply the node's bound overrides on the shared scratch model,
        // remembering the previous bounds for restoration.
        let conflict = node
            .overrides
            .iter()
            .any(|&(_, lower, upper)| matches!(upper, Some(ub) if ub < lower - 1e-12));
        if conflict {
            continue;
        }
        saved_bounds.clear();
        for &(var, lower, upper) in &node.overrides {
            let previous = scratch.variable(var);
            saved_bounds.push((var, previous.lower, previous.upper));
            scratch.set_bounds(var, lower, upper);
        }

        let relaxation = match options.engine {
            // Warm start: the bound overrides are the only difference
            // from the previously solved node, so the stored basis is
            // dual feasible and a dual-simplex cleanup suffices.
            LpEngine::Revised => workspace.revised.solve_warm(&scratch, &node_simplex),
            LpEngine::DenseTableau => {
                solve_lp_engine(&scratch, options.engine, &node_simplex, workspace)
            }
        };

        // Restore in reverse, so repeated overrides of one variable
        // unwind correctly.
        for &(var, lower, upper) in saved_bounds.iter().rev() {
            scratch.set_bounds(var, lower, upper);
        }
        match relaxation.status {
            Status::Infeasible => continue,
            Status::Unbounded => {
                return MilpOutcome {
                    incumbent,
                    bound: None,
                    status: Status::Unbounded,
                    explored_nodes: explored,
                };
            }
            Status::IterationLimit | Status::DeadlineExceeded | Status::NodeLimit => {
                // Treat as an open node we could not fathom.
                node_limit_hit = true;
                continue;
            }
            Status::Optimal => {}
        }
        if root_relaxation.is_none() {
            root_relaxation = Some(relaxation.objective);
        }

        // Prune by bound.
        if let Some(ref inc) = incumbent {
            if !better(relaxation.objective, inc.objective) {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let tol = options.integrality_tolerance;
        let mut branch_var: Option<(VarId, f64, f64)> = None; // (var, value, fractionality)
        for &var in &integer_vars {
            let value = relaxation.value(var);
            let frac = (value - value.round()).abs();
            if frac > tol {
                let distance_to_half = (value.fract() - 0.5).abs();
                match branch_var {
                    Some((_, _, best)) if distance_to_half >= best => {}
                    _ => branch_var = Some((var, value, distance_to_half)),
                }
            }
        }

        match branch_var {
            None => {
                // Integral solution: candidate incumbent. Round the integer
                // coordinates exactly to avoid drift in downstream checks.
                let mut candidate = relaxation;
                for &var in &integer_vars {
                    let v = candidate.values[var.index()].round();
                    candidate.values[var.index()] = v;
                }
                candidate.objective = model.objective_value(&candidate.values);
                let replace = match incumbent {
                    None => true,
                    Some(ref inc) => better(candidate.objective, inc.objective),
                };
                if replace {
                    incumbent = Some(candidate);
                }
            }
            Some((var, value, _)) => {
                let floor = value.floor();
                let ceil = value.ceil();
                let current = current_bounds(model, &node.overrides, var);

                // Down branch: var <= floor.
                let mut down = node.clone();
                let down_upper = Some(match current.1 {
                    Some(ub) => ub.min(floor),
                    None => floor,
                });
                down.overrides.push((var, current.0, down_upper));

                // Up branch: var >= ceil.
                let mut up = node.clone();
                up.overrides.push((var, current.0.max(ceil), current.1));

                // Track the relaxation value as the bound for whatever we
                // may leave unexplored if the node limit hits.
                open_bound = Some(match open_bound {
                    None => relaxation.objective,
                    Some(b) => {
                        if minimise {
                            b.min(relaxation.objective)
                        } else {
                            b.max(relaxation.objective)
                        }
                    }
                });

                // Depth-first: push the branch closer to the fractional
                // value last so it is explored first.
                if value - floor < ceil - value {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    let status = if node_limit_hit {
        Status::NodeLimit
    } else if incumbent.is_some() {
        Status::Optimal
    } else {
        Status::Infeasible
    };

    // Proven bound: if the search completed, the incumbent (or
    // infeasibility) is exact; otherwise fall back to the weakest
    // relaxation observed (or the root relaxation).
    let bound = if node_limit_hit {
        open_bound.or(root_relaxation)
    } else {
        incumbent.as_ref().map(|inc| inc.objective)
    };

    MilpOutcome {
        incumbent,
        bound,
        status,
        explored_nodes: explored,
    }
}

/// Effective bounds of `var` after applying `overrides` in order on top
/// of the root model.
fn current_bounds(
    model: &Model,
    overrides: &[(VarId, f64, Option<f64>)],
    var: VarId,
) -> (f64, Option<f64>) {
    let mut lower = model.variable(var).lower;
    let mut upper = model.variable(var).upper;
    for &(v, lo, up) in overrides {
        if v == var {
            lower = lo;
            upper = up;
        }
    }
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{lin_sum, Cmp, LinExpr, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    /// Every MILP test runs under both engines; the revised path also
    /// exercises the warm-started dual-simplex node solves.
    fn solve_both(m: &Model) -> [MilpOutcome; 2] {
        [LpEngine::DenseTableau, LpEngine::Revised].map(|engine| {
            solve_milp_with(
                m,
                &BranchBoundOptions {
                    engine,
                    ..BranchBoundOptions::default()
                },
            )
        })
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        m.add_constraint("ge", LinExpr::var(x), Cmp::Ge, 2.5);
        for out in solve_both(&m) {
            assert_eq!(out.status, Status::Optimal);
            assert_close(out.objective().unwrap(), 2.5);
            assert_close(out.bound.unwrap(), 2.5);
            assert_eq!(out.explored_nodes, 1);
        }
    }

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary. Best: {b,c} = 20.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary_var("a", 10.0);
        let b = m.add_binary_var("b", 13.0);
        let c = m.add_binary_var("c", 7.0);
        m.add_constraint(
            "weight",
            lin_sum([(3.0, a), (4.0, b), (2.0, c)]),
            Cmp::Le,
            6.0,
        );
        for out in solve_both(&m) {
            assert_eq!(out.status, Status::Optimal);
            assert_close(out.objective().unwrap(), 20.0);
            let sol = out.incumbent.unwrap();
            assert_close(sol.value(a), 0.0);
            assert_close(sol.value(b), 1.0);
            assert_close(sol.value(c), 1.0);
        }
    }

    #[test]
    fn integer_rounding_gap_is_respected() {
        // min x st 2x >= 7, x integer => x = 4 (LP relaxation 3.5).
        let mut m = Model::minimize();
        let x = m.add_int_var("x", 0.0, None, 1.0);
        m.add_constraint("c", lin_sum([(2.0, x)]), Cmp::Ge, 7.0);
        for out in solve_both(&m) {
            assert_eq!(out.status, Status::Optimal);
            assert_close(out.objective().unwrap(), 4.0);
            assert_close(out.bound.unwrap(), 4.0);
        }
    }

    #[test]
    fn infeasible_milp_is_detected() {
        let mut m = Model::minimize();
        let x = m.add_binary_var("x", 1.0);
        m.add_constraint("impossible", LinExpr::var(x), Cmp::Ge, 2.0);
        for out in solve_both(&m) {
            assert_eq!(out.status, Status::Infeasible);
            assert!(out.incumbent.is_none());
            assert!(out.bound.is_none());
        }
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // min 5y + x  st  x >= 3.3 - 3y,  y binary, x >= 0. Optimum 3.3.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        let y = m.add_binary_var("y", 5.0);
        m.add_constraint("c", lin_sum([(1.0, x), (3.0, y)]), Cmp::Ge, 3.3);
        for out in solve_both(&m) {
            assert_eq!(out.status, Status::Optimal);
            assert_close(out.objective().unwrap(), 3.3);
        }
    }

    #[test]
    fn equality_constrained_milp() {
        // x + y = 5, x,y integer, min 3x + 2y => x=0, y=5, cost 10.
        let mut m = Model::minimize();
        let x = m.add_int_var("x", 0.0, None, 3.0);
        let y = m.add_int_var("y", 0.0, None, 2.0);
        m.add_constraint("sum", lin_sum([(1.0, x), (1.0, y)]), Cmp::Eq, 5.0);
        for out in solve_both(&m) {
            assert_eq!(out.status, Status::Optimal);
            assert_close(out.objective().unwrap(), 10.0);
        }
    }

    #[test]
    fn node_limit_still_reports_a_valid_bound() {
        // Vertex cover of a triangle: LP relaxation 1.5, integer optimum 2.
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..3)
            .map(|i| m.add_binary_var(format!("x{i}"), 1.0))
            .collect();
        let edges = [(0, 1), (1, 2), (0, 2)];
        for (i, (a, b)) in edges.iter().enumerate() {
            m.add_constraint(
                format!("edge{i}"),
                lin_sum([(1.0, vars[*a]), (1.0, vars[*b])]),
                Cmp::Ge,
                1.0,
            );
        }
        for engine in [LpEngine::DenseTableau, LpEngine::Revised] {
            let exact = solve_milp_with(
                &m,
                &BranchBoundOptions {
                    engine,
                    ..BranchBoundOptions::default()
                },
            );
            assert_eq!(exact.status, Status::Optimal);
            assert_close(exact.objective().unwrap(), 2.0);

            let limited = solve_milp_with(
                &m,
                &BranchBoundOptions {
                    engine,
                    max_nodes: 1,
                    ..BranchBoundOptions::default()
                },
            );
            assert_eq!(limited.status, Status::NodeLimit);
            let bound = limited.bound.expect("root relaxation bound");
            assert!(
                bound <= 2.0 + 1e-6,
                "bound {bound} must not exceed the optimum"
            );
            assert!(
                bound >= 1.0,
                "bound {bound} should be at least the trivial bound"
            );
        }
    }

    #[test]
    fn maximisation_milp_prunes_correctly() {
        // max 4x + 3y st x + y <= 3.5, x <= 2.2, integers -> x=2, y=1 -> 11.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, Some(2.2), 4.0);
        let y = m.add_int_var("y", 0.0, None, 3.0);
        m.add_constraint("c", lin_sum([(1.0, x), (1.0, y)]), Cmp::Le, 3.5);
        for out in solve_both(&m) {
            assert_eq!(out.status, Status::Optimal);
            assert_close(out.objective().unwrap(), 11.0);
        }
    }

    #[test]
    fn explored_node_count_is_reported() {
        let mut m = Model::minimize();
        let x = m.add_int_var("x", 0.0, None, 1.0);
        m.add_constraint("c", lin_sum([(2.0, x)]), Cmp::Ge, 7.0);
        let out = solve_milp(&m);
        assert!(out.explored_nodes >= 1);
    }

    #[test]
    fn sibling_searches_reuse_the_basis_and_agree_with_cold_runs() {
        // The same constraint matrix under shifting objective/rhs: the
        // warm-across-searches fast path must agree with fresh cold
        // searches, and disabling it must change nothing but the work.
        let build = |profit: f64, budget: f64| {
            let mut m = Model::new(Sense::Maximize);
            let a = m.add_binary_var("a", profit);
            let b = m.add_binary_var("b", 13.0);
            let c = m.add_binary_var("c", 7.0);
            m.add_constraint(
                "w",
                lin_sum([(3.0, a), (4.0, b), (2.0, c)]),
                Cmp::Le,
                budget,
            );
            m
        };
        let mut warm_ws = LpWorkspace::new();
        let cold_opts = BranchBoundOptions {
            warm_across_searches: false,
            ..BranchBoundOptions::default()
        };
        for (profit, budget) in [(10.0, 6.0), (2.0, 6.0), (10.0, 9.0), (1.0, 4.0)] {
            let m = build(profit, budget);
            let warm = solve_milp_reusing(&m, &BranchBoundOptions::default(), &mut warm_ws);
            let cold = solve_milp_with(&m, &cold_opts);
            assert_eq!(warm.status, cold.status, "profit={profit} budget={budget}");
            match (warm.objective(), cold.objective()) {
                (Some(a), Some(b)) => assert_close(a, b),
                (None, None) => {}
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn warm_and_cold_searches_agree_on_a_batch_of_milps() {
        // A family of knapsack-ish MILPs solved with both engines and
        // one shared workspace (warm basis carried across searches).
        let mut ws = LpWorkspace::new();
        for trial in 0..6u32 {
            let mut m = Model::new(Sense::Maximize);
            let weights = [3.0 + f64::from(trial % 3), 4.0, 2.0, 5.0];
            let profits = [10.0, 13.0 - f64::from(trial % 2), 7.0, 9.0];
            let vars: Vec<_> = (0..4)
                .map(|i| m.add_binary_var(format!("v{i}"), profits[i]))
                .collect();
            let expr = lin_sum(vars.iter().zip(weights).map(|(&v, w)| (w, v)));
            m.add_constraint("w", expr, Cmp::Le, 8.0 + f64::from(trial));
            let dense = solve_milp_with(
                &m,
                &BranchBoundOptions {
                    engine: LpEngine::DenseTableau,
                    ..BranchBoundOptions::default()
                },
            );
            let revised = solve_milp_reusing(
                &m,
                &BranchBoundOptions {
                    engine: LpEngine::Revised,
                    ..BranchBoundOptions::default()
                },
                &mut ws,
            );
            assert_eq!(dense.status, revised.status, "trial {trial}");
            match (dense.objective(), revised.objective()) {
                (Some(a), Some(b)) => assert_close(a, b),
                (None, None) => {}
                other => panic!("incumbent mismatch on trial {trial}: {other:?}"),
            }
        }
    }
}
