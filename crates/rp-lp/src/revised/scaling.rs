//! Geometric-mean equilibration of the standard form.
//!
//! The replica-placement extensions (bandwidth-constrained link rows,
//! multi-object formulations over wide-range platforms) produce
//! constraint matrices whose entries span many orders of magnitude —
//! request coefficients of a few units next to capacity coefficients in
//! the hundreds of thousands. The simplex tolerances are absolute, so
//! on such matrices a "small" pivot in one row is a rounding artefact
//! while the same magnitude in another row is load-bearing.
//!
//! The classic cure is **equilibration**: pick positive row scales
//! `r_i` and column scales `c_j` and solve the scaled problem
//! `(R·A·C)·x' = R·b`, `x' = C⁻¹x`. This module computes the scales by
//! the standard geometric-mean iteration — each pass sets a row's scale
//! to `1/√(min|a|·max|a|)` over its scaled entries, then the columns
//! likewise — which provably drives the per-row/column spread towards
//! its fixed point. Scales are then **rounded to powers of two**, so
//! applying and undoing them is *exact* in floating point: the
//! postsolve unscaling reproduces the unscaled solution bit for bit
//! (up to the different pivot path), which is what the equilibration
//! round-trip property test pins.
//!
//! Slack columns are deliberately excluded: their coefficient is folded
//! to stay `+1` (the slack simply absorbs `r_i` into its own units), so
//! the all-slack basis remains the identity and the crash/warm-start
//! machinery is untouched.

/// Whether (and when) the revised engine equilibrates the matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scaling {
    /// Never scale.
    Off,
    /// Always run the geometric-mean pass.
    Geometric,
    /// Scale only when the matrix is genuinely ill-scaled (entry spread
    /// above [`AUTO_SPREAD`]). The near-unimodular replica LPs stay
    /// bit-for-bit on their historical pivot paths; only extreme-spread
    /// matrices get equilibrated.
    #[default]
    Auto,
}

/// Entry spread `max|a| / min|a|` above which [`Scaling::Auto`] turns
/// the pass on.
///
/// Tuned against the ill-scaled bandwidth families (spread ≈ 2e5):
/// with the sparse Markowitz factorisation and model-unit dual pricing
/// (see [`crate::revised::pricing`]) the solver is numerically robust
/// at those spreads *without* equilibration — the scaled and unscaled
/// runs agree with the dense oracle bit for bit on the objective —
/// while the pass itself still costs ~10–15% extra iterations from the
/// residual scaled-unit tolerance and tie-break geometry, plus the
/// equilibration sweep. Below this threshold scaling is therefore a
/// net loss; beyond it (entries spanning ≳6 decades) the absolute
/// pivot tolerances genuinely need the spread collapsed.
pub(crate) const AUTO_SPREAD: f64 = 1e6;

/// Passes of the alternating row/column geometric-mean iteration. The
/// iteration converges quickly (each pass at least halves the log-scale
/// imbalance); four passes match common LP-solver practice.
const PASSES: usize = 4;

/// Spread `max|a| / min|a|` over the nonzero structural entries
/// (`1.0` for an empty matrix).
pub(crate) fn entry_spread(vals: &[f64]) -> f64 {
    let mut min_a = f64::INFINITY;
    let mut max_a = 0.0f64;
    for &v in vals {
        let a = v.abs();
        if a > 0.0 {
            min_a = min_a.min(a);
            max_a = max_a.max(a);
        }
    }
    if max_a == 0.0 {
        1.0
    } else {
        max_a / min_a
    }
}

/// Rounds a positive scale to the nearest power of two, making its
/// application (and the postsolve inverse) exact in floating point.
fn pow2_round(scale: f64) -> f64 {
    if !scale.is_finite() || scale <= 0.0 {
        return 1.0;
    }
    (scale.log2().round()).exp2()
}

/// Computes geometric-mean row and column scales for the `m × n` CSC
/// matrix `(col_ptr, col_rows, col_vals)`. Returns power-of-two scales;
/// rows or columns without entries keep scale `1`.
pub(crate) fn geometric_mean_scales(
    m: usize,
    n: usize,
    col_ptr: &[usize],
    col_rows: &[u32],
    col_vals: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let mut row_scale = vec![1.0f64; m];
    let mut col_scale = vec![1.0f64; n];
    let mut row_min = vec![0.0f64; m];
    let mut row_max = vec![0.0f64; m];
    for _ in 0..PASSES {
        // Row pass: geometric mean of the currently scaled entries.
        row_min.iter_mut().for_each(|v| *v = f64::INFINITY);
        row_max.iter_mut().for_each(|v| *v = 0.0);
        for j in 0..n {
            for k in col_ptr[j]..col_ptr[j + 1] {
                let a = (col_vals[k] * col_scale[j]).abs();
                if a > 0.0 {
                    let i = col_rows[k] as usize;
                    row_min[i] = row_min[i].min(a);
                    row_max[i] = row_max[i].max(a);
                }
            }
        }
        for i in 0..m {
            if row_max[i] > 0.0 {
                row_scale[i] = 1.0 / (row_min[i] * row_max[i]).sqrt();
            }
        }
        // Column pass over the row-scaled entries.
        for j in 0..n {
            let mut cmin = f64::INFINITY;
            let mut cmax = 0.0f64;
            for k in col_ptr[j]..col_ptr[j + 1] {
                let a = (col_vals[k] * row_scale[col_rows[k] as usize]).abs();
                if a > 0.0 {
                    cmin = cmin.min(a);
                    cmax = cmax.max(a);
                }
            }
            if cmax > 0.0 {
                col_scale[j] = 1.0 / (cmin * cmax).sqrt();
            }
        }
    }
    row_scale.iter_mut().for_each(|s| *s = pow2_round(*s));
    col_scale.iter_mut().for_each(|s| *s = pow2_round(*s));
    (row_scale, col_scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_powers_of_two() {
        // 2x2 matrix [[1e6, 0], [3, 4e-3]] in CSC.
        let col_ptr = vec![0, 2, 3];
        let col_rows = vec![0u32, 1, 1];
        let col_vals = vec![1e6, 3.0, 4e-3];
        let (rs, cs) = geometric_mean_scales(2, 2, &col_ptr, &col_rows, &col_vals);
        for &s in rs.iter().chain(cs.iter()) {
            assert!(s > 0.0);
            assert_eq!(s.log2().fract(), 0.0, "scale {s} is not a power of two");
        }
    }

    #[test]
    fn scaling_reduces_the_spread_of_an_ill_scaled_matrix() {
        // Diagonal-ish matrix with entries spanning 9 decades.
        let col_ptr = vec![0, 1, 2, 3];
        let col_rows = vec![0u32, 1, 2];
        let col_vals = vec![1e-4, 1.0, 1e5];
        let before = entry_spread(&col_vals);
        let (rs, cs) = geometric_mean_scales(3, 3, &col_ptr, &col_rows, &col_vals);
        let scaled: Vec<f64> = (0..3)
            .map(|j| col_vals[j] * rs[col_rows[j] as usize] * cs[j])
            .collect();
        let after = entry_spread(&scaled);
        assert!(after < before / 1e6, "spread {before} -> {after}");
    }

    #[test]
    fn empty_rows_and_columns_keep_unit_scales() {
        let col_ptr = vec![0, 1, 1];
        let col_rows = vec![0u32];
        let col_vals = vec![256.0];
        let (rs, cs) = geometric_mean_scales(2, 2, &col_ptr, &col_rows, &col_vals);
        assert_eq!(rs[1], 1.0);
        assert_eq!(cs[1], 1.0);
        // The lone entry is driven towards magnitude 1.
        assert!((256.0f64 * rs[0] * cs[0]).abs().log2().abs() <= 1.0);
    }

    #[test]
    fn well_scaled_spread_is_small() {
        assert_eq!(entry_spread(&[1.0, -2.0, 1.0]), 2.0);
        assert_eq!(entry_spread(&[]), 1.0);
        // The ill-scaled bandwidth families (spread ~2e5) sit below the
        // Auto threshold on purpose; truly extreme spreads sit above.
        assert!(entry_spread(&[1.0, 2e5]) < AUTO_SPREAD);
        assert!(entry_spread(&[1e-3, 1e6]) > AUTO_SPREAD);
    }
}
