//! Basis factorisation: LU with partial pivoting, stored as **sparse
//! triangular factors**, plus a sparse product-form eta file.
//!
//! The revised simplex never forms `B⁻¹` explicitly. Instead it keeps
//!
//! * an **LU factorisation** `P·B = L·U` of the basis matrix as of the
//!   last refactorisation — factored densely (the basis is small), then
//!   extracted into column lists of `L` and `U` so the triangular
//!   solves touch only structural nonzeros, and
//! * an **eta file**: one sparse elementary column transformation per
//!   pivot performed since, so that the current basis inverse is
//!   `B⁻¹ = Eₖ⁻¹ ⋯ E₁⁻¹ B₀⁻¹`.
//!
//! `ftran` (solve `B·x = v`) applies the LU solve and then the etas in
//! chronological order; `btran` (solve `Bᵀ·y = v`) applies the
//! transposed etas in reverse order and then the transposed LU solve.
//!
//! The replica-placement bases are tree-structured and extremely
//! sparse, and their `L`/`U` factors barely fill in; the forward and
//! backward **scatter** solves also skip positions whose running value
//! is exactly zero, so a solve with a sparse right-hand side (an
//! entering column, a unit vector) costs close to the number of
//! nonzeros it actually touches — the "hyper-sparsity" that makes the
//! revised method beat the zero-skipping dense tableau on these LPs.
//! The driver still refactorises every few dozen pivots to bound the
//! eta file and squash the product form's numerical drift.
//!
//! All buffers live in the struct and keep their capacity across solves.

/// LU factors plus the eta file. See the module docs.
#[derive(Default)]
pub(crate) struct Factorization {
    /// Basis dimension at the last refactorisation.
    m: usize,
    /// Row-swap sequence of the partial pivoting: at elimination step
    /// `k`, rows `k` and `ipiv[k]` were exchanged.
    ipiv: Vec<usize>,
    /// Dense column-major scratch used only *during* refactorisation.
    lu: Vec<f64>,
    /// Columns of `L` strictly below the diagonal (unit diagonal
    /// implied): entries `lcol_ptr[k]..lcol_ptr[k+1]` hold the
    /// (row, value) pairs of column `k`.
    lcol_ptr: Vec<usize>,
    lcol_idx: Vec<u32>,
    lcol_val: Vec<f64>,
    /// Columns of `U` strictly above the diagonal, same layout.
    ucol_ptr: Vec<usize>,
    ucol_idx: Vec<u32>,
    ucol_val: Vec<f64>,
    /// Diagonal of `U`.
    udiag: Vec<f64>,
    /// Sparse eta file: update `t` replaced basis row `eta_rows[t]`
    /// with a column whose pivot value was `eta_pivot[t]`; the
    /// off-pivot nonzeros of `w = B⁻¹ a_q` live in
    /// `eta_ptr[t]..eta_ptr[t+1]`.
    eta_rows: Vec<usize>,
    eta_pivot: Vec<f64>,
    eta_ptr: Vec<usize>,
    eta_idx: Vec<u32>,
    eta_val: Vec<f64>,
    /// Scratch for loading basis columns during refactorisation.
    scratch: Vec<f64>,
}

/// Pivot magnitude below which a refactorisation declares the basis
/// numerically singular.
const SINGULAR_TOL: f64 = 1e-11;

impl Factorization {
    /// Number of eta updates accumulated since the last refactorisation.
    pub(crate) fn eta_count(&self) -> usize {
        self.eta_rows.len()
    }

    /// Refactorises from scratch: `load_column(k, buf)` must fill `buf`
    /// (already zeroed, length `m`) with the dense k-th basis column.
    /// Returns `false` when the basis is numerically singular.
    pub(crate) fn refactor(
        &mut self,
        m: usize,
        mut load_column: impl FnMut(usize, &mut [f64]),
    ) -> bool {
        self.m = m;
        self.eta_rows.clear();
        self.eta_pivot.clear();
        self.eta_ptr.clear();
        self.eta_ptr.push(0);
        self.eta_idx.clear();
        self.eta_val.clear();
        self.lu.clear();
        self.lu.resize(m * m, 0.0);
        self.ipiv.clear();
        self.ipiv.resize(m, 0);
        self.scratch.clear();
        self.scratch.resize(m, 0.0);
        for k in 0..m {
            for v in self.scratch.iter_mut() {
                *v = 0.0;
            }
            load_column(k, &mut self.scratch);
            self.lu[k * m..(k + 1) * m].copy_from_slice(&self.scratch);
        }

        // Right-looking LU with partial pivoting on the flat column-major
        // scratch: entry (row i, col j) lives at lu[j*m + i].
        for k in 0..m {
            let mut pivot_row = k;
            let mut pivot_abs = self.lu[k * m + k].abs();
            for i in k + 1..m {
                let a = self.lu[k * m + i].abs();
                if a > pivot_abs {
                    pivot_abs = a;
                    pivot_row = i;
                }
            }
            if pivot_abs < SINGULAR_TOL {
                return false;
            }
            self.ipiv[k] = pivot_row;
            if pivot_row != k {
                for col in 0..m {
                    self.lu.swap(col * m + k, col * m + pivot_row);
                }
            }
            let pivot = self.lu[k * m + k];
            let inv = 1.0 / pivot;
            for i in k + 1..m {
                self.lu[k * m + i] *= inv;
            }
            for j in k + 1..m {
                let factor = self.lu[j * m + k];
                if factor != 0.0 {
                    let (head, tail) = self.lu.split_at_mut(j * m);
                    let lcol = &head[k * m + k + 1..k * m + m];
                    let ucol = &mut tail[k + 1..m];
                    for (u, &l) in ucol.iter_mut().zip(lcol) {
                        *u -= factor * l;
                    }
                }
            }
        }

        // Extract the sparse triangular factors; the tree-structured
        // replica bases barely fill in, so the lists stay short.
        self.lcol_ptr.clear();
        self.lcol_idx.clear();
        self.lcol_val.clear();
        self.ucol_ptr.clear();
        self.ucol_idx.clear();
        self.ucol_val.clear();
        self.udiag.clear();
        self.lcol_ptr.push(0);
        self.ucol_ptr.push(0);
        for k in 0..m {
            for i in k + 1..m {
                let l = self.lu[k * m + i];
                if l != 0.0 {
                    self.lcol_idx.push(i as u32);
                    self.lcol_val.push(l);
                }
            }
            self.lcol_ptr.push(self.lcol_idx.len());
            for i in 0..k {
                let u = self.lu[k * m + i];
                if u != 0.0 {
                    self.ucol_idx.push(i as u32);
                    self.ucol_val.push(u);
                }
            }
            self.ucol_ptr.push(self.ucol_idx.len());
            self.udiag.push(self.lu[k * m + k]);
        }
        true
    }

    /// Records a product-form update: basis row `r` was replaced, with
    /// pivot column `w = B⁻¹ a_entering` (dense, length `m`). Stored
    /// sparsely — `w` is itself the result of a hyper-sparse FTRAN and
    /// is usually mostly zero.
    pub(crate) fn push_eta(&mut self, r: usize, w: &[f64]) {
        debug_assert_eq!(w.len(), self.m);
        self.eta_rows.push(r);
        self.eta_pivot.push(w[r]);
        for (i, &wi) in w.iter().enumerate() {
            if wi != 0.0 && i != r {
                self.eta_idx.push(i as u32);
                self.eta_val.push(wi);
            }
        }
        self.eta_ptr.push(self.eta_idx.len());
    }

    /// Solves `B·x = v` in place (`v` becomes `x`).
    pub(crate) fn ftran(&self, v: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        // Apply every row swap first (the stored `L` refers to the fully
        // permuted matrix — later pivot steps swapped the partially
        // eliminated rows, multipliers included), then solve with L.
        for k in 0..m {
            let p = self.ipiv[k];
            if p != k {
                v.swap(k, p);
            }
        }
        // L forward solve, scatter form: positions whose running value
        // is zero contribute nothing and are skipped outright.
        for k in 0..m {
            let vk = v[k];
            if vk != 0.0 {
                for (&i, &l) in self.lcol_idx[self.lcol_ptr[k]..self.lcol_ptr[k + 1]]
                    .iter()
                    .zip(&self.lcol_val[self.lcol_ptr[k]..self.lcol_ptr[k + 1]])
                {
                    v[i as usize] -= l * vk;
                }
            }
        }
        // U backward solve, scatter form with the same zero skip.
        for k in (0..m).rev() {
            let t = v[k];
            if t != 0.0 {
                let x = t / self.udiag[k];
                v[k] = x;
                for (&i, &u) in self.ucol_idx[self.ucol_ptr[k]..self.ucol_ptr[k + 1]]
                    .iter()
                    .zip(&self.ucol_val[self.ucol_ptr[k]..self.ucol_ptr[k + 1]])
                {
                    v[i as usize] -= u * x;
                }
            }
        }
        // Etas in chronological order: x ← E_t⁻¹ x. A zero pivot-row
        // value makes the whole eta a no-op.
        for (t, &r) in self.eta_rows.iter().enumerate() {
            let vr = v[r];
            if vr == 0.0 {
                continue;
            }
            let xr = vr / self.eta_pivot[t];
            v[r] = xr;
            for (&i, &wi) in self.eta_idx[self.eta_ptr[t]..self.eta_ptr[t + 1]]
                .iter()
                .zip(&self.eta_val[self.eta_ptr[t]..self.eta_ptr[t + 1]])
            {
                v[i as usize] -= wi * xr;
            }
        }
    }

    /// Solves `Bᵀ·y = v` in place (`v` becomes `y`).
    pub(crate) fn btran(&self, v: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        // Transposed etas in reverse chronological order: only the pivot
        // row's entry changes.
        for (t, &r) in self.eta_rows.iter().enumerate().rev() {
            let mut dot = 0.0;
            for (&i, &wi) in self.eta_idx[self.eta_ptr[t]..self.eta_ptr[t + 1]]
                .iter()
                .zip(&self.eta_val[self.eta_ptr[t]..self.eta_ptr[t + 1]])
            {
                dot += wi * v[i as usize];
            }
            v[r] = (v[r] - dot) / self.eta_pivot[t];
        }
        // P·B = L·U  ⇒  Bᵀ·y = v  ⇔  Uᵀ·z = v, Lᵀ·u = z, y = Pᵀ·u.
        // Uᵀ forward solve, gather form over the columns of U.
        for k in 0..m {
            let mut sum = v[k];
            for (&i, &u) in self.ucol_idx[self.ucol_ptr[k]..self.ucol_ptr[k + 1]]
                .iter()
                .zip(&self.ucol_val[self.ucol_ptr[k]..self.ucol_ptr[k + 1]])
            {
                sum -= u * v[i as usize];
            }
            v[k] = sum / self.udiag[k];
        }
        // Lᵀ backward solve, gather form over the columns of L.
        for k in (0..m).rev() {
            let mut sum = v[k];
            for (&i, &l) in self.lcol_idx[self.lcol_ptr[k]..self.lcol_ptr[k + 1]]
                .iter()
                .zip(&self.lcol_val[self.lcol_ptr[k]..self.lcol_ptr[k + 1]])
            {
                sum -= l * v[i as usize];
            }
            v[k] = sum;
        }
        for k in (0..m).rev() {
            let p = self.ipiv[k];
            if p != k {
                v.swap(k, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_columns(cols: &[Vec<f64>]) -> impl FnMut(usize, &mut [f64]) + '_ {
        move |k, buf| buf.copy_from_slice(&cols[k])
    }

    #[test]
    fn lu_solves_a_small_system() {
        // B = [[2, 1], [1, 3]] (symmetric), solve B x = [5, 10] => x = [1, 3].
        let cols = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut f = Factorization::default();
        assert!(f.refactor(2, dense_columns(&cols)));
        let mut v = vec![5.0, 10.0];
        f.ftran(&mut v);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 3.0).abs() < 1e-12);
        let mut y = vec![5.0, 10.0];
        f.btran(&mut y);
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!((y[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // B = [[0, 1], [1, 0]] needs the row swap.
        let cols = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut f = Factorization::default();
        assert!(f.refactor(2, dense_columns(&cols)));
        let mut v = vec![3.0, 7.0];
        f.ftran(&mut v);
        // x solves [[0,1],[1,0]] x = [3,7] => x = [7, 3].
        assert!((v[0] - 7.0).abs() < 1e-12);
        assert!((v[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_basis_is_reported() {
        let cols = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut f = Factorization::default();
        assert!(!f.refactor(2, dense_columns(&cols)));
    }

    #[test]
    fn eta_updates_track_a_column_replacement() {
        // Start from B0 = I, replace column 0 by a = [3, 1]:
        // B1 = [[3, 0], [1, 1]].
        let cols = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut f = Factorization::default();
        assert!(f.refactor(2, dense_columns(&cols)));
        let mut w = vec![3.0, 1.0]; // B0⁻¹ a = a
        f.ftran(&mut w);
        f.push_eta(0, &w);
        assert_eq!(f.eta_count(), 1);
        // Solve B1 x = [6, 5]: x0 = 2, x1 = 5 - 2 = 3.
        let mut v = vec![6.0, 5.0];
        f.ftran(&mut v);
        assert!((v[0] - 2.0).abs() < 1e-12, "{v:?}");
        assert!((v[1] - 3.0).abs() < 1e-12, "{v:?}");
        // Bᵀ1 y = [7, 2]: Bᵀ1 = [[3,1],[0,1]] => y1 = 2, 3 y0 + y1 = 7 => y0 = 5/3.
        let mut y = vec![7.0, 2.0];
        f.btran(&mut y);
        assert!((y[0] - 5.0 / 3.0).abs() < 1e-12, "{y:?}");
        assert!((y[1] - 2.0).abs() < 1e-12, "{y:?}");
    }

    #[test]
    fn three_by_three_roundtrip() {
        let cols = vec![
            vec![4.0, 2.0, 1.0],
            vec![1.0, 5.0, 2.0],
            vec![0.0, 1.0, 6.0],
        ];
        let mut f = Factorization::default();
        assert!(f.refactor(3, dense_columns(&cols)));
        // Verify B · (B⁻¹ v) = v for a few vectors.
        for v0 in [vec![1.0, 0.0, 0.0], vec![2.0, -3.0, 5.0]] {
            let mut x = v0.clone();
            f.ftran(&mut x);
            // Recompute B x.
            let mut back = vec![0.0; 3];
            for (k, col) in cols.iter().enumerate() {
                for i in 0..3 {
                    back[i] += col[i] * x[k];
                }
            }
            for i in 0..3 {
                assert!((back[i] - v0[i]).abs() < 1e-10, "{back:?} vs {v0:?}");
            }
            let mut y = v0.clone();
            f.btran(&mut y);
            let mut back_t = vec![0.0; 3];
            for (k, col) in cols.iter().enumerate() {
                for i in 0..3 {
                    back_t[k] += col[i] * y[i];
                }
            }
            for i in 0..3 {
                assert!((back_t[i] - v0[i]).abs() < 1e-10, "{back_t:?} vs {v0:?}");
            }
        }
    }

    #[cfg(test)]
    mod roundtrip_tests {
        use super::*;

        /// Deterministic pseudo-random matrix round-trip at several
        /// sizes — guards the permutation/order subtleties of the
        /// sparse triangular solves.
        #[test]
        fn random_matrix_roundtrip() {
            let mut state = 0x12345678u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2000) as f64 / 100.0 - 10.0
            };
            for m in [5usize, 13, 20, 37] {
                let cols: Vec<Vec<f64>> =
                    (0..m).map(|_| (0..m).map(|_| next()).collect()).collect();
                let mut f = Factorization::default();
                assert!(
                    f.refactor(m, |k, buf| buf.copy_from_slice(&cols[k])),
                    "m={m}"
                );
                let v0: Vec<f64> = (0..m).map(|_| next()).collect();
                let mut x = v0.clone();
                f.ftran(&mut x);
                let mut back = vec![0.0; m];
                for (k, col) in cols.iter().enumerate() {
                    for i in 0..m {
                        back[i] += col[i] * x[k];
                    }
                }
                for i in 0..m {
                    assert!(
                        (back[i] - v0[i]).abs() < 1e-6,
                        "ftran m={m} row {i}: {} vs {}",
                        back[i],
                        v0[i]
                    );
                }
                let mut y = v0.clone();
                f.btran(&mut y);
                let mut back_t = vec![0.0; m];
                for (k, col) in cols.iter().enumerate() {
                    for i in 0..m {
                        back_t[k] += col[i] * y[i];
                    }
                }
                for k in 0..m {
                    assert!(
                        (back_t[k] - v0[k]).abs() < 1e-6,
                        "btran m={m} col {k}: {} vs {}",
                        back_t[k],
                        v0[k]
                    );
                }
            }
        }

        /// Sparse etas must behave exactly like dense ones: compose a
        /// few updates on a random basis and round-trip both solves.
        #[test]
        fn eta_chain_roundtrip() {
            let mut state = 0xDEADBEEFu64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 50.0 - 10.0
            };
            let m = 9;
            let mut cols: Vec<Vec<f64>> =
                (0..m).map(|_| (0..m).map(|_| next()).collect()).collect();
            let mut f = Factorization::default();
            assert!(f.refactor(m, |k, buf| buf.copy_from_slice(&cols[k])));
            // Three successive column replacements tracked via etas.
            for (step, r) in [2usize, 5, 2].into_iter().enumerate() {
                let mut a: Vec<f64> = (0..m).map(|_| next()).collect();
                // Sparsify the entering column like a real LP column.
                for (i, v) in a.iter_mut().enumerate() {
                    if (i + step) % 3 != 0 {
                        *v = 0.0;
                    }
                }
                a[r] += 5.0; // keep the pivot well away from zero
                let mut w = a.clone();
                f.ftran(&mut w);
                f.push_eta(r, &w);
                cols[r] = a;
            }
            let v0: Vec<f64> = (0..m).map(|_| next()).collect();
            let mut x = v0.clone();
            f.ftran(&mut x);
            let mut back = vec![0.0; m];
            for (k, col) in cols.iter().enumerate() {
                for i in 0..m {
                    back[i] += col[i] * x[k];
                }
            }
            for i in 0..m {
                assert!((back[i] - v0[i]).abs() < 1e-6, "{back:?} vs {v0:?}");
            }
            let mut y = v0.clone();
            f.btran(&mut y);
            let mut back_t = vec![0.0; m];
            for (k, col) in cols.iter().enumerate() {
                for i in 0..m {
                    back_t[k] += col[i] * y[i];
                }
            }
            for k in 0..m {
                assert!((back_t[k] - v0[k]).abs() < 1e-6, "{back_t:?} vs {v0:?}");
            }
        }
    }
}
