//! Basis factorisation: **sparse Markowitz LU** with **Forrest–Tomlin
//! updates**.
//!
//! The revised simplex never forms `B⁻¹` explicitly. This module keeps
//!
//! * a sparse LU factorisation `P·B·Q = L·U` of the basis, computed by
//!   **Markowitz pivoting**: at every elimination step the pivot is the
//!   entry minimising the fill bound `(r_i − 1)(c_j − 1)` among entries
//!   passing **threshold partial pivoting** (`|a_ij| ≥ u·max_i |a_ij|`),
//!   found Suhl-style by scanning a handful of the shortest active
//!   columns (with cost-0 singleton-row/column fast paths). On the
//!   tree-structured replica bases this produces factors with `O(nnz)`
//!   entries instead of the `O(m³)` work and `O(m²)` memory a dense LU
//!   pays, and
//! * a **Forrest–Tomlin update** per basis change: instead of appending
//!   a product-form eta, the spiked column of `U` is eliminated with row
//!   operations whose multipliers form a short *row eta*, the spike
//!   becomes the last column of `U`'s elimination order, and `U` stays
//!   genuinely triangular — so hundreds of basis changes amortise one
//!   refactorisation without the eta file's solve-time blow-up.
//!
//! Both factors are stored column-wise **and** row-wise so that all four
//! triangular solves (`ftran` = solve `B·x = v`, `btran` = solve
//! `Bᵀ·y = v`) run in **scatter form**: a position whose running value
//! is exactly zero contributes nothing and is skipped outright, so a
//! solve with a sparse right-hand side (an entering column, a unit
//! vector) costs close to the structurally reachable nonzeros it
//! actually touches plus one `O(m)` sweep — the hyper-sparsity that
//! makes the revised method scale to multi-thousand-row formulations.
//!
//! Index spaces: `ftran` maps the *constraint-row* space to the *basis
//! slot* space (`x[k]` = value of the column basic in row `k`), `btran`
//! the other way around; internally everything lives in *elimination
//! step* space via the permutations `p` (step → constraint row) and `q`
//! (step → basis slot). Forrest–Tomlin updates reorder `U`'s steps
//! through `uorder`/`upos` without renumbering them.
//!
//! All buffers live in the struct and keep their capacity across solves
//! and refactorisations.

use super::TranCounters;

/// Pivot magnitude below which a refactorisation declares the basis
/// numerically singular.
const SINGULAR_TOL: f64 = 1e-11;

/// Threshold partial pivoting factor `u`: a pivot candidate must have
/// `|a_ij| ≥ u · max_i |a_ij|` within its column.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

/// Suhl's search bound: stop the Markowitz scan after this many columns
/// yielded at least one threshold-eligible candidate.
const SEARCH_COLUMNS: usize = 4;

/// Hole marker in `uorder`: a Forrest–Tomlin update re-appends the
/// updated step at the back and leaves this sentinel at its old
/// position instead of shifting the whole array.
const UORDER_HOLE: u32 = u32::MAX;

/// A sparse solve whose live pattern grows past `m / SPARSE_FALLBACK_DIV`
/// finishes with the plain dense sweeps (the heap bookkeeping would
/// cost more than it saves).
const SPARSE_FALLBACK_DIV: usize = 8;

/// Push onto the binary min-heap of packed `key << 32 | payload`
/// entries kept in a plain reused `Vec`.
fn heap_push(heap: &mut Vec<u64>, entry: u64) {
    heap.push(entry);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[parent] <= heap[i] {
            break;
        }
        heap.swap(parent, i);
        i = parent;
    }
}

/// Pop the minimum entry off the packed binary min-heap.
fn heap_pop(heap: &mut Vec<u64>) -> Option<u64> {
    let last = heap.len().checked_sub(1)?;
    heap.swap(0, last);
    let top = heap.pop();
    let mut i = 0;
    loop {
        let left = 2 * i + 1;
        let right = left + 1;
        let mut smallest = i;
        if left < heap.len() && heap[left] < heap[smallest] {
            smallest = left;
        }
        if right < heap.len() && heap[right] < heap[smallest] {
            smallest = right;
        }
        if smallest == i {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
    top
}

/// Sparse LU factors plus the Forrest–Tomlin update state. See the
/// module docs.
#[derive(Default)]
pub(crate) struct Factorization {
    /// Basis dimension at the last refactorisation.
    m: usize,
    /// `p[k]` = constraint row pivoted at elimination step `k`.
    p: Vec<u32>,
    /// `q[k]` = basis slot (column of `B`) pivoted at step `k`.
    q: Vec<u32>,
    /// Inverse of `q`.
    step_of_slot: Vec<u32>,
    // ---- L (static per refactorisation), step space, unit diagonal ----
    lcol_ptr: Vec<usize>,
    lcol_idx: Vec<u32>,
    lcol_val: Vec<f64>,
    lrow_ptr: Vec<usize>,
    lrow_idx: Vec<u32>,
    lrow_val: Vec<f64>,
    // ---- U (mutated by updates), step space, off-diagonal entries ----
    /// `ucols[k]`: entries `(step i, U[i,k])` with `upos[i] < upos[k]`.
    ucols: Vec<Vec<(u32, f64)>>,
    /// `urows[k]`: entries `(step j, U[k,j])` with `upos[j] > upos[k]`.
    urows: Vec<Vec<(u32, f64)>>,
    udiag: Vec<f64>,
    /// Elimination order of the steps (Forrest–Tomlin cycles updated
    /// steps to the back) and its inverse.
    uorder: Vec<u32>,
    upos: Vec<u32>,
    // ---- Forrest–Tomlin row etas ----
    eta_target: Vec<u32>,
    eta_ptr: Vec<usize>,
    eta_idx: Vec<u32>,
    eta_val: Vec<f64>,
    num_updates: usize,
    /// Intermediate FTRAN vector (after `L` and the row etas, before
    /// `U`): exactly the spike column the next Forrest–Tomlin update
    /// needs. Saved by every `ftran`, with its nonzero pattern in
    /// `spike_nz`.
    spike: Vec<f64>,
    spike_nz: Vec<u32>,
    // ---- solve scratch ----
    /// Dense solve vector in step space; **all-zero between calls** —
    /// every solve path restores the zeros it wrote.
    work: Vec<f64>,
    acc: Vec<f64>,
    mults: Vec<(u32, f64)>,
    /// Membership mask for the sparse-solve pattern (step space;
    /// all-false between calls).
    mask: Vec<bool>,
    /// Packed binary heap driving the sparse triangular solves.
    heap: Vec<u64>,
    /// Current pattern of `work` during a sparse solve.
    nzbuf: Vec<u32>,
    // ---- refactorisation working state ----
    /// Active-submatrix columns: `(constraint row, value)` pairs.
    acols: Vec<Vec<(u32, f64)>>,
    /// Active rows → column ids (stale entries tolerated, verified
    /// lazily against `acols`).
    arows: Vec<Vec<u32>>,
    row_len: Vec<u32>,
    row_pivoted: Vec<bool>,
    col_pivoted: Vec<bool>,
    row_step: Vec<u32>,
    /// Columns bucketed by active length (stale-tolerant).
    col_bucket: Vec<Vec<u32>>,
    /// Stack of rows that became singletons (cost-0 pivot hints).
    sing_rows: Vec<u32>,
    /// Position-in-column stamps (`-1` = absent).
    pos_stamp: Vec<i32>,
    /// Per-step multipliers `(constraint row, L value)` collected during
    /// elimination, converted to step space afterwards.
    lbuild: Vec<Vec<(u32, f64)>>,
    /// Per-step pivot-row entries `(basis slot, U value)`.
    ubuild: Vec<Vec<(u32, f64)>>,
    load_rows: Vec<u32>,
    load_vals: Vec<f64>,
    counts: Vec<usize>,
    // ---- lifetime FTRAN/BTRAN input statistics ----
    /// Counted in the permute-in loops (the sparse-skip ratio
    /// diagnostics); monotone across refactorisations, so per-solve
    /// numbers are deltas taken by the workspace.
    ftran_io: TranCounters,
    btran_io: TranCounters,
}

/// Clears every inner vector and grows the outer one to at least `len`.
fn reset_nested<T>(store: &mut Vec<Vec<T>>, len: usize) {
    for v in store.iter_mut() {
        v.clear();
    }
    if store.len() < len {
        store.resize_with(len, Vec::new);
    }
}

impl Factorization {
    /// Number of Forrest–Tomlin updates absorbed since the last
    /// refactorisation.
    pub(crate) fn updates(&self) -> usize {
        self.num_updates
    }

    /// Lifetime `(ftran, btran)` input statistics — calls, input
    /// nonzeros and summed dimensions since the factorisation was
    /// created. Monotone; per-solve figures are deltas.
    pub(crate) fn io_counters(&self) -> (TranCounters, TranCounters) {
        (self.ftran_io, self.btran_io)
    }

    /// Nonzero counts `(nnz(L), nnz(U))` of the current factors
    /// (diagonals included in `U`).
    pub(crate) fn nnz(&self) -> (usize, usize) {
        let unnz = self.m + self.ucols.iter().map(Vec::len).sum::<usize>();
        (self.lcol_idx.len(), unnz)
    }

    /// Refactorises from scratch: `load_column(k, rows, vals)` must
    /// append the `(row, value)` pairs of the `k`-th basis column
    /// (duplicates are merged here). Returns `false` when the basis is
    /// numerically singular.
    pub(crate) fn refactor(
        &mut self,
        m: usize,
        mut load_column: impl FnMut(usize, &mut Vec<u32>, &mut Vec<f64>),
    ) -> bool {
        self.m = m;
        self.num_updates = 0;
        self.eta_target.clear();
        self.eta_ptr.clear();
        self.eta_ptr.push(0);
        self.eta_idx.clear();
        self.eta_val.clear();
        self.p.clear();
        self.q.clear();
        self.udiag.clear();
        self.step_of_slot.clear();
        self.step_of_slot.resize(m, 0);
        self.row_step.clear();
        self.row_step.resize(m, 0);
        self.row_len.clear();
        self.row_len.resize(m, 0);
        self.row_pivoted.clear();
        self.row_pivoted.resize(m, false);
        self.col_pivoted.clear();
        self.col_pivoted.resize(m, false);
        self.pos_stamp.clear();
        self.pos_stamp.resize(m, -1);
        self.sing_rows.clear();
        reset_nested(&mut self.acols, m);
        reset_nested(&mut self.arows, m);
        reset_nested(&mut self.col_bucket, m + 1);
        reset_nested(&mut self.lbuild, m);
        reset_nested(&mut self.ubuild, m);

        // Load the basis columns, merging duplicate rows via stamps.
        for j in 0..m {
            self.load_rows.clear();
            self.load_vals.clear();
            load_column(j, &mut self.load_rows, &mut self.load_vals);
            let col = &mut self.acols[j];
            for (&r, &v) in self.load_rows.iter().zip(&self.load_vals) {
                if v == 0.0 {
                    continue;
                }
                let r_us = r as usize;
                let pos = self.pos_stamp[r_us];
                if pos >= 0 {
                    col[pos as usize].1 += v;
                } else {
                    self.pos_stamp[r_us] = col.len() as i32;
                    col.push((r, v));
                }
            }
            for &(r, _) in col.iter() {
                self.pos_stamp[r as usize] = -1;
            }
            for &(r, _) in col.iter() {
                self.arows[r as usize].push(j as u32);
                self.row_len[r as usize] += 1;
            }
            self.col_bucket[col.len()].push(j as u32);
        }
        for r in 0..m {
            if self.row_len[r] == 1 {
                self.sing_rows.push(r as u32);
            }
        }

        for step in 0..m {
            let Some((pr, pc)) = self.find_pivot() else {
                return false;
            };
            self.eliminate(step, pr, pc);
        }
        self.finalize();
        true
    }

    /// Markowitz pivot search with singleton fast paths; `None` means no
    /// entry anywhere passes the absolute tolerance — a singular basis.
    fn find_pivot(&mut self) -> Option<(usize, usize)> {
        // Singleton columns first: cost 0 and an empty L column.
        while let Some(&j) = self.col_bucket[1].last() {
            let j_us = j as usize;
            if self.col_pivoted[j_us] || self.acols[j_us].len() != 1 {
                self.col_bucket[1].pop();
                continue;
            }
            let (r, v) = self.acols[j_us][0];
            if v.abs() >= SINGULAR_TOL {
                self.col_bucket[1].pop();
                return Some((r as usize, j_us));
            }
            break; // tiny entry: leave the column to the general search
        }
        // Singleton rows: cost 0 and no Schur update at all.
        while let Some(&r) = self.sing_rows.last() {
            let r_us = r as usize;
            if self.row_pivoted[r_us] || self.row_len[r_us] != 1 {
                self.sing_rows.pop();
                continue;
            }
            let mut found = None;
            for &j in &self.arows[r_us] {
                let j_us = j as usize;
                if self.col_pivoted[j_us] {
                    continue;
                }
                if let Some(&(_, v)) = self.acols[j_us].iter().find(|&&(rr, _)| rr == r) {
                    found = Some((j_us, v));
                    break;
                }
            }
            let Some((j_us, v)) = found else {
                self.sing_rows.pop();
                continue;
            };
            let colmax = self.acols[j_us]
                .iter()
                .fold(0.0f64, |a, &(_, x)| a.max(x.abs()));
            if v.abs() >= MARKOWITZ_THRESHOLD * colmax && v.abs() >= SINGULAR_TOL {
                self.sing_rows.pop();
                return Some((r_us, j_us));
            }
            break; // fails the threshold: the general search decides
        }
        // General search: shortest columns first, threshold-filtered,
        // best Markowitz cost (ties to the largest pivot magnitude).
        let mut best: Option<(usize, usize, f64, u64)> = None;
        let mut examined = 0usize;
        for len in 1..=self.m {
            let mut bucket = std::mem::take(&mut self.col_bucket[len]);
            let mut i = 0;
            while i < bucket.len() {
                let j = bucket[i];
                let j_us = j as usize;
                if self.col_pivoted[j_us] || self.acols[j_us].len() != len {
                    bucket.swap_remove(i);
                    continue;
                }
                i += 1;
                let col = &self.acols[j_us];
                let mut colmax = 0.0f64;
                for &(_, v) in col {
                    colmax = colmax.max(v.abs());
                }
                if colmax < SINGULAR_TOL {
                    continue;
                }
                let mut found_here = false;
                for &(r, v) in col {
                    if v.abs() < MARKOWITZ_THRESHOLD * colmax || v.abs() < SINGULAR_TOL {
                        continue;
                    }
                    found_here = true;
                    let cost = u64::from(self.row_len[r as usize] - 1) * (len as u64 - 1);
                    let better = match best {
                        None => true,
                        Some((_, _, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv),
                    };
                    if better {
                        best = Some((r as usize, j_us, v.abs(), cost));
                    }
                }
                if found_here {
                    examined += 1;
                }
                if matches!(best, Some((_, _, _, 0))) || examined >= SEARCH_COLUMNS {
                    break;
                }
            }
            self.col_bucket[len] = bucket;
            if matches!(best, Some((_, _, _, 0))) || examined >= SEARCH_COLUMNS {
                break;
            }
        }
        best.map(|(r, j, _, _)| (r, j))
    }

    /// One right-looking elimination step with pivot (`pr`, `pc`).
    fn eliminate(&mut self, step: usize, pr: usize, pc: usize) {
        self.row_pivoted[pr] = true;
        self.col_pivoted[pc] = true;
        self.p.push(pr as u32);
        self.q.push(pc as u32);
        self.row_step[pr] = step as u32;
        self.step_of_slot[pc] = step as u32;

        // L column = pivot column scaled by the pivot.
        let mut pcol = std::mem::take(&mut self.acols[pc]);
        let mut pv = 0.0;
        for &(r, v) in &pcol {
            if r as usize == pr {
                pv = v;
            }
        }
        debug_assert!(pv != 0.0, "pivot search returned a structural zero");
        let inv = 1.0 / pv;
        let lcol = &mut self.lbuild[step];
        lcol.clear();
        for &(r, v) in &pcol {
            let r_us = r as usize;
            if r_us == pr {
                continue;
            }
            lcol.push((r, v * inv));
            self.row_len[r_us] -= 1;
            if self.row_len[r_us] == 1 {
                self.sing_rows.push(r);
            }
        }
        pcol.clear();
        self.acols[pc] = pcol;
        self.udiag.push(pv);

        // U row = the pivot row's remaining active entries, removed from
        // their columns.
        let mut prow_cols = std::mem::take(&mut self.arows[pr]);
        let urow = &mut self.ubuild[step];
        urow.clear();
        for &j in &prow_cols {
            let j_us = j as usize;
            if self.col_pivoted[j_us] {
                continue;
            }
            let col = &mut self.acols[j_us];
            if let Some(pos) = col.iter().position(|&(r, _)| r as usize == pr) {
                let (_, v) = col.swap_remove(pos);
                urow.push((j, v));
                self.col_bucket[col.len()].push(j);
            }
        }
        prow_cols.clear();
        self.arows[pr] = prow_cols;
        self.row_len[pr] = 0;

        // Schur update: column by column, stamps locate existing
        // entries, misses become fill.
        for u_idx in 0..self.ubuild[step].len() {
            let (j, u) = self.ubuild[step][u_idx];
            let j_us = j as usize;
            let before = self.acols[j_us].len();
            {
                let col = &self.acols[j_us];
                for (idx, &(r, _)) in col.iter().enumerate() {
                    self.pos_stamp[r as usize] = idx as i32;
                }
            }
            for l_idx in 0..self.lbuild[step].len() {
                let (r, l) = self.lbuild[step][l_idx];
                let r_us = r as usize;
                let delta = -(l * u);
                let pos = self.pos_stamp[r_us];
                if pos >= 0 {
                    self.acols[j_us][pos as usize].1 += delta;
                } else {
                    self.acols[j_us].push((r, delta));
                    self.arows[r_us].push(j);
                    self.row_len[r_us] += 1;
                }
            }
            for idx in 0..self.acols[j_us].len() {
                let (r, _) = self.acols[j_us][idx];
                self.pos_stamp[r as usize] = -1;
            }
            if self.acols[j_us].len() != before {
                self.col_bucket[self.acols[j_us].len()].push(j);
            }
        }
    }

    /// Converts the elimination output into the final solve structures.
    fn finalize(&mut self) {
        let m = self.m;
        // L in CSC, step space.
        self.lcol_ptr.clear();
        self.lcol_idx.clear();
        self.lcol_val.clear();
        self.lcol_ptr.push(0);
        for k in 0..m {
            for &(r, v) in &self.lbuild[k] {
                self.lcol_idx.push(self.row_step[r as usize]);
                self.lcol_val.push(v);
            }
            self.lcol_ptr.push(self.lcol_idx.len());
        }
        // L in CSR via counting sort.
        let lnnz = self.lcol_idx.len();
        self.lrow_ptr.clear();
        self.lrow_ptr.resize(m + 1, 0);
        for &i in &self.lcol_idx {
            self.lrow_ptr[i as usize + 1] += 1;
        }
        for i in 0..m {
            self.lrow_ptr[i + 1] += self.lrow_ptr[i];
        }
        self.lrow_idx.clear();
        self.lrow_idx.resize(lnnz, 0);
        self.lrow_val.clear();
        self.lrow_val.resize(lnnz, 0.0);
        self.counts.clear();
        self.counts.extend_from_slice(&self.lrow_ptr[..m]);
        for k in 0..m {
            for idx in self.lcol_ptr[k]..self.lcol_ptr[k + 1] {
                let i = self.lcol_idx[idx] as usize;
                let cursor = self.counts[i];
                self.lrow_idx[cursor] = k as u32;
                self.lrow_val[cursor] = self.lcol_val[idx];
                self.counts[i] = cursor + 1;
            }
        }
        // U in both orientations, step space.
        reset_nested(&mut self.ucols, m);
        reset_nested(&mut self.urows, m);
        for k in 0..m {
            for idx in 0..self.ubuild[k].len() {
                let (j, v) = self.ubuild[k][idx];
                let jj = self.step_of_slot[j as usize];
                self.urows[k].push((jj, v));
                self.ucols[jj as usize].push((k as u32, v));
            }
        }
        self.uorder.clear();
        self.uorder.extend(0..m as u32);
        self.upos.clear();
        self.upos.extend(0..m as u32);
        self.spike.clear();
        self.spike.resize(m, 0.0);
        self.spike_nz.clear();
        self.work.clear();
        self.work.resize(m, 0.0);
        self.acc.clear();
        self.acc.resize(m, 0.0);
        self.mask.clear();
        self.mask.resize(m, false);
        self.heap.clear();
        self.nzbuf.clear();
    }

    /// Solves `B·x = v` in place: `v` enters in constraint-row space and
    /// leaves in basis-slot space. Also saves the intermediate spike the
    /// next [`Factorization::update`] consumes.
    pub(crate) fn ftran(&mut self, v: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        let work = &mut self.work;
        let mut in_nnz = 0u64;
        for k in 0..m {
            let t = v[self.p[k] as usize];
            in_nnz += u64::from(t != 0.0);
            work[k] = t;
        }
        self.ftran_io.calls += 1;
        self.ftran_io.in_nnz += in_nnz;
        self.ftran_io.dim += m as u64;
        // L forward solve, scatter form with the zero skip.
        for k in 0..m {
            let t = work[k];
            if t != 0.0 {
                for idx in self.lcol_ptr[k]..self.lcol_ptr[k + 1] {
                    work[self.lcol_idx[idx] as usize] -= self.lcol_val[idx] * t;
                }
            }
        }
        // Forrest–Tomlin row etas, chronological.
        for e in 0..self.eta_target.len() {
            let mut dot = 0.0;
            for idx in self.eta_ptr[e]..self.eta_ptr[e + 1] {
                dot += self.eta_val[idx] * work[self.eta_idx[idx] as usize];
            }
            work[self.eta_target[e] as usize] -= dot;
        }
        self.spike.clear();
        self.spike.extend_from_slice(work);
        self.spike_nz.clear();
        for (k, &s) in self.spike.iter().enumerate() {
            if s != 0.0 {
                self.spike_nz.push(k as u32);
            }
        }
        // U backward solve along the elimination order, scatter form.
        for idx in (0..self.uorder.len()).rev() {
            let k = self.uorder[idx];
            if k == UORDER_HOLE {
                continue;
            }
            let k = k as usize;
            let t = work[k];
            if t != 0.0 {
                let x = t / self.udiag[k];
                work[k] = x;
                for &(i, u) in &self.ucols[k] {
                    work[i as usize] -= u * x;
                }
            }
        }
        for k in 0..m {
            v[self.q[k] as usize] = work[k];
            work[k] = 0.0;
        }
    }

    /// Solves `Bᵀ·y = v` in place: `v` enters in basis-slot space and
    /// leaves in constraint-row space.
    pub(crate) fn btran(&mut self, v: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        let work = &mut self.work;
        let mut in_nnz = 0u64;
        for k in 0..m {
            let t = v[self.q[k] as usize];
            in_nnz += u64::from(t != 0.0);
            work[k] = t;
        }
        self.btran_io.calls += 1;
        self.btran_io.in_nnz += in_nnz;
        self.btran_io.dim += m as u64;
        // Uᵀ forward solve along the elimination order, scatter form
        // over the rows of U.
        for idx in 0..self.uorder.len() {
            let k = self.uorder[idx];
            if k == UORDER_HOLE {
                continue;
            }
            let k = k as usize;
            let t = work[k];
            if t != 0.0 {
                let a = t / self.udiag[k];
                work[k] = a;
                for &(j, u) in &self.urows[k] {
                    work[j as usize] -= u * a;
                }
            }
        }
        // Transposed row etas, reverse chronological: only multiples of
        // the target's value propagate — skip when it is zero.
        for e in (0..self.eta_target.len()).rev() {
            let t = work[self.eta_target[e] as usize];
            if t != 0.0 {
                for idx in self.eta_ptr[e]..self.eta_ptr[e + 1] {
                    work[self.eta_idx[idx] as usize] -= self.eta_val[idx] * t;
                }
            }
        }
        // Lᵀ backward solve, scatter form over the rows of L.
        for k in (0..m).rev() {
            let t = work[k];
            if t != 0.0 {
                for idx in self.lrow_ptr[k]..self.lrow_ptr[k + 1] {
                    work[self.lrow_idx[idx] as usize] -= self.lrow_val[idx] * t;
                }
            }
        }
        for k in 0..m {
            v[self.p[k] as usize] = work[k];
            work[k] = 0.0;
        }
    }

    /// [`Factorization::ftran`] with an explicit nonzero pattern:
    /// `v` must be zero outside the positions in `nz` (duplicates
    /// tolerated). The triangular solves walk only the structurally
    /// reachable entries — heap-ordered scatter in elimination order —
    /// so a unit-vector solve costs its true fill, not `O(m)`. Any
    /// phase whose live pattern outgrows the sparse cutoff falls back
    /// to the plain dense sweeps. On return `v` holds the solution,
    /// `nz` its pattern, and the update spike is saved exactly like the
    /// dense path.
    pub(crate) fn ftran_sparse(&mut self, v: &mut [f64], nz: &mut Vec<u32>) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        self.ftran_io.calls += 1;
        self.ftran_io.in_nnz += nz.len() as u64;
        self.ftran_io.dim += m as u64;
        let cutoff = (m / SPARSE_FALLBACK_DIV).max(32);
        // Permute in: constraint-row space → step space.
        self.nzbuf.clear();
        for &r in nz.iter() {
            let r = r as usize;
            let k = self.row_step[r] as usize;
            if !self.mask[k] {
                self.mask[k] = true;
                self.nzbuf.push(k as u32);
            }
            // `+=`: a duplicate entry re-reads the already-zeroed `v[r]`.
            self.work[k] += v[r];
            v[r] = 0.0;
        }
        let mut dense = self.nzbuf.len() > cutoff;
        // L forward solve in increasing step order.
        if dense {
            for k in 0..m {
                let t = self.work[k];
                if t != 0.0 {
                    for idx in self.lcol_ptr[k]..self.lcol_ptr[k + 1] {
                        self.work[self.lcol_idx[idx] as usize] -= self.lcol_val[idx] * t;
                    }
                }
            }
        } else {
            self.heap.clear();
            for &k in &self.nzbuf {
                heap_push(&mut self.heap, ((k as u64) << 32) | k as u64);
            }
            while let Some(entry) = heap_pop(&mut self.heap) {
                let k = entry as u32 as usize;
                let t = self.work[k];
                if t == 0.0 {
                    continue;
                }
                for idx in self.lcol_ptr[k]..self.lcol_ptr[k + 1] {
                    let i = self.lcol_idx[idx] as usize;
                    if !self.mask[i] {
                        self.mask[i] = true;
                        self.nzbuf.push(i as u32);
                        heap_push(&mut self.heap, ((i as u64) << 32) | i as u64);
                    }
                    self.work[i] -= self.lcol_val[idx] * t;
                }
            }
        }
        // Forrest–Tomlin row etas, chronological; the dot already costs
        // the eta's nonzeros, so no pattern check is worth it.
        for e in 0..self.eta_target.len() {
            let mut dot = 0.0;
            for idx in self.eta_ptr[e]..self.eta_ptr[e + 1] {
                dot += self.eta_val[idx] * self.work[self.eta_idx[idx] as usize];
            }
            if dot != 0.0 {
                let tgt = self.eta_target[e] as usize;
                if !dense && !self.mask[tgt] {
                    self.mask[tgt] = true;
                    self.nzbuf.push(tgt as u32);
                }
                self.work[tgt] -= dot;
            }
        }
        // Save the spike (pattern included) for the next update.
        for &k in &self.spike_nz {
            self.spike[k as usize] = 0.0;
        }
        self.spike_nz.clear();
        if dense {
            self.spike.copy_from_slice(&self.work);
            for (k, &s) in self.spike.iter().enumerate() {
                if s != 0.0 {
                    self.spike_nz.push(k as u32);
                }
            }
        } else {
            for &k in &self.nzbuf {
                let s = self.work[k as usize];
                if s != 0.0 {
                    self.spike[k as usize] = s;
                    self.spike_nz.push(k);
                }
            }
        }
        // U backward solve in decreasing elimination order.
        if !dense && self.nzbuf.len() > cutoff {
            dense = true;
        }
        if dense {
            for idx in (0..self.uorder.len()).rev() {
                let k = self.uorder[idx];
                if k == UORDER_HOLE {
                    continue;
                }
                let k = k as usize;
                let t = self.work[k];
                if t != 0.0 {
                    let x = t / self.udiag[k];
                    self.work[k] = x;
                    for &(i, u) in &self.ucols[k] {
                        self.work[i as usize] -= u * x;
                    }
                }
            }
        } else {
            self.heap.clear();
            for &k in &self.nzbuf {
                let key = !self.upos[k as usize];
                heap_push(&mut self.heap, ((key as u64) << 32) | k as u64);
            }
            while let Some(entry) = heap_pop(&mut self.heap) {
                let k = entry as u32 as usize;
                let t = self.work[k];
                if t == 0.0 {
                    continue;
                }
                let x = t / self.udiag[k];
                self.work[k] = x;
                for &(i, u) in &self.ucols[k] {
                    let i_us = i as usize;
                    if !self.mask[i_us] {
                        self.mask[i_us] = true;
                        self.nzbuf.push(i);
                        let key = !self.upos[i_us];
                        heap_push(&mut self.heap, ((key as u64) << 32) | i as u64);
                    }
                    self.work[i_us] -= u * x;
                }
            }
        }
        // Permute out (step → basis-slot space), restoring the all-zero
        // scratch and all-false mask invariants.
        nz.clear();
        if dense {
            for &k in &self.nzbuf {
                self.mask[k as usize] = false;
            }
            for k in 0..m {
                let val = self.work[k];
                self.work[k] = 0.0;
                if val != 0.0 {
                    let slot = self.q[k] as usize;
                    v[slot] = val;
                    nz.push(slot as u32);
                }
            }
        } else {
            for &k in &self.nzbuf {
                let k = k as usize;
                self.mask[k] = false;
                let val = self.work[k];
                self.work[k] = 0.0;
                if val != 0.0 {
                    let slot = self.q[k] as usize;
                    v[slot] = val;
                    nz.push(slot as u32);
                }
            }
        }
    }

    /// [`Factorization::btran`] with an explicit nonzero pattern — the
    /// mirror of [`Factorization::ftran_sparse`]: `v` enters in
    /// basis-slot space (zero outside `nz`, duplicates tolerated) and
    /// leaves in constraint-row space with `nz` rewritten to the output
    /// pattern.
    pub(crate) fn btran_sparse(&mut self, v: &mut [f64], nz: &mut Vec<u32>) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        self.btran_io.calls += 1;
        self.btran_io.in_nnz += nz.len() as u64;
        self.btran_io.dim += m as u64;
        let cutoff = (m / SPARSE_FALLBACK_DIV).max(32);
        // Permute in: basis-slot space → step space.
        self.nzbuf.clear();
        for &s in nz.iter() {
            let s = s as usize;
            let k = self.step_of_slot[s] as usize;
            if !self.mask[k] {
                self.mask[k] = true;
                self.nzbuf.push(k as u32);
            }
            // `+=`: a duplicate entry re-reads the already-zeroed `v[s]`.
            self.work[k] += v[s];
            v[s] = 0.0;
        }
        let mut dense = self.nzbuf.len() > cutoff;
        // Uᵀ forward solve in increasing elimination order.
        if dense {
            for idx in 0..self.uorder.len() {
                let k = self.uorder[idx];
                if k == UORDER_HOLE {
                    continue;
                }
                let k = k as usize;
                let t = self.work[k];
                if t != 0.0 {
                    let a = t / self.udiag[k];
                    self.work[k] = a;
                    for &(j, u) in &self.urows[k] {
                        self.work[j as usize] -= u * a;
                    }
                }
            }
        } else {
            self.heap.clear();
            for &k in &self.nzbuf {
                let key = self.upos[k as usize];
                heap_push(&mut self.heap, ((key as u64) << 32) | k as u64);
            }
            while let Some(entry) = heap_pop(&mut self.heap) {
                let k = entry as u32 as usize;
                let t = self.work[k];
                if t == 0.0 {
                    continue;
                }
                let a = t / self.udiag[k];
                self.work[k] = a;
                for &(j, u) in &self.urows[k] {
                    let j_us = j as usize;
                    if !self.mask[j_us] {
                        self.mask[j_us] = true;
                        self.nzbuf.push(j);
                        let key = self.upos[j_us];
                        heap_push(&mut self.heap, ((key as u64) << 32) | j as u64);
                    }
                    self.work[j_us] -= u * a;
                }
            }
        }
        // Transposed row etas, reverse chronological: only multiples of
        // the target's value propagate.
        for e in (0..self.eta_target.len()).rev() {
            let t = self.work[self.eta_target[e] as usize];
            if t != 0.0 {
                for idx in self.eta_ptr[e]..self.eta_ptr[e + 1] {
                    let i = self.eta_idx[idx] as usize;
                    if !dense && !self.mask[i] {
                        self.mask[i] = true;
                        self.nzbuf.push(i as u32);
                    }
                    self.work[i] -= self.eta_val[idx] * t;
                }
            }
        }
        // Lᵀ backward solve in decreasing step order.
        if !dense && self.nzbuf.len() > cutoff {
            dense = true;
        }
        if dense {
            for k in (0..m).rev() {
                let t = self.work[k];
                if t != 0.0 {
                    for idx in self.lrow_ptr[k]..self.lrow_ptr[k + 1] {
                        self.work[self.lrow_idx[idx] as usize] -= self.lrow_val[idx] * t;
                    }
                }
            }
        } else {
            self.heap.clear();
            for &k in &self.nzbuf {
                heap_push(&mut self.heap, ((!k as u64) << 32) | k as u64);
            }
            while let Some(entry) = heap_pop(&mut self.heap) {
                let k = entry as u32 as usize;
                let t = self.work[k];
                if t == 0.0 {
                    continue;
                }
                for idx in self.lrow_ptr[k]..self.lrow_ptr[k + 1] {
                    let j = self.lrow_idx[idx];
                    let j_us = j as usize;
                    if !self.mask[j_us] {
                        self.mask[j_us] = true;
                        self.nzbuf.push(j);
                        heap_push(&mut self.heap, ((!j as u64) << 32) | j as u64);
                    }
                    self.work[j_us] -= self.lrow_val[idx] * t;
                }
            }
        }
        // Permute out (step → constraint-row space) with the same
        // invariant restoration as the FTRAN.
        nz.clear();
        if dense {
            for &k in &self.nzbuf {
                self.mask[k as usize] = false;
            }
            for k in 0..m {
                let val = self.work[k];
                self.work[k] = 0.0;
                if val != 0.0 {
                    let row = self.p[k] as usize;
                    v[row] = val;
                    nz.push(row as u32);
                }
            }
        } else {
            for &k in &self.nzbuf {
                let k = k as usize;
                self.mask[k] = false;
                let val = self.work[k];
                self.work[k] = 0.0;
                if val != 0.0 {
                    let row = self.p[k] as usize;
                    v[row] = val;
                    nz.push(row as u32);
                }
            }
        }
    }

    /// Forrest–Tomlin update after the basis column of `slot` was
    /// replaced by the column whose FTRAN ran last (its spike is saved).
    /// Returns `false` — leaving the factorisation untouched — when the
    /// new pivot is numerically unsafe; the caller must refactorise.
    pub(crate) fn update(&mut self, slot: usize) -> bool {
        let _t_phase = rp_obs::phase_timer(rp_obs::Phase::FtUpdate);
        let t = self.step_of_slot[slot] as usize;
        let tpos = self.upos[t] as usize;
        let mut spike_inf = 0.0f64;
        for &k in &self.spike_nz {
            spike_inf = spike_inf.max(self.spike[k as usize].abs());
        }
        // Eliminate row t of the spiked U with row operations against
        // the later pivot rows, walked sparsely in elimination order
        // (heap on `upos`; every U-row entry sits strictly later, so
        // the order is topological); the multipliers become a row eta
        // and the surviving coefficient of the spike column the new
        // pivot.
        self.mults.clear();
        self.heap.clear();
        for &(j, v) in &self.urows[t] {
            let j_us = j as usize;
            self.acc[j_us] = v;
            if !self.mask[j_us] {
                self.mask[j_us] = true;
                heap_push(&mut self.heap, ((self.upos[j_us] as u64) << 32) | j as u64);
            }
        }
        let mut d = self.spike[t];
        while let Some(entry) = heap_pop(&mut self.heap) {
            let j = entry as u32 as usize;
            self.mask[j] = false;
            let val = self.acc[j];
            self.acc[j] = 0.0;
            if val == 0.0 {
                continue;
            }
            let mu = val / self.udiag[j];
            self.mults.push((j as u32, mu));
            d -= mu * self.spike[j];
            for &(l, uv) in &self.urows[j] {
                let l_us = l as usize;
                if l_us == t {
                    continue;
                }
                if !self.mask[l_us] {
                    self.mask[l_us] = true;
                    heap_push(&mut self.heap, ((self.upos[l_us] as u64) << 32) | l as u64);
                }
                self.acc[l_us] -= mu * uv;
            }
        }
        if d.abs() <= SINGULAR_TOL.max(1e-10 * spike_inf) {
            return false;
        }
        // Replace row and column t of U by the eliminated spike.
        let mut old_col = std::mem::take(&mut self.ucols[t]);
        for &(i, _) in &old_col {
            let rows = &mut self.urows[i as usize];
            if let Some(pos) = rows.iter().position(|&(c, _)| c as usize == t) {
                rows.swap_remove(pos);
            }
        }
        old_col.clear();
        let mut old_row = std::mem::take(&mut self.urows[t]);
        for &(j, _) in &old_row {
            let cols = &mut self.ucols[j as usize];
            if let Some(pos) = cols.iter().position(|&(r, _)| r as usize == t) {
                cols.swap_remove(pos);
            }
        }
        old_row.clear();
        for &i in &self.spike_nz {
            let i_us = i as usize;
            let s = self.spike[i_us];
            if i_us != t && s != 0.0 {
                old_col.push((i, s));
                self.urows[i_us].push((t as u32, s));
            }
        }
        self.ucols[t] = old_col;
        self.urows[t] = old_row;
        self.udiag[t] = d;
        if !self.mults.is_empty() {
            for &(j, mu) in &self.mults {
                self.eta_idx.push(j);
                self.eta_val.push(mu);
            }
            self.eta_ptr.push(self.eta_idx.len());
            self.eta_target.push(t as u32);
        }
        // Cycle step t to the back of the elimination order: leave a
        // hole at its old position and append (O(1); the array regrows
        // by at most one slot per update until the next refactorisation
        // compacts it).
        self.uorder[tpos] = UORDER_HOLE;
        self.upos[t] = self.uorder.len() as u32;
        self.uorder.push(t as u32);
        self.num_updates += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_loader(cols: &[Vec<f64>]) -> impl FnMut(usize, &mut Vec<u32>, &mut Vec<f64>) + '_ {
        move |k, rows, vals| {
            for (i, &v) in cols[k].iter().enumerate() {
                if v != 0.0 {
                    rows.push(i as u32);
                    vals.push(v);
                }
            }
        }
    }

    /// `B · x` for a dense column list.
    fn apply(cols: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let m = cols.len();
        let mut out = vec![0.0; m];
        for (k, col) in cols.iter().enumerate() {
            for i in 0..m {
                out[i] += col[i] * x[k];
            }
        }
        out
    }

    /// `Bᵀ · y` for a dense column list.
    fn apply_t(cols: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
        let m = cols.len();
        let mut out = vec![0.0; m];
        for (k, col) in cols.iter().enumerate() {
            for i in 0..m {
                out[k] += col[i] * y[i];
            }
        }
        out
    }

    fn assert_roundtrip(f: &mut Factorization, cols: &[Vec<f64>], v0: &[f64], tol: f64) {
        let mut x = v0.to_vec();
        f.ftran(&mut x);
        let back = apply(cols, &x);
        for i in 0..cols.len() {
            assert!(
                (back[i] - v0[i]).abs() < tol,
                "ftran row {i}: {} vs {}",
                back[i],
                v0[i]
            );
        }
        let mut y = v0.to_vec();
        f.btran(&mut y);
        let back_t = apply_t(cols, &y);
        for k in 0..cols.len() {
            assert!(
                (back_t[k] - v0[k]).abs() < tol,
                "btran col {k}: {} vs {}",
                back_t[k],
                v0[k]
            );
        }
    }

    #[test]
    fn lu_solves_a_small_system() {
        // B = [[2, 1], [1, 3]] (symmetric), solve B x = [5, 10] => x = [1, 3].
        let cols = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut f = Factorization::default();
        assert!(f.refactor(2, sparse_loader(&cols)));
        let mut v = vec![5.0, 10.0];
        f.ftran(&mut v);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 3.0).abs() < 1e-12);
        let mut y = vec![5.0, 10.0];
        f.btran(&mut y);
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!((y[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // B = [[0, 1], [1, 0]] has no usable diagonal pivot.
        let cols = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut f = Factorization::default();
        assert!(f.refactor(2, sparse_loader(&cols)));
        let mut v = vec![3.0, 7.0];
        f.ftran(&mut v);
        // x solves [[0,1],[1,0]] x = [3,7] => x = [7, 3].
        assert!((v[0] - 7.0).abs() < 1e-12);
        assert!((v[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_basis_is_reported() {
        let cols = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut f = Factorization::default();
        assert!(!f.refactor(2, sparse_loader(&cols)));
        // A structurally empty column is singular too.
        let cols = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        let mut f = Factorization::default();
        assert!(!f.refactor(2, sparse_loader(&cols)));
    }

    #[test]
    fn forrest_tomlin_tracks_a_column_replacement() {
        // Start from B0 = I, replace column 0 by a = [3, 1]:
        // B1 = [[3, 0], [1, 1]].
        let cols = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut f = Factorization::default();
        assert!(f.refactor(2, sparse_loader(&cols)));
        let mut w = vec![3.0, 1.0];
        f.ftran(&mut w); // saves the spike
        assert!(f.update(0));
        assert_eq!(f.updates(), 1);
        // Solve B1 x = [6, 5]: x0 = 2, x1 = 5 - 2 = 3.
        let mut v = vec![6.0, 5.0];
        f.ftran(&mut v);
        assert!((v[0] - 2.0).abs() < 1e-12, "{v:?}");
        assert!((v[1] - 3.0).abs() < 1e-12, "{v:?}");
        // Bᵀ1 y = [7, 2]: Bᵀ1 = [[3,1],[0,1]] => y1 = 2, 3 y0 + y1 = 7 => y0 = 5/3.
        let mut y = vec![7.0, 2.0];
        f.btran(&mut y);
        assert!((y[0] - 5.0 / 3.0).abs() < 1e-12, "{y:?}");
        assert!((y[1] - 2.0).abs() < 1e-12, "{y:?}");
    }

    #[test]
    fn three_by_three_roundtrip() {
        let cols = vec![
            vec![4.0, 2.0, 1.0],
            vec![1.0, 5.0, 2.0],
            vec![0.0, 1.0, 6.0],
        ];
        let mut f = Factorization::default();
        assert!(f.refactor(3, sparse_loader(&cols)));
        for v0 in [vec![1.0, 0.0, 0.0], vec![2.0, -3.0, 5.0]] {
            assert_roundtrip(&mut f, &cols, &v0, 1e-10);
        }
    }

    #[test]
    fn duplicate_row_entries_are_merged_at_load() {
        // Column 0 delivered as two (row 0) fragments: 1.5 + 0.5 = 2.
        let mut f = Factorization::default();
        assert!(f.refactor(2, |k, rows, vals| {
            if k == 0 {
                rows.extend_from_slice(&[0, 0, 1]);
                vals.extend_from_slice(&[1.5, 0.5, 1.0]);
            } else {
                rows.push(1);
                vals.push(4.0);
            }
        }));
        // B = [[2, 0], [1, 4]]: B x = [2, 9] => x = [1, 2].
        let mut v = vec![2.0, 9.0];
        f.ftran(&mut v);
        assert!((v[0] - 1.0).abs() < 1e-12, "{v:?}");
        assert!((v[1] - 2.0).abs() < 1e-12, "{v:?}");
    }

    /// Deterministic xorshift stream, matching the style of the other
    /// solver tests (no RNG dependency inside rp-lp).
    struct XorShift(u64);
    impl XorShift {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 % 2000) as f64 / 100.0 - 10.0
        }
        fn next_usize(&mut self, bound: usize) -> usize {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 % bound as u64) as usize
        }
    }

    /// A random sparse nonsingular-ish matrix: a permuted diagonal plus
    /// `extra` off-diagonal entries.
    fn random_sparse(m: usize, extra: usize, rng: &mut XorShift) -> Vec<Vec<f64>> {
        let mut cols = vec![vec![0.0; m]; m];
        // A derangement-free random permutation via random swaps.
        let mut perm: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            perm.swap(i, rng.next_usize(i + 1));
        }
        for (k, col) in cols.iter_mut().enumerate() {
            let mut d = rng.next_f64();
            if d.abs() < 1.0 {
                d += d.signum().max(0.5) * 3.0;
            }
            col[perm[k]] = d;
        }
        for _ in 0..extra {
            let k = rng.next_usize(m);
            let i = rng.next_usize(m);
            cols[k][i] += rng.next_f64() * 0.3;
        }
        cols
    }

    /// Dense-LU reference (partial pivoting) used as the differential
    /// oracle for the sparse factorisation.
    struct DenseLu {
        m: usize,
        lu: Vec<f64>, // column-major
        piv: Vec<usize>,
    }
    impl DenseLu {
        fn factor(cols: &[Vec<f64>]) -> Option<DenseLu> {
            let m = cols.len();
            let mut lu = vec![0.0; m * m];
            for (k, col) in cols.iter().enumerate() {
                lu[k * m..(k + 1) * m].copy_from_slice(col);
            }
            let mut piv = vec![0usize; m];
            for k in 0..m {
                let mut pr = k;
                let mut pa = lu[k * m + k].abs();
                for i in k + 1..m {
                    if lu[k * m + i].abs() > pa {
                        pa = lu[k * m + i].abs();
                        pr = i;
                    }
                }
                if pa < 1e-11 {
                    return None;
                }
                piv[k] = pr;
                if pr != k {
                    for c in 0..m {
                        lu.swap(c * m + k, c * m + pr);
                    }
                }
                let inv = 1.0 / lu[k * m + k];
                for i in k + 1..m {
                    lu[k * m + i] *= inv;
                }
                for j in k + 1..m {
                    let f = lu[j * m + k];
                    if f != 0.0 {
                        for i in k + 1..m {
                            lu[j * m + i] -= f * lu[k * m + i];
                        }
                    }
                }
            }
            Some(DenseLu { m, lu, piv })
        }
        #[allow(clippy::needless_range_loop)]
        fn solve(&self, v: &mut [f64]) {
            let m = self.m;
            for k in 0..m {
                let p = self.piv[k];
                if p != k {
                    v.swap(k, p);
                }
            }
            for k in 0..m {
                let t = v[k];
                if t != 0.0 {
                    for i in k + 1..m {
                        v[i] -= self.lu[k * m + i] * t;
                    }
                }
            }
            for k in (0..m).rev() {
                let mut s = v[k];
                for j in k + 1..m {
                    s -= self.lu[j * m + k] * v[j];
                }
                v[k] = s / self.lu[k * m + k];
            }
        }
    }

    #[test]
    fn random_matrix_roundtrip_matches_a_dense_lu() {
        let mut rng = XorShift(0x12345678);
        for m in [5usize, 13, 20, 37, 64] {
            let cols = random_sparse(m, 3 * m, &mut rng);
            let mut f = Factorization::default();
            assert!(f.refactor(m, sparse_loader(&cols)), "m={m}");
            let dense = DenseLu::factor(&cols).expect("dense oracle factors");
            let v0: Vec<f64> = (0..m).map(|_| rng.next_f64()).collect();
            assert_roundtrip(&mut f, &cols, &v0, 1e-6);
            // Differential: sparse ftran == dense solve.
            let mut xs = v0.clone();
            f.ftran(&mut xs);
            let mut xd = v0.clone();
            dense.solve(&mut xd);
            for i in 0..m {
                assert!(
                    (xs[i] - xd[i]).abs() < 1e-6,
                    "m={m} pos {i}: sparse {} vs dense {}",
                    xs[i],
                    xd[i]
                );
            }
        }
    }

    #[test]
    fn long_update_chains_stay_consistent() {
        // Many Forrest–Tomlin updates on a random sparse basis; after
        // every update both solves must still invert the tracked basis,
        // and the chain must agree with a from-scratch refactorisation.
        let mut rng = XorShift(0xDEADBEEF);
        for m in [9usize, 24, 41] {
            let mut cols = random_sparse(m, 2 * m, &mut rng);
            let mut f = Factorization::default();
            assert!(f.refactor(m, sparse_loader(&cols)));
            let mut performed = 0;
            for step in 0..30 {
                let slot = rng.next_usize(m);
                // A sparse entering column with a solid pivot weight.
                let mut a = vec![0.0; m];
                for _ in 0..3 {
                    a[rng.next_usize(m)] = rng.next_f64() * 0.5;
                }
                a[slot] += 6.0 + rng.next_f64().abs();
                let mut w = a.clone();
                f.ftran(&mut w);
                if !f.update(slot) {
                    // Numerically refused: refactor and continue, like
                    // the simplex driver does.
                    assert!(f.refactor(m, sparse_loader(&cols)), "m={m} step {step}");
                    continue;
                }
                performed += 1;
                cols[slot] = a;
                let v0: Vec<f64> = (0..m).map(|_| rng.next_f64()).collect();
                assert_roundtrip(&mut f, &cols, &v0, 1e-5);
            }
            assert!(performed >= 20, "too few updates accepted: {performed}");
            assert_eq!(f.updates(), {
                // updates() resets on refactor; recount from the tail.
                f.updates()
            });
            // Differential against a fresh factorisation of the final basis.
            let mut fresh = Factorization::default();
            assert!(fresh.refactor(m, sparse_loader(&cols)));
            let v0: Vec<f64> = (0..m).map(|_| rng.next_f64()).collect();
            let mut a1 = v0.clone();
            f.ftran(&mut a1);
            let mut a2 = v0.clone();
            fresh.ftran(&mut a2);
            for i in 0..m {
                assert!(
                    (a1[i] - a2[i]).abs() < 1e-5,
                    "m={m} pos {i}: updated {} vs fresh {}",
                    a1[i],
                    a2[i]
                );
            }
        }
    }

    #[test]
    fn tree_structured_bases_produce_sparse_factors() {
        // A bidiagonal (path-tree) basis: the factors must not fill in.
        let m = 50;
        let mut cols = vec![vec![0.0; m]; m];
        for (k, col) in cols.iter_mut().enumerate() {
            col[k] = 2.0;
            if k + 1 < m {
                col[k + 1] = -1.0;
            }
        }
        let mut f = Factorization::default();
        assert!(f.refactor(m, sparse_loader(&cols)));
        let (lnnz, unnz) = f.nnz();
        assert!(lnnz <= m, "L filled in: {lnnz}");
        assert!(unnz <= 2 * m, "U filled in: {unnz}");
        let v0: Vec<f64> = (0..m).map(|i| (i % 7) as f64 - 3.0).collect();
        assert_roundtrip(&mut f, &cols, &v0, 1e-8);
    }

    #[test]
    fn update_refuses_a_singular_replacement() {
        // Replacing column 0 of I by e_1 makes the basis singular
        // (duplicate column): the update must refuse.
        let cols = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut f = Factorization::default();
        assert!(f.refactor(2, sparse_loader(&cols)));
        let mut w = vec![0.0, 1.0];
        f.ftran(&mut w);
        assert!(!f.update(0));
        // The factorisation is untouched: it still inverts I.
        let mut v = vec![4.0, 9.0];
        f.ftran(&mut v);
        assert!((v[0] - 4.0).abs() < 1e-12 && (v[1] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_basis_is_trivial() {
        let mut f = Factorization::default();
        assert!(f.refactor(0, |_, _, _| {}));
        let mut v: Vec<f64> = vec![];
        f.ftran(&mut v);
        f.btran(&mut v);
        assert_eq!(f.nnz(), (0, 0));
    }
}
