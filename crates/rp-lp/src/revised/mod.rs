//! Bounded-variable revised simplex with a factorised basis.
//!
//! This is the scalable counterpart of the dense tableau in
//! [`crate::simplex`]. The method keeps the constraint matrix fixed and
//! sparse (see [`basis::StandardForm`]) and represents the basis inverse
//! as an LU factorisation plus a product-form eta file
//! ([`factor::Factorization`]), so one iteration costs
//! `O(m² + nnz)` instead of the tableau's `O(m·n)` full-matrix
//! elimination — with `m` equal to the *constraint* count only, because
//! variable bounds are handled implicitly by the ratio test
//! ([`ratio`]) rather than materialised as rows.
//!
//! Cold solves pick between two routes. When the phase-2 costs are
//! already **dual feasible at the bound point** — every structural
//! column can sit at a finite bound whose sign agrees with its cost,
//! which is true of all the min-cost replica relaxations (`c ≥ 0`,
//! everything boxed at lower bound 0) — the solve starts from the slack
//! basis and runs the **dual simplex** directly: no phase 1, no
//! artificials, and the bound-flipping dual ratio test ([`ratio`])
//! turns the many boxed columns into long dual steps. Otherwise the
//! textbook two phases run as bounded primal simplex from a **crash
//! basis** that covers infeasible rows with structural columns wherever
//! possible, so phase 1 starts with only a handful of artificials.
//!
//! For branch-and-bound, the workspace additionally supports **warm
//! starts** ([`RevisedWorkspace::solve_warm`]): after a node changes
//! variable bounds, the parent's optimal basis is still dual feasible
//! (bounds do not enter the reduced costs), so a few dual-simplex
//! pivots restore primal feasibility instead of re-running both phases
//! from scratch. The dual simplex prices its leaving row with **dual
//! devex** weights by default ([`DualPricing`]) and its entering column
//! with the bound-flipping ratio test. The basis is refactorised every
//! [`REFACTOR_EVERY`] updates — and the basic values recomputed from
//! the right-hand side — to keep the product form numerically honest.

mod basis;
mod factor;
mod pricing;
mod ratio;
mod scaling;

use std::time::Instant;

use crate::error::LpError;
use crate::model::Model;
use crate::simplex::SimplexOptions;
use crate::solution::{Solution, Status};

use basis::{BasisState, ColStatus, Presolve, StandardForm};
use factor::Factorization;
use pricing::{
    choose_entering, devex_update, dual_devex_update, pivot_row_alphas, CandidateQueue,
    DualCandidates, Entering,
};
use ratio::{dual_ratio_test, primal_ratio_test, DualRatio, Ratio};

pub use pricing::{DualPricing, Pricing};
pub use scaling::Scaling;

/// Eta updates tolerated before the basis is refactorised and the basic
/// values recomputed from scratch.
const REFACTOR_EVERY: usize = 256;

/// Pivot-magnitude tolerance of the ratio tests.
const PIVOT_TOL: f64 = 1e-9;

/// Constraint count below which the cold-solve fixed costs — the
/// presolve analysis passes and the devex weight machinery — outweigh
/// what they save (the documented ~10–20% overhead at `s ≤ 40`). Below
/// this threshold a solve skips presolve and prices with plain Dantzig;
/// the sweep's sibling warm starts are unaffected.
const MICRO_LP_ROWS: usize = 50;

/// Whether a solve of `model` should actually run the presolve pass.
fn effective_presolve(model: &Model, options: &SimplexOptions) -> bool {
    options.presolve && model.num_constraints() >= MICRO_LP_ROWS
}

/// The pricing rule a solve of `model` should actually use: the
/// weight-carrying rules (partial, devex) downgrade to Dantzig on micro
/// models, where every rule pivots near-identically but the weight and
/// queue bookkeeping still costs.
fn effective_pricing(model: &Model, options: &SimplexOptions) -> Pricing {
    if matches!(options.pricing, Pricing::Partial | Pricing::Devex)
        && model.num_constraints() < MICRO_LP_ROWS
    {
        Pricing::Dantzig
    } else {
        options.pricing
    }
}

/// Reusable state of the revised simplex: standard form, basis,
/// factorisation and every scratch vector. A workspace can be reused
/// across solves ([`solve_lp_revised_reusing`]) and carries the optimal
/// basis forward for warm starts ([`RevisedWorkspace::solve_warm`]).
#[derive(Default)]
pub struct RevisedWorkspace {
    form: StandardForm,
    basis: BasisState,
    factor: Factorization,
    presolve: Presolve,
    /// Whether `form` is the presolved reduction of the last model.
    presolved: bool,
    /// The scaling mode `form` was built under (a changed mode forces a
    /// cold rebuild on the next solve).
    scaling_mode: Scaling,
    /// The pricing rule of the current solve (the options' rule after
    /// the micro-size downgrade).
    pricing: Pricing,
    /// The dual pricing rule of the current solve.
    dual_pricing: DualPricing,
    /// Partial-pricing candidate queue (see [`pricing`]).
    queue: CandidateQueue,
    /// Dual devex row weights (one per basis slot).
    dual_weights: Vec<f64>,
    /// Incremental list of primal-infeasible rows (dual pricing).
    dual_cands: DualCandidates,
    /// Bound-flipping dual ratio test scratch: `(ratio, |alpha|, col)`
    /// breakpoints and the columns chosen to flip.
    breakpoints: Vec<(f64, f64, u32)>,
    flips: Vec<u32>,
    /// Dual values / BTRAN buffer.
    y: Vec<f64>,
    /// Pivot column / FTRAN buffer.
    w: Vec<f64>,
    /// Nonzero pattern of `w` while the dual loop keeps it sparse.
    w_nz: Vec<u32>,
    /// Dual pivot row buffer, kept zero outside `rho_nz`.
    rho: Vec<f64>,
    /// Nonzero pattern of `rho` (maintained by every writer of `rho`).
    rho_nz: Vec<u32>,
    /// Residual right-hand-side buffer.
    residual: Vec<f64>,
    /// Nonzero pattern of `residual` during the bound-flip FTRAN.
    residual_nz: Vec<u32>,
    /// Per-row flags used by the crash-basis construction.
    row_flags: Vec<bool>,
    /// Phase-1 cost buffer.
    phase_costs: Vec<f64>,
    /// Devex reference-framework weights (one per column).
    devex_weights: Vec<f64>,
    /// Incrementally maintained reduced costs (one per column).
    d: Vec<f64>,
    /// Sparse pivot row: dense accumulator plus the gathered
    /// column/value lists (see [`pricing::pivot_row_alphas`]).
    alpha_acc: Vec<f64>,
    alpha_cols: Vec<u32>,
    alpha_vals: Vec<f64>,
    /// Pivot counters of the most recent solve.
    stats: SolveStats,
    /// FTRAN/BTRAN lifetime counters at solve entry (the factorisation
    /// counts monotonically; per-solve numbers are deltas).
    io_entry: (TranCounters, TranCounters),
    /// Set once a solve left behind a basis usable for warm starts.
    warm_ready: bool,
    /// Wall-clock deadline of the current solve (from the options'
    /// [`crate::SolveBudget`]), fixed at solve entry so warm-to-cold
    /// fallbacks do not restart the clock.
    deadline: Option<Instant>,
    /// Whole-solve iterations still allowed under the budget.
    budget_iters: Option<usize>,
    /// Typed reason the most recent solve stopped abnormally, if it
    /// did. See [`RevisedWorkspace::last_error`].
    last_error: Option<LpError>,
    /// Wall-clock start of the current solve, captured only while
    /// observation is on (pure measurement — never read by any solver
    /// decision, so instrumented runs stay bit-identical).
    solve_started: Option<Instant>,
}

/// Input-density counters of one transform direction (FTRAN or BTRAN):
/// how many entries the permute-in pass saw, and how many were nonzero.
/// The complement of the density is the share of work the hyper-sparse
/// transforms may skip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TranCounters {
    /// Transform invocations.
    pub calls: u64,
    /// Nonzero entries across all input vectors.
    pub in_nnz: u64,
    /// Summed input-vector dimensions (total entries seen).
    pub dim: u64,
}

impl TranCounters {
    /// Counter growth since an `earlier` snapshot of the same monotone
    /// counters (per-solve deltas out of lifetime totals).
    pub(crate) fn delta_since(self, earlier: TranCounters) -> TranCounters {
        TranCounters {
            calls: self.calls.saturating_sub(earlier.calls),
            in_nnz: self.in_nnz.saturating_sub(earlier.in_nnz),
            dim: self.dim.saturating_sub(earlier.dim),
        }
    }

    /// Fraction of input entries that were exact zeros — the sparsity
    /// the transforms can exploit. `0.0` before any call.
    pub fn skip_ratio(self) -> f64 {
        if self.dim == 0 {
            0.0
        } else {
            1.0 - self.in_nnz as f64 / self.dim as f64
        }
    }
}

/// How a [`RevisedWorkspace`] solve entered: cold, or which warm-start
/// outcome answered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WarmStart {
    /// Two-phase cold solve: no stored basis, a structural change, or a
    /// mid-solve fallback after the warm cleanup stalled.
    #[default]
    Cold,
    /// The warm path answered with only the entry refactorisation.
    WarmHit,
    /// The warm path answered but needed further refactorisations along
    /// the way.
    WarmRefactor,
    /// A stored basis existed but the presolve or scaling mode changed,
    /// forcing a cold rebuild.
    ModeChangeCold,
}

impl WarmStart {
    /// The wire name used in events and metrics JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            WarmStart::Cold => "cold",
            WarmStart::WarmHit => "warm_hit",
            WarmStart::WarmRefactor => "warm_refactor",
            WarmStart::ModeChangeCold => "mode_change_cold",
        }
    }
}

/// Counters describing the most recent solve of a
/// [`RevisedWorkspace`] — what the iteration-count benchmarks (devex vs
/// Dantzig), the `BENCH_sparse.json` report and the `rp-obs` registry
/// read out.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Primal simplex basis changes (phases 1 and 2 combined).
    pub primal_pivots: usize,
    /// Primal basis changes during phase 1 (artificials allowed).
    pub phase1_pivots: usize,
    /// Bound flips (nonbasic variable jumps to its opposite bound; no
    /// basis change).
    pub bound_flips: usize,
    /// Dual simplex basis changes (warm cleanups and dual cold starts).
    pub dual_pivots: usize,
    /// Bounds flipped by the bound-flipping dual ratio test, summed
    /// over dual pivots. Each flip replaces a would-be pivot;
    /// `dual_bound_flips / dual_pivots` is the long-step payoff.
    pub dual_bound_flips: usize,
    /// Entering candidates served straight from the partial-pricing
    /// queue (no full scan).
    pub queue_hits: usize,
    /// Full-scan rebuilds of the partial-pricing queue (queue
    /// exhaustion, phase starts and optimality confirmations).
    pub queue_rebuilds: usize,
    /// Devex reference-framework resets (primal weight overflows plus
    /// dual row-weight overflows).
    pub devex_resets: usize,
    /// Basis changes with a zero step length (primal or dual).
    pub degenerate_pivots: usize,
    /// Refactorisations performed, the initial one included.
    pub refactorisations: usize,
    /// Refactorisations triggered by the eta-file budget
    /// ([`REFACTOR_EVERY`]).
    pub refactor_scheduled: usize,
    /// Refactorisations forced by a refused (numerically unsafe)
    /// Forrest–Tomlin update.
    pub refactor_ft_refused: usize,
    /// Longest product-form eta chain reached before a refactorisation.
    pub max_eta_chain: usize,
    /// Rows eliminated by presolve (0 when presolve did not run).
    pub presolve_rows_removed: usize,
    /// Columns eliminated by presolve (0 when presolve did not run).
    pub presolve_cols_removed: usize,
    /// FTRAN input-density counters for this solve.
    pub ftran: TranCounters,
    /// BTRAN input-density counters for this solve.
    pub btran: TranCounters,
    /// Which warm-start outcome this solve took.
    pub warm: WarmStart,
    /// Per-phase wall-time breakdown of this solve (all-zero under
    /// `ObsMode::Off`, where no clock is read).
    pub phases: rp_obs::PhaseTimes,
}

impl SolveStats {
    /// Total simplex iterations: pivots of both kinds plus bound flips.
    pub fn iterations(&self) -> usize {
        self.primal_pivots + self.bound_flips + self.dual_pivots
    }

    /// Primal basis changes during phase 2 (and the warm-start polish).
    pub fn phase2_pivots(&self) -> usize {
        self.primal_pivots - self.phase1_pivots
    }
}

impl RevisedWorkspace {
    /// A fresh workspace.
    pub fn new() -> Self {
        RevisedWorkspace::default()
    }

    /// Discards any stored basis, forcing the next solve to start cold.
    pub fn invalidate(&mut self) {
        self.warm_ready = false;
    }

    /// Solves `model`, reusing the previous optimal basis when the
    /// constraint *matrix* is unchanged (verified entry-for-entry in
    /// `O(nnz)`); bounds, objective and right-hand sides may all differ
    /// — branch-and-bound only changes bounds, which additionally keeps
    /// the basis dual feasible so the dual cleanup is short. Falls back
    /// to a cold two-phase solve on any structural change, or when the
    /// dual-simplex cleanup fails.
    pub fn solve_warm(&mut self, model: &Model, options: &SimplexOptions) -> Solution {
        let _span = rp_obs::span(rp_obs::SpanKind::LpSolve);
        self.begin_solve(options);
        let solution = self.solve_warm_inner(model, options);
        self.finish_solve(&solution);
        solution
    }

    /// The warm-path body of [`RevisedWorkspace::solve_warm`], without
    /// budget reset or telemetry bookkeeping.
    fn solve_warm_inner(&mut self, model: &Model, options: &SimplexOptions) -> Solution {
        self.stats = SolveStats::default();
        self.pricing = effective_pricing(model, options);
        self.dual_pricing = options.dual_pricing;
        if !self.warm_ready
            || self.presolved != effective_presolve(model, options)
            || self.scaling_mode != options.scaling
        {
            let was_warm = self.warm_ready;
            let solution = self.solve_cold_inner(model, options);
            if was_warm {
                // A usable basis existed; only the mode mismatch forced
                // the cold path.
                self.stats.warm = WarmStart::ModeChangeCold;
            }
            return solution;
        }
        if self.presolved {
            // Re-run the (cheap, O(nnz)) analysis: the stored reduced
            // basis is only reusable when the new model eliminates
            // exactly the same rows and columns.
            if !self.presolve.analyze(model) {
                return Solution::status_only(Status::Infeasible);
            }
            if !self.presolve.matches_built()
                || !self.form.matrix_matches_reduced(model, &self.presolve)
            {
                return self.solve_cold_inner(model, options);
            }
            self.form.refresh_reduced(model, &self.presolve);
        } else {
            if !self.form.shape_matches(model) || !self.form.matrix_matches(model) {
                return self.solve_cold_inner(model, options);
            }
            self.form.refresh_bounds(model);
        }
        if self.form.trivially_infeasible {
            return Solution::status_only(Status::Infeasible);
        }
        // Nonbasic columns whose bound vanished must be re-anchored.
        for col in 0..self.form.num_cols() {
            match self.basis.status[col] {
                ColStatus::Upper if self.form.upper[col] == f64::INFINITY => {
                    self.basis.status[col] = ColStatus::Lower;
                }
                ColStatus::Lower if self.form.lower[col] == f64::NEG_INFINITY => {
                    self.basis.status[col] = ColStatus::Upper;
                }
                _ => {}
            }
        }
        let warm_refac_ok = {
            let _t = rp_obs::phase_timer(rp_obs::Phase::Factorise);
            self.refactor_and_recompute()
        };
        if !warm_refac_ok {
            return self.solve_cold_inner(model, options);
        }
        // The stored basis is in play: classify the solve as a warm hit
        // (upgraded to `WarmRefactor` by `finish_solve` if further
        // refactorisations prove necessary). Mid-solve cold fallbacks
        // below reset the stats, reverting the classification to cold.
        self.stats.warm = WarmStart::WarmHit;
        match self.dual_loop(options) {
            DualOutcome::PrimalFeasible => {}
            DualOutcome::Infeasible => {
                // Dual unbounded ⇒ primal infeasible. The basis stays
                // warm for the next sibling node.
                return Solution::status_only(Status::Infeasible);
            }
            // A deadline stop must not restart from scratch — that
            // would spend even longer. The dual simplex maintains dual
            // feasibility at every basis it visits, so by weak duality
            // the objective of the current (primal-infeasible) basic
            // solution is a valid bound on the optimum: return it
            // instead of discarding the cleanup work. The basis stays
            // warm for the next delta. Everything else falls back to a
            // cold solve, which historically recovers these cases.
            DualOutcome::Stopped(LpError::DeadlineExceeded) => {
                let bound = self.dual_bound_objective(model);
                self.last_error = Some(LpError::DeadlineExceeded);
                return Solution::bound_only(Status::DeadlineExceeded, bound);
            }
            DualOutcome::Stopped(_) => return self.solve_cold_inner(model, options),
        }
        // Polish with primal phase 2: exits immediately when the dual
        // cleanup already reached optimality, and absorbs any residual
        // dual infeasibility (e.g. a bound that loosened back) otherwise.
        self.polish_and_extract(model, options)
    }

    /// Primal phase-2 polish after a dual simplex run reached primal
    /// feasibility, followed by solution extraction. Exits immediately
    /// when the dual pass already proved optimality.
    fn polish_and_extract(&mut self, model: &Model, options: &SimplexOptions) -> Solution {
        self.load_phase2_costs();
        let costs = std::mem::take(&mut self.phase_costs);
        let outcome = self.primal_loop(&costs, options, false);
        self.phase_costs = costs;
        match outcome {
            PhaseOutcome::Optimal => self.extract(model, options, Status::Optimal),
            PhaseOutcome::Unbounded => Solution::status_only(Status::Unbounded),
            PhaseOutcome::Stopped(err) => {
                // The dual pass reached primal feasibility and the
                // primal polish preserves it: extract the best point
                // found so far instead of discarding the work.
                self.last_error = Some(err);
                self.extract(model, options, err.status())
            }
        }
    }

    /// Cold two-phase solve, ignoring any stored basis.
    pub fn solve_cold(&mut self, model: &Model, options: &SimplexOptions) -> Solution {
        let _span = rp_obs::span(rp_obs::SpanKind::LpSolve);
        self.begin_solve(options);
        let solution = self.solve_cold_inner(model, options);
        self.finish_solve(&solution);
        solution
    }

    /// [`RevisedWorkspace::solve_cold`] without resetting the solve
    /// budget — the warm path falls back here mid-solve, and the clock
    /// must keep running across the fallback.
    fn solve_cold_inner(&mut self, model: &Model, options: &SimplexOptions) -> Solution {
        self.stats = SolveStats::default();
        self.warm_ready = false;
        self.pricing = effective_pricing(model, options);
        self.dual_pricing = options.dual_pricing;
        self.presolved = effective_presolve(model, options);
        self.scaling_mode = options.scaling;
        // Clear any previous model's scaling state up front: presolve
        // may prove infeasibility and return before the build runs, and
        // `scaling_spread` must not report the previous solve's data.
        self.form.reset_scaling();
        let presolve_timer = rp_obs::phase_timer(rp_obs::Phase::Presolve);
        if self.presolved {
            if !self.presolve.analyze(model) {
                return Solution::status_only(Status::Infeasible);
            }
            self.presolve.finalize_for_build();
            self.form.build_reduced(model, &self.presolve);
        } else {
            self.form.build(model);
        }
        drop(presolve_timer);
        if self.form.trivially_infeasible {
            return Solution::status_only(Status::Infeasible);
        }
        {
            let _t = rp_obs::phase_timer(rp_obs::Phase::Scaling);
            self.form.apply_scaling(options.scaling);
        }
        let m = self.form.m;
        let n = self.form.n_struct;

        // ---- Dual cold start. ----
        // When every structural column can sit at a finite bound whose
        // sign agrees with its cost, the slack basis is dual feasible
        // and the dual simplex solves the LP in one pass: no phase 1,
        // no artificials, and the bound-flipping ratio test exploits
        // the boxed columns. The min-cost replica relaxations (c ≥ 0,
        // everything boxed at lower bound 0) always qualify. Any
        // abnormal stop falls through to the classic two-phase path.
        if self.try_dual_start_basis(options.tolerance) {
            let refac_ok = {
                let _t = rp_obs::phase_timer(rp_obs::Phase::Factorise);
                self.refactor_and_recompute()
            };
            if !refac_ok {
                return self.fail(LpError::SingularBasis);
            }
            match self.dual_loop(options) {
                DualOutcome::PrimalFeasible => {
                    return self.polish_and_extract(model, options);
                }
                // The start was dual feasible, so an unbounded dual
                // step proves primal infeasibility.
                DualOutcome::Infeasible => {
                    return Solution::status_only(Status::Infeasible);
                }
                // Same weak-duality argument as the warm cleanup: the
                // dual simplex only visits dual-feasible bases, so the
                // current objective is a valid bound on the optimum.
                DualOutcome::Stopped(LpError::DeadlineExceeded) => {
                    let bound = self.dual_bound_objective(model);
                    self.last_error = Some(LpError::DeadlineExceeded);
                    return Solution::bound_only(Status::DeadlineExceeded, bound);
                }
                // Iteration cap or numerical trouble: rebuild from
                // scratch on the historically hardened two-phase path
                // (which carries the Bland anti-cycling fallback).
                DualOutcome::Stopped(_) => {}
            }
        }

        // Initial point: structural columns at their (finite) lower
        // bounds; the residual decides, row by row, whether the slack
        // can be basic or an artificial is needed.
        self.basis.status.clear();
        self.basis
            .status
            .extend(std::iter::repeat_n(ColStatus::Lower, n + m));
        self.basis.basic.clear();
        self.basis.basic.resize(m, usize::MAX);
        self.basis.x_basic.clear();
        self.basis.x_basic.resize(m, 0.0);

        self.residual.clear();
        self.residual.extend_from_slice(&self.form.rhs);
        for j in 0..n {
            let lb = self.form.lower[j];
            if lb != 0.0 {
                let (col_rows, col_vals, range) = (
                    &self.form.col_rows,
                    &self.form.col_vals,
                    self.form.col_ptr[j]..self.form.col_ptr[j + 1],
                );
                for k in range {
                    self.residual[col_rows[k] as usize] -= col_vals[k] * lb;
                }
            }
        }
        // Crash pass: a row whose initial slack value violates the
        // slack bounds would need an artificial — and every artificial
        // costs phase-1 pivots to drive out again. Instead, try to make
        // a *structural* column basic in the row, at the value that
        // closes the residual exactly. The column must not touch any
        // other deficient row (so the crash columns + slacks stay block
        // triangular and trivially nonsingular) and the value must lie
        // within its bounds. On the replica formulations this covers
        // every `cover` equality with one of its `y` variables, cutting
        // phase 1 from one artificial per client to a handful.
        self.row_flags.clear();
        for row in 0..m {
            let slack = n + row;
            let r = self.residual[row];
            self.row_flags
                .push(r < self.form.lower[slack] || r > self.form.upper[slack]);
        }
        for row in 0..m {
            // `row_flags` stays set for rows that received a crash
            // column: a later candidate may not touch *any* deficient
            // row (crashed or not), which keeps every crash row's basic
            // value decoupled — the recompute below then reproduces the
            // hand-checked in-bounds values exactly.
            if !self.row_flags[row] || self.basis.basic[row] != usize::MAX {
                continue;
            }
            let r = self.residual[row];
            // (column, its coefficient in this row) of the best
            // candidate so far — carrying the coefficient avoids having
            // to re-find the entry after the scan.
            let mut chosen: Option<(usize, f64)> = None;
            for k in self.form.row_ptr[row]..self.form.row_ptr[row + 1] {
                let col = self.form.row_cols[k] as usize;
                let coeff = self.form.row_vals[k];
                if coeff.abs() < 1e-7 || self.basis.status[col] != ColStatus::Lower {
                    continue;
                }
                let value = self.form.lower[col] + r / coeff;
                if value < self.form.lower[col] || value > self.form.upper[col] {
                    continue;
                }
                let touches_deficient_row = (self.form.col_ptr[col]..self.form.col_ptr[col + 1])
                    .any(|t| {
                        let other = self.form.col_rows[t] as usize;
                        other != row && self.row_flags[other]
                    });
                if touches_deficient_row {
                    continue;
                }
                match chosen {
                    Some((_, best)) if coeff.abs() <= best.abs() => {}
                    _ => chosen = Some((col, coeff)),
                }
            }
            if let Some((col, coeff)) = chosen {
                // The column leaves its lower bound: remove the lower
                //-bound contribution already folded into the residual
                // and install the basic value.
                let value = self.form.lower[col] + r / coeff;
                let delta = value - self.form.lower[col];
                for t in self.form.col_ptr[col]..self.form.col_ptr[col + 1] {
                    let other = self.form.col_rows[t] as usize;
                    if other != row {
                        self.residual[other] -= self.form.col_vals[t] * delta;
                    }
                }
                self.basis.status[col] = ColStatus::Basic(row as u32);
                self.basis.basic[row] = col;
                self.basis.x_basic[row] = value;
                // The row's slack stays nonbasic: park it at its finite
                // bound (a `>=` slack is unbounded below, so "lower"
                // would be -inf).
                let slack = n + row;
                self.basis.status[slack] = if self.form.lower[slack].is_finite() {
                    ColStatus::Lower
                } else {
                    ColStatus::Upper
                };
            }
        }

        for row in 0..m {
            if self.basis.basic[row] != usize::MAX {
                continue; // crash column already basic here
            }
            let slack = n + row;
            let r = self.residual[row];
            let (slo, shi) = (self.form.lower[slack], self.form.upper[slack]);
            if r >= slo && r <= shi {
                self.basis.status[slack] = ColStatus::Basic(row as u32);
                self.basis.basic[row] = slack;
                self.basis.x_basic[row] = r;
            } else {
                // Park the slack at its nearest bound and cover the
                // deficit with a signed artificial.
                let (bound_status, bound_value) = if r > shi {
                    (ColStatus::Upper, shi)
                } else {
                    (ColStatus::Lower, slo)
                };
                self.basis.status[slack] = bound_status;
                let deficit = r - bound_value;
                let art_col = self.form.num_cols();
                self.form.art_rows.push(row);
                self.form.art_signs.push(deficit.signum());
                self.form.lower.push(0.0);
                self.form.upper.push(f64::INFINITY);
                self.form.cost.push(0.0);
                self.basis.status.push(ColStatus::Basic(row as u32));
                self.basis.basic[row] = art_col;
                self.basis.x_basic[row] = deficit.abs();
            }
        }

        // The crash may leave tiny inconsistencies (clamped values);
        // recomputing `x_B = B⁻¹(b − N·x_N)` makes the start exact.
        // The crash basis is block triangular by construction, so a
        // failure here means genuinely degenerate input data.
        let crash_refac_ok = {
            let _t = rp_obs::phase_timer(rp_obs::Phase::Factorise);
            self.refactor_and_recompute()
        };
        if !crash_refac_ok {
            return self.fail(LpError::SingularBasis);
        }

        // ---- Phase 1: minimise the sum of artificials. ----
        if !self.form.art_rows.is_empty() {
            let art_base = self.form.art_base();
            self.phase_costs.clear();
            self.phase_costs
                .extend((0..self.form.num_cols()).map(|c| f64::from(u8::from(c >= art_base))));
            let costs = std::mem::take(&mut self.phase_costs);
            let outcome = self.primal_loop(&costs, options, true);
            self.phase_costs = costs;
            match outcome {
                PhaseOutcome::Optimal => {}
                // Phase 1 is bounded below by 0; "unbounded" means a
                // numerical failure. The status stays the conservative
                // `IterationLimit` (like the dense solver), with the
                // precise reason recorded on the workspace.
                PhaseOutcome::Unbounded => return self.fail(LpError::NumericalLoss),
                // No feasible point exists yet mid-phase-1, so a budget
                // or solver stop here has nothing to extract.
                PhaseOutcome::Stopped(err) => return self.fail(err),
            }
            let infeasibility: f64 = self
                .basis
                .basic
                .iter()
                .enumerate()
                .filter(|&(_, &col)| col >= art_base)
                .map(|(row, _)| self.basis.x_basic[row].abs())
                .sum();
            if infeasibility > options.tolerance * 10.0 {
                return Solution::status_only(Status::Infeasible);
            }
            // Pin the artificials to zero for phase 2: basic ones stay
            // (at value 0, their bounds block any move away), nonbasic
            // ones are fixed and never priced again.
            for a in 0..self.form.art_rows.len() {
                let col = art_base + a;
                self.form.upper[col] = 0.0;
                if let ColStatus::Basic(row) = self.basis.status[col] {
                    self.basis.x_basic[row as usize] = 0.0;
                }
            }
        }

        // ---- Phase 2: minimise the true objective. ----
        self.load_phase2_costs();
        let costs = std::mem::take(&mut self.phase_costs);
        let outcome = self.primal_loop(&costs, options, false);
        self.phase_costs = costs;
        match outcome {
            PhaseOutcome::Optimal => self.extract(model, options, Status::Optimal),
            PhaseOutcome::Unbounded => Solution::status_only(Status::Unbounded),
            PhaseOutcome::Stopped(err) => {
                // Phase 2 iterates over primal-feasible bases only, so
                // the current point is feasible — return it as the best
                // bound so far rather than discarding the work.
                self.last_error = Some(err);
                self.extract(model, options, err.status())
            }
        }
    }

    /// Records the typed stop reason and returns its conservative
    /// status-only solution.
    fn fail(&mut self, err: LpError) -> Solution {
        self.last_error = Some(err);
        Solution::status_only(err.status())
    }

    /// Resets the per-solve budget state from the options. Runs once
    /// per public solve entry; internal warm-to-cold fallbacks keep the
    /// running clock.
    fn begin_solve(&mut self, options: &SimplexOptions) {
        self.last_error = None;
        self.deadline = options
            .budget
            .deadline
            .map(|allowance| Instant::now() + allowance);
        self.budget_iters = options.budget.max_iterations;
        self.io_entry = self.factor.io_counters();
        self.solve_started = rp_obs::counters_on().then(Instant::now);
        if self.solve_started.is_some() {
            rp_obs::reset_solve_profile();
        }
    }

    /// Final per-solve bookkeeping: computes the FTRAN/BTRAN deltas,
    /// settles the warm-start classification and the presolve reduction
    /// counts on [`SolveStats`], then publishes everything into the
    /// `rp-obs` registry (mode permitting). Pure observation — nothing
    /// here feeds back into any solver decision.
    fn finish_solve(&mut self, solution: &Solution) {
        let (ftran_now, btran_now) = self.factor.io_counters();
        self.stats.ftran = ftran_now.delta_since(self.io_entry.0);
        self.stats.btran = btran_now.delta_since(self.io_entry.1);
        self.stats.max_eta_chain = self.stats.max_eta_chain.max(self.factor.updates());
        if self.stats.warm == WarmStart::WarmHit && self.stats.refactorisations > 1 {
            self.stats.warm = WarmStart::WarmRefactor;
        }
        if self.presolved {
            self.stats.presolve_rows_removed = self.presolve.rows_removed();
            self.stats.presolve_cols_removed = self.presolve.cols_removed();
        }
        if rp_obs::counters_on() {
            self.stats.phases = rp_obs::take_solve_profile();
            let solve_us = self
                .solve_started
                .take()
                .map(|start| start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64)
                .unwrap_or(0);
            self.publish_stats(solution, solve_us);
        }
    }

    /// Publishes the settled [`SolveStats`] into the global `rp-obs`
    /// registry and files the solve with the flight recorder; in
    /// `Full` mode additionally emits one structured `lp.solve` event.
    fn publish_stats(&self, solution: &Solution, solve_us: u64) {
        use rp_obs::{Counter, Gauge, GaugeF};
        let stats = &self.stats;
        rp_obs::incr(Counter::LpSolves);
        rp_obs::add(Counter::LpPhase1Pivots, stats.phase1_pivots as u64);
        rp_obs::add(Counter::LpPhase2Pivots, stats.phase2_pivots() as u64);
        rp_obs::add(Counter::LpDualPivots, stats.dual_pivots as u64);
        rp_obs::add(Counter::LpBoundFlips, stats.bound_flips as u64);
        rp_obs::add(Counter::LpDegeneratePivots, stats.degenerate_pivots as u64);
        rp_obs::add(Counter::LpRefactorisations, stats.refactorisations as u64);
        rp_obs::add(
            Counter::LpRefactorScheduled,
            stats.refactor_scheduled as u64,
        );
        rp_obs::add(
            Counter::LpRefactorFtRefused,
            stats.refactor_ft_refused as u64,
        );
        rp_obs::incr(match stats.warm {
            WarmStart::Cold => Counter::LpWarmCold,
            WarmStart::WarmHit => Counter::LpWarmHit,
            WarmStart::WarmRefactor => Counter::LpWarmRefactor,
            WarmStart::ModeChangeCold => Counter::LpWarmModeChangeCold,
        });
        rp_obs::add(
            Counter::LpPresolveRowsRemoved,
            stats.presolve_rows_removed as u64,
        );
        rp_obs::add(
            Counter::LpPresolveColsRemoved,
            stats.presolve_cols_removed as u64,
        );
        rp_obs::incr(match self.pricing {
            Pricing::Partial => Counter::LpPricingPartial,
            Pricing::Devex => Counter::LpPricingDevex,
            Pricing::Dantzig => Counter::LpPricingDantzig,
            Pricing::Bland => Counter::LpPricingBland,
        });
        rp_obs::add(Counter::LpQueueHits, stats.queue_hits as u64);
        rp_obs::add(Counter::LpQueueRebuilds, stats.queue_rebuilds as u64);
        rp_obs::add(Counter::LpDualBoundFlips, stats.dual_bound_flips as u64);
        rp_obs::add(Counter::LpDevexResets, stats.devex_resets as u64);
        rp_obs::add(Counter::LpFtranCalls, stats.ftran.calls);
        rp_obs::add(Counter::LpFtranInNnz, stats.ftran.in_nnz);
        rp_obs::add(Counter::LpFtranDim, stats.ftran.dim);
        rp_obs::add(Counter::LpBtranCalls, stats.btran.calls);
        rp_obs::add(Counter::LpBtranInNnz, stats.btran.in_nnz);
        rp_obs::add(Counter::LpBtranDim, stats.btran.dim);
        for phase in rp_obs::Phase::ALL {
            rp_obs::add(phase.counter(), stats.phases.nanos(phase));
        }
        let (nnz_l, nnz_u) = self.factor.nnz();
        rp_obs::gauge_set(Gauge::LpFactorNnzL, nnz_l as u64);
        rp_obs::gauge_set(Gauge::LpFactorNnzU, nnz_u as u64);
        rp_obs::gauge_max(Gauge::LpEtaChainMax, stats.max_eta_chain as u64);
        rp_obs::gauge_set(Gauge::LpLastIterations, stats.iterations() as u64);
        rp_obs::record_solve(rp_obs::SolveRecord {
            seq: 0, // assigned by the recorder
            rows: self.form.m as u64,
            cols: self.form.n_struct as u64,
            warm: stats.warm.as_str(),
            status: solution.status.to_string(),
            iterations: stats.iterations() as u64,
            solve_us,
            budget_missed: matches!(
                self.last_error,
                Some(LpError::IterationLimit | LpError::DeadlineExceeded)
            ),
            stop_reason: self.last_error.map(|err| err.to_string()),
            phases: stats.phases,
        });
        if let Some((before, after)) = self.scaling_spread() {
            rp_obs::gauge_f_set(GaugeF::LpScalingSpreadBefore, before);
            rp_obs::gauge_f_set(GaugeF::LpScalingSpreadAfter, after);
        }
        if rp_obs::full_on() {
            let status = solution.status.to_string();
            rp_obs::emit_event(
                "lp.solve",
                &[
                    ("status", rp_obs::JsonValue::Str(&status)),
                    ("objective", rp_obs::JsonValue::F64(solution.objective)),
                    (
                        "iterations",
                        rp_obs::JsonValue::U64(stats.iterations() as u64),
                    ),
                    (
                        "primal_pivots",
                        rp_obs::JsonValue::U64(stats.primal_pivots as u64),
                    ),
                    (
                        "dual_pivots",
                        rp_obs::JsonValue::U64(stats.dual_pivots as u64),
                    ),
                    (
                        "bound_flips",
                        rp_obs::JsonValue::U64(stats.bound_flips as u64),
                    ),
                    (
                        "refactorisations",
                        rp_obs::JsonValue::U64(stats.refactorisations as u64),
                    ),
                    ("warm", rp_obs::JsonValue::Str(stats.warm.as_str())),
                    (
                        "ftran_skip_ratio",
                        rp_obs::JsonValue::F64(stats.ftran.skip_ratio()),
                    ),
                    (
                        "btran_skip_ratio",
                        rp_obs::JsonValue::F64(stats.btran.skip_ratio()),
                    ),
                ],
            );
        }
    }

    /// Charges one iteration against the whole-solve budget, returning
    /// the typed reason to stop if either limit is exhausted.
    fn budget_step(&mut self) -> Option<LpError> {
        if let Some(left) = self.budget_iters.as_mut() {
            if *left == 0 {
                return Some(LpError::IterationLimit);
            }
            *left -= 1;
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(LpError::DeadlineExceeded),
            _ => None,
        }
    }

    /// The typed reason the most recent solve stopped abnormally —
    /// `None` after a conclusive solve (optimal, infeasible or
    /// unbounded). Set *in addition to* the returned status: a budget
    /// stop that still extracted a feasible point reports the error
    /// here while the solution carries the point.
    pub fn last_error(&self) -> Option<LpError> {
        self.last_error
    }

    fn load_phase2_costs(&mut self) {
        self.phase_costs.clear();
        self.phase_costs.extend_from_slice(&self.form.cost);
    }

    /// Extracts the current basic solution (postsolving any presolve
    /// reductions) under the given status and marks the workspace warm.
    /// Besides `Status::Optimal`, this also serves budget stops at a
    /// primal-feasible basis, where the point is feasible but not
    /// proven optimal.
    fn extract(&mut self, model: &Model, options: &SimplexOptions, status: Status) -> Solution {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Extract);
        let mut values = Vec::new();
        self.basis.extract_values(&self.form, &mut values);
        // Clamp numerical dust onto the box so downstream feasibility
        // checks (and MILP integrality tests) see clean values.
        for (j, v) in values.iter_mut().enumerate() {
            *v = v.max(self.form.lower[j]).min(self.form.upper[j]);
        }
        if self.form.scaled {
            // Unscale: `x_j = c_j·x'_j`, exact because the scales are
            // powers of two.
            for (v, &c) in values.iter_mut().zip(&self.form.col_scale) {
                *v *= c;
            }
        }
        if self.presolved {
            // Postsolve: expand the reduced solution back over the
            // original variables (in place, back to front — a kept
            // column's reduced index never exceeds its original one).
            let n = model.num_vars();
            let mut reduced = self.presolve.cols.len();
            values.resize(n, 0.0);
            for j in (0..n).rev() {
                values[j] = if self.presolve.col_kept[j] {
                    reduced -= 1;
                    values[reduced]
                } else {
                    self.presolve.fixed[j]
                };
            }
        }
        let mut objective = model.objective_value(&values);
        if objective.abs() < options.tolerance {
            objective = 0.0;
        }
        self.warm_ready = true;
        Solution {
            status,
            objective,
            values,
        }
    }

    /// The objective of the current basic solution mapped back to the
    /// original variable space **without** clamping onto the box.
    ///
    /// At a dual-feasible basis this value equals the dual objective of
    /// the complementary dual point, so for a minimisation it is a
    /// valid lower bound on the optimum (weak duality). Clamping — what
    /// [`RevisedWorkspace::extract`] does for point extraction — would
    /// move the out-of-bounds basic values and break that identity,
    /// which is why the deadline-stopped warm cleanup uses this
    /// separate path and returns the value through
    /// [`Solution::bound_only`] with no point attached.
    fn dual_bound_objective(&mut self, model: &Model) -> f64 {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Extract);
        let mut values = Vec::new();
        self.basis.extract_values(&self.form, &mut values);
        if self.form.scaled {
            for (v, &c) in values.iter_mut().zip(&self.form.col_scale) {
                *v *= c;
            }
        }
        if self.presolved {
            let n = model.num_vars();
            let mut reduced = self.presolve.cols.len();
            values.resize(n, 0.0);
            for j in (0..n).rev() {
                values[j] = if self.presolve.col_kept[j] {
                    reduced -= 1;
                    values[reduced]
                } else {
                    self.presolve.fixed[j]
                };
            }
        }
        model.objective_value(&values)
    }

    /// Pivot/refactorisation counters of the most recent solve.
    pub fn last_stats(&self) -> SolveStats {
        self.stats
    }

    /// Entry-spread diagnostics `(before, after)` of the equilibration
    /// pass, or `None` when the last solve ran unscaled (mode `Off`, or
    /// `Auto` on a well-scaled matrix).
    pub fn scaling_spread(&self) -> Option<(f64, f64)> {
        self.form
            .scaled
            .then_some((self.form.spread_before, self.form.spread_after))
    }

    /// Whether the last solve actually ran the presolve pass — `false`
    /// on micro models even when [`SimplexOptions::presolve`] is set
    /// (the size-threshold fast path).
    pub fn last_solve_used_presolve(&self) -> bool {
        self.presolved
    }

    /// The pricing rule the last solve actually used (devex downgrades
    /// to Dantzig below the micro-size threshold).
    pub fn last_solve_pricing(&self) -> Pricing {
        self.pricing
    }

    /// Nonzero counts `(nnz(L), nnz(U))` of the current basis
    /// factorisation (meaningful after a solve).
    pub fn factor_nnz(&self) -> (usize, usize) {
        self.factor.nnz()
    }

    /// Benchmark hook: one hyper-sparse FTRAN on the unit vector `e_i`.
    #[doc(hidden)]
    pub fn bench_ftran_unit(&mut self, i: usize) {
        let m = self.form.m;
        if m == 0 {
            return;
        }
        self.w.clear();
        self.w.resize(m, 0.0);
        self.w_nz.clear();
        self.w[i % m] = 1.0;
        self.w_nz.push((i % m) as u32);
        self.factor.ftran_sparse(&mut self.w, &mut self.w_nz);
    }

    /// Benchmark hook: one hyper-sparse BTRAN on the unit vector `e_i`.
    #[doc(hidden)]
    pub fn bench_btran_unit(&mut self, i: usize) {
        let m = self.form.m;
        if m == 0 {
            return;
        }
        self.rho.clear();
        self.rho.resize(m, 0.0);
        self.rho_nz.clear();
        self.rho[i % m] = 1.0;
        self.rho_nz.push((i % m) as u32);
        self.factor.btran_sparse(&mut self.rho, &mut self.rho_nz);
    }

    /// Benchmark hook: one sparse Markowitz refactorisation of the
    /// current basis.
    #[doc(hidden)]
    pub fn bench_refactor(&mut self) -> bool {
        if self.basis.basic.len() != self.form.m {
            return false;
        }
        self.refactor()
    }

    /// Refactorises the basis from its column set.
    fn refactor(&mut self) -> bool {
        self.stats.refactorisations += 1;
        let form = &self.form;
        let basic = &self.basis.basic;
        self.factor.refactor(form.m, |k, rows, vals| {
            form.for_each_entry(basic[k], |row, val| {
                rows.push(row as u32);
                vals.push(val);
            });
        })
    }

    /// Installs the slack basis with every structural column parked at
    /// a finite bound whose sign agrees with its cost — the
    /// dual-feasible start of the cold dual simplex route. Returns
    /// `false` when some column has no such bound (wrong-signed cost
    /// towards its only finite bound, or a genuinely free column); the
    /// caller then runs the classic two-phase path, which rebuilds the
    /// basis wholesale.
    fn try_dual_start_basis(&mut self, tol: f64) -> bool {
        let m = self.form.m;
        let n = self.form.n_struct;
        self.basis.status.clear();
        self.basis.status.reserve(n + m);
        for j in 0..n {
            let cost = self.form.cost[j];
            let status = if self.form.lower[j].is_finite() && cost >= -tol {
                ColStatus::Lower
            } else if self.form.upper[j].is_finite() && cost <= tol {
                ColStatus::Upper
            } else {
                return false;
            };
            self.basis.status.push(status);
        }
        for row in 0..m {
            self.basis.status.push(ColStatus::Basic(row as u32));
        }
        self.basis.basic.clear();
        self.basis.basic.extend(n..n + m);
        self.basis.x_basic.clear();
        self.basis.x_basic.resize(m, 0.0);
        true
    }

    /// Refactorises and recomputes the basic values from the residual
    /// right-hand side (squashing accumulated product-form drift).
    fn refactor_and_recompute(&mut self) -> bool {
        if !self.refactor() {
            return false;
        }
        self.basis.residual_rhs(&self.form, &mut self.residual);
        self.factor.ftran(&mut self.residual);
        self.basis.x_basic.clear();
        self.basis.x_basic.extend_from_slice(&self.residual);
        true
    }

    /// [`RevisedWorkspace::ftran_column`] through the hyper-sparse
    /// FTRAN, maintaining `w_nz`. Requires the sparse-`w` invariant
    /// (zero outside `w_nz`), which [`RevisedWorkspace::dual_loop`]
    /// establishes at entry and every sparse call preserves.
    fn ftran_column_sparse(&mut self, col: usize) {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Ftran);
        for &r in &self.w_nz {
            self.w[r as usize] = 0.0;
        }
        self.w_nz.clear();
        let w = &mut self.w;
        let w_nz = &mut self.w_nz;
        self.form.for_each_entry(col, |row, val| {
            if w[row] == 0.0 {
                w_nz.push(row as u32);
            }
            w[row] += val;
        });
        self.factor.ftran_sparse(w, w_nz);
    }

    /// Loads `B⁻¹ a_col` into `self.w`.
    fn ftran_column(&mut self, col: usize) {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Ftran);
        self.w.clear();
        self.w.resize(self.form.m, 0.0);
        let w = &mut self.w;
        self.form.for_each_entry(col, |row, val| w[row] += val);
        self.factor.ftran(w);
    }

    /// Recomputes the duals `y = B⁻ᵀ c_B` and every reduced cost
    /// `d_j = c_j − yᵀa_j` from scratch (`O(nnz)`). Called at phase
    /// starts and after refactorisations; between those, `d` is kept
    /// current by rank-one pivot-row updates.
    fn compute_reduced_costs(&mut self, costs: &[f64]) {
        self.y.clear();
        self.y
            .extend(self.basis.basic.iter().map(|&col| costs[col]));
        self.factor.btran(&mut self.y);
        self.d.clear();
        let form = &self.form;
        let y = &self.y;
        self.d.extend(
            costs
                .iter()
                .enumerate()
                .map(|(col, &c)| c - form.col_dot(col, y)),
        );
        if self.alpha_acc.len() != costs.len() {
            self.alpha_acc.clear();
            self.alpha_acc.resize(costs.len(), 0.0);
        }
    }

    /// Computes the sparse pivot row `α = Aᵀ B⁻ᵀ e_row` into
    /// `self.alpha_cols` / `self.alpha_vals` (must run on the
    /// *pre-pivot* factorisation).
    fn compute_pivot_row(&mut self, row: usize) {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Btran);
        if self.rho.len() != self.form.m {
            self.rho.clear();
            self.rho.resize(self.form.m, 0.0);
            self.rho_nz.clear();
        }
        // Clear the previous call's pattern instead of an `O(m)` memset.
        for &r in &self.rho_nz {
            self.rho[r as usize] = 0.0;
        }
        self.rho_nz.clear();
        self.rho[row] = 1.0;
        self.rho_nz.push(row as u32);
        self.factor.btran_sparse(&mut self.rho, &mut self.rho_nz);
        pivot_row_alphas(
            &self.form,
            &self.rho,
            &self.rho_nz,
            &mut self.alpha_acc,
            &mut self.alpha_cols,
            &mut self.alpha_vals,
        );
    }

    /// Applies the rank-one reduced-cost update
    /// `d ← d − θ_d·α` over the sparse pivot row, pinning the entering
    /// column's reduced cost to an exact zero.
    fn update_reduced_costs(&mut self, theta_d: f64, entering: usize) {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
        if theta_d != 0.0 {
            for k in 0..self.alpha_cols.len() {
                let col = self.alpha_cols[k] as usize;
                self.d[col] -= theta_d * self.alpha_vals[k];
            }
        }
        self.d[entering] = 0.0;
    }

    /// Runs primal pivots until the given cost vector is optimal.
    fn primal_loop(
        &mut self,
        costs: &[f64],
        options: &SimplexOptions,
        allow_artificial: bool,
    ) -> PhaseOutcome {
        let tol = options.tolerance;
        let max_iter = options
            .max_iterations
            .unwrap_or_else(|| 200 + 50 * (self.form.m + self.form.num_cols()));
        // Each phase starts a fresh devex reference framework (the
        // current nonbasic set with unit weights) and an empty
        // candidate queue.
        let queue_mode = self.pricing == Pricing::Partial;
        let devex_mode = queue_mode || self.pricing == Pricing::Devex;
        if devex_mode {
            self.devex_weights.clear();
            self.devex_weights.resize(self.form.num_cols(), 1.0);
        }
        self.queue.clear();
        {
            let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
            self.compute_reduced_costs(costs);
        }
        // Pivots since `d` was last computed from scratch: an
        // incrementally updated `d` may only declare optimality after a
        // fresh recomputation confirms it.
        let mut stale_pivots = 0usize;
        for iteration in 0..max_iter {
            let use_bland = iteration >= options.bland_after || self.pricing == Pricing::Bland;
            let candidate = if queue_mode && !use_bland {
                // Partial pricing: serve from the candidate queue; only
                // an exhausted queue pays for a full rebuild scan. A
                // `None` out of the rebuilt queue is the full-scan
                // optimality signal every other rule produces directly.
                match self
                    .queue
                    .pick(&self.form, &self.basis, &self.d, tol, &self.devex_weights)
                {
                    Some(e) => {
                        self.stats.queue_hits += 1;
                        Some(e)
                    }
                    None => {
                        self.stats.queue_rebuilds += 1;
                        self.queue.rebuild(
                            &self.form,
                            &self.basis,
                            &self.d,
                            tol,
                            allow_artificial,
                            &self.devex_weights,
                        );
                        self.queue
                            .pick(&self.form, &self.basis, &self.d, tol, &self.devex_weights)
                    }
                }
            } else {
                choose_entering(
                    &self.form,
                    &self.basis,
                    &self.d,
                    tol,
                    use_bland,
                    allow_artificial,
                    (devex_mode && !use_bland).then_some(self.devex_weights.as_slice()),
                )
            };
            let entering = match candidate {
                Some(e) => e,
                None => {
                    if stale_pivots == 0 {
                        return PhaseOutcome::Optimal;
                    }
                    let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
                    self.compute_reduced_costs(costs);
                    stale_pivots = 0;
                    self.queue.clear();
                    continue;
                }
            };

            // Charge the budget only once a pivot is actually about to
            // run: an already-optimal basis still reports `Optimal`
            // even under an expired budget.
            if let Some(err) = self.budget_step() {
                return PhaseOutcome::Stopped(err);
            }

            self.ftran_column(entering.col);
            match primal_ratio_test(
                &self.form,
                &self.basis,
                &entering,
                &self.w,
                PIVOT_TOL,
                use_bland,
            ) {
                Ratio::Unbounded => return PhaseOutcome::Unbounded,
                Ratio::Flip { step } => {
                    // No basis change: the reduced costs are untouched.
                    self.stats.bound_flips += 1;
                    self.apply_step(&entering, step);
                    self.basis.status[entering.col] = match self.basis.status[entering.col] {
                        ColStatus::Lower => ColStatus::Upper,
                        ColStatus::Upper => ColStatus::Lower,
                        // The pricing only proposes nonbasic columns; a
                        // basic status here means the pricing state and
                        // the basis desynchronised. Stop with a typed
                        // error instead of corrupting the basis.
                        ColStatus::Basic(_) => {
                            debug_assert!(false, "entering column must be nonbasic");
                            return PhaseOutcome::Stopped(LpError::NumericalLoss);
                        }
                    };
                }
                Ratio::Pivot {
                    row,
                    step,
                    to_upper,
                } => {
                    self.stats.primal_pivots += 1;
                    if allow_artificial {
                        self.stats.phase1_pivots += 1;
                    }
                    if step == 0.0 {
                        self.stats.degenerate_pivots += 1;
                    }
                    // Sparse pivot row on the pre-pivot basis: it
                    // drives the rank-one reduced-cost update and the
                    // devex weights.
                    self.compute_pivot_row(row);
                    let alpha_q = self.w[row];
                    let theta_d = self.d[entering.col] / alpha_q;
                    let entering_value =
                        self.basis.nonbasic_value(&self.form, entering.col) + entering.sigma * step;
                    self.apply_step(&entering, step);
                    let leaving = self.basis.basic[row];
                    self.basis.status[leaving] = if to_upper {
                        ColStatus::Upper
                    } else {
                        ColStatus::Lower
                    };
                    self.basis.status[entering.col] = ColStatus::Basic(row as u32);
                    self.basis.basic[row] = entering.col;
                    self.basis.x_basic[row] = entering_value;
                    if devex_mode {
                        let wq = self.devex_weights[entering.col].max(1.0);
                        let overflow = devex_update(
                            &self.form,
                            &self.basis,
                            &mut self.devex_weights,
                            &self.alpha_cols,
                            &self.alpha_vals,
                            alpha_q,
                            wq,
                            leaving,
                        );
                        if overflow {
                            self.devex_weights.iter_mut().for_each(|w| *w = 1.0);
                            self.stats.devex_resets += 1;
                        }
                    }
                    self.update_reduced_costs(theta_d, entering.col);
                    // Forrest–Tomlin update from the spike the FTRAN
                    // saved; a refused (numerically unsafe) update or a
                    // full update budget forces a refactorisation.
                    let ft_ok = self.factor.update(row);
                    if ft_ok {
                        self.stats.max_eta_chain =
                            self.stats.max_eta_chain.max(self.factor.updates());
                    }
                    if !ft_ok || self.factor.updates() >= REFACTOR_EVERY {
                        if ft_ok {
                            self.stats.refactor_scheduled += 1;
                        } else {
                            self.stats.refactor_ft_refused += 1;
                        }
                        let refac_ok = {
                            let _t = rp_obs::phase_timer(rp_obs::Phase::Factorise);
                            let ok = self.refactor_and_recompute();
                            if ok {
                                self.compute_reduced_costs(costs);
                            }
                            ok
                        };
                        if !refac_ok {
                            return PhaseOutcome::Stopped(LpError::SingularBasis);
                        }
                        stale_pivots = 0;
                    } else {
                        stale_pivots += 1;
                    }
                }
            }
        }
        PhaseOutcome::Stopped(LpError::IterationLimit)
    }

    /// Moves every basic variable along the pivot column: the entering
    /// variable advances by `sigma·step`, so row `i` changes by
    /// `−sigma·step·w_i`.
    fn apply_step(&mut self, entering: &Entering, step: f64) {
        if step == 0.0 {
            return;
        }
        let _t = rp_obs::phase_timer(rp_obs::Phase::Ftran);
        let scale = entering.sigma * step;
        for (x, &wi) in self.basis.x_basic.iter_mut().zip(&self.w) {
            *x -= scale * wi;
        }
    }

    /// Applies the bound flips collected by the dual ratio test: each
    /// column's status toggles to the opposite bound, and the combined
    /// movement `B⁻¹ · Σ Δx_j a_j` is subtracted from the basic values
    /// with a single FTRAN — the flips change no basis column.
    fn apply_dual_flips(&mut self, flips: &[u32]) {
        let _t = rp_obs::phase_timer(rp_obs::Phase::Ftran);
        self.residual.clear();
        self.residual.resize(self.form.m, 0.0);
        self.residual_nz.clear();
        for &col in flips {
            let col = col as usize;
            let (delta, flipped) = match self.basis.status[col] {
                ColStatus::Lower => (
                    self.form.upper[col] - self.form.lower[col],
                    ColStatus::Upper,
                ),
                ColStatus::Upper => (
                    self.form.lower[col] - self.form.upper[col],
                    ColStatus::Lower,
                ),
                ColStatus::Basic(_) => {
                    debug_assert!(false, "flip candidates are nonbasic");
                    continue;
                }
            };
            self.basis.status[col] = flipped;
            let residual = &mut self.residual;
            let residual_nz = &mut self.residual_nz;
            self.form.for_each_entry(col, |row, val| {
                if residual[row] == 0.0 {
                    residual_nz.push(row as u32);
                }
                residual[row] += val * delta;
            });
        }
        self.factor
            .ftran_sparse(&mut self.residual, &mut self.residual_nz);
        for &i in &self.residual_nz {
            let i = i as usize;
            self.basis.x_basic[i] -= self.residual[i];
        }
    }

    /// Dual simplex: restores primal feasibility while keeping the
    /// reduced costs sign-feasible. Serves both the warm cleanup and
    /// the cold dual start; assumes the factorisation is fresh. The
    /// leaving row comes from the configured [`DualPricing`] rule, the
    /// entering column from the bound-flipping dual ratio test.
    fn dual_loop(&mut self, options: &SimplexOptions) -> DualOutcome {
        let tol = options.tolerance;
        let max_iter = options
            .max_iterations
            .unwrap_or_else(|| 200 + 50 * (self.form.m + self.form.num_cols()));
        // Each dual run starts a fresh devex reference framework: the
        // current basis with unit row weights.
        let dual_devex = self.dual_pricing == DualPricing::Devex;
        if dual_devex {
            self.dual_weights.clear();
            self.dual_weights.resize(self.form.m, 1.0);
        }
        // Establish the sparse-`w` invariant the loop's hyper-sparse
        // FTRANs maintain: zero outside `w_nz`.
        self.w.clear();
        self.w.resize(self.form.m, 0.0);
        self.w_nz.clear();
        // Dual pricing needs the phase-2 reduced costs; they are kept
        // current by the same rank-one pivot-row updates the primal
        // loop uses.
        self.load_phase2_costs();
        let costs = std::mem::take(&mut self.phase_costs);
        {
            let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
            self.compute_reduced_costs(&costs);
        }
        self.dual_cands.rebuild(&self.form, &self.basis, tol);
        let outcome = 'search: {
            for _ in 0..max_iter {
                let weights = dual_devex.then_some(self.dual_weights.as_slice());
                let leaving = match self.dual_cands.pick(&self.form, &self.basis, tol, weights) {
                    Some(l) => Some(l),
                    None => {
                        // The incremental list only tracks rows the
                        // pivots touched — confirm primal feasibility
                        // with a full rescan before declaring it.
                        self.dual_cands.rebuild(&self.form, &self.basis, tol);
                        self.dual_cands.pick(&self.form, &self.basis, tol, weights)
                    }
                };
                let leaving = match leaving {
                    Some(l) => l,
                    None => break 'search DualOutcome::PrimalFeasible,
                };
                // Budget charged per attempted pivot (see primal_loop).
                if let Some(err) = self.budget_step() {
                    break 'search DualOutcome::Stopped(err);
                }
                // Sparse pivot row α = Aᵀ B⁻ᵀ e_r.
                self.compute_pivot_row(leaving.row);

                let mut breakpoints = std::mem::take(&mut self.breakpoints);
                let mut flips = std::mem::take(&mut self.flips);
                let ratio = dual_ratio_test(
                    &self.form,
                    &self.basis,
                    &self.d,
                    &self.alpha_cols,
                    &self.alpha_vals,
                    leaving.above,
                    leaving.violation,
                    PIVOT_TOL,
                    &mut breakpoints,
                    &mut flips,
                );
                self.breakpoints = breakpoints;
                let entering = match ratio {
                    DualRatio::Infeasible => {
                        self.flips = flips;
                        break 'search DualOutcome::Infeasible;
                    }
                    DualRatio::Step { entering } => entering,
                };
                // Boxed columns the long dual step passed over jump to
                // their opposite bounds; one combined FTRAN updates the
                // basic values. This must happen before the entering
                // FTRAN below, which owns the factorisation's saved
                // spike for the upcoming basis update.
                if !flips.is_empty() {
                    self.stats.dual_bound_flips += flips.len();
                    self.apply_dual_flips(&flips);
                    // The flip FTRAN moved the basic values in its
                    // residual pattern; admit any newly violated rows.
                    let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
                    for &i in &self.residual_nz {
                        self.dual_cands
                            .note(&self.form, &self.basis, tol, i as usize);
                    }
                }
                self.flips = flips;

                self.ftran_column_sparse(entering);
                let row = leaving.row;
                let alpha = self.w[row];
                if alpha.abs() <= PIVOT_TOL {
                    // The FTRAN disagrees with the BTRAN row — numerical
                    // trouble; let the caller fall back to a cold solve.
                    break 'search DualOutcome::Stopped(LpError::NumericalLoss);
                }
                let leaving_col = self.basis.basic[row];
                let target = if leaving.above {
                    self.form.upper[leaving_col]
                } else {
                    self.form.lower[leaving_col]
                };
                self.stats.dual_pivots += 1;
                let theta_d = self.d[entering] / alpha;
                let dxq = (self.basis.x_basic[row] - target) / alpha;
                if dxq == 0.0 {
                    self.stats.degenerate_pivots += 1;
                }
                let entering_value = self.basis.nonbasic_value(&self.form, entering) + dxq;
                if dxq != 0.0 {
                    let _t = rp_obs::phase_timer(rp_obs::Phase::Ftran);
                    for &i in &self.w_nz {
                        let i = i as usize;
                        self.basis.x_basic[i] -= dxq * self.w[i];
                    }
                }
                self.basis.status[leaving_col] = if leaving.above {
                    ColStatus::Upper
                } else {
                    ColStatus::Lower
                };
                self.basis.status[entering] = ColStatus::Basic(row as u32);
                self.basis.basic[row] = entering;
                self.basis.x_basic[row] = entering_value;
                // Patch the candidate list with the rows this pivot
                // moved: the entering column's pattern + the pivot row.
                {
                    let _t = rp_obs::phase_timer(rp_obs::Phase::Pricing);
                    if dxq != 0.0 {
                        for &i in &self.w_nz {
                            self.dual_cands
                                .note(&self.form, &self.basis, tol, i as usize);
                        }
                    }
                    self.dual_cands.note(&self.form, &self.basis, tol, row);
                }
                self.update_reduced_costs(theta_d, entering);
                if dual_devex
                    && dual_devex_update(
                        &self.form,
                        &self.basis,
                        &mut self.dual_weights,
                        &self.w,
                        &self.w_nz,
                        row,
                        alpha,
                        leaving_col,
                    )
                {
                    // Weight overflow: restart the reference framework.
                    self.dual_weights.iter_mut().for_each(|w| *w = 1.0);
                    self.stats.devex_resets += 1;
                }
                let ft_ok = self.factor.update(row);
                if ft_ok {
                    self.stats.max_eta_chain = self.stats.max_eta_chain.max(self.factor.updates());
                }
                if !ft_ok || self.factor.updates() >= REFACTOR_EVERY {
                    if ft_ok {
                        self.stats.refactor_scheduled += 1;
                    } else {
                        self.stats.refactor_ft_refused += 1;
                    }
                    let ok = {
                        let _t = rp_obs::phase_timer(rp_obs::Phase::Factorise);
                        let ok = self.refactor_and_recompute();
                        if ok {
                            self.compute_reduced_costs(&costs);
                        }
                        ok
                    };
                    if !ok {
                        break 'search DualOutcome::Stopped(LpError::SingularBasis);
                    }
                    // Recomputing the basic values from scratch can move
                    // any row across the violation tolerance.
                    self.dual_cands.rebuild(&self.form, &self.basis, tol);
                }
            }
            DualOutcome::Stopped(LpError::IterationLimit)
        };
        self.phase_costs = costs;
        outcome
    }
}

/// How a primal phase ended: converged, proved the LP unbounded, or
/// stopped for the typed reason (budget, singular basis, lost
/// accuracy).
enum PhaseOutcome {
    Optimal,
    Unbounded,
    Stopped(LpError),
}

/// How the dual warm-start cleanup ended.
enum DualOutcome {
    PrimalFeasible,
    Infeasible,
    Stopped(LpError),
}

/// Solves the continuous relaxation of `model` with the revised simplex
/// and default options.
pub fn solve_lp_revised(model: &Model) -> Solution {
    solve_lp_revised_with(model, &SimplexOptions::default())
}

/// [`solve_lp_revised`] with explicit options.
pub fn solve_lp_revised_with(model: &Model, options: &SimplexOptions) -> Solution {
    let mut workspace = RevisedWorkspace::new();
    solve_lp_revised_reusing(model, options, &mut workspace)
}

/// [`solve_lp_revised`] reusing the buffers of `workspace` — including
/// its stored basis: when the constraint matrix is unchanged since the
/// previous solve (the λ-sharded sweep solving the same tree under a
/// different load factor, sibling branch-and-bound searches), the solve
/// is a refactorisation plus a short dual/primal cleanup instead of a
/// cold two-phase run. Any structural change falls back to a cold solve
/// transparently; call [`RevisedWorkspace::invalidate`] to force one.
pub fn solve_lp_revised_reusing(
    model: &Model,
    options: &SimplexOptions,
    workspace: &mut RevisedWorkspace,
) -> Solution {
    workspace.solve_warm(model, options)
}

/// [`solve_lp_revised_reusing`] with the abnormal-stop reason surfaced
/// as a typed error instead of a status code.
///
/// * `Ok(solution)` — the solve concluded (optimal, infeasible or
///   unbounded), **or** it was stopped by the [`crate::SolveBudget`]
///   after reaching primal feasibility, in which case the solution
///   carries the best point found so far and
///   [`RevisedWorkspace::last_error`] names the budget limit that hit.
/// * `Err(error)` — the solve stopped without any usable point:
///   singular basis, numerical loss, or a budget that expired before a
///   feasible point existed.
pub fn solve_lp_revised_checked(
    model: &Model,
    options: &SimplexOptions,
    workspace: &mut RevisedWorkspace,
) -> Result<Solution, LpError> {
    let solution = workspace.solve_warm(model, options);
    match workspace.last_error() {
        Some(err) if !solution.has_point() => Err(err),
        _ => Ok(solution),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{lin_sum, Cmp, LinExpr, Model, Sense};
    use crate::simplex::solve_lp;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn maximisation_with_two_variables() {
        // Same instance as the dense test: optimum 36 at (2, 6).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None, 3.0);
        let y = m.add_var("y", 0.0, None, 5.0);
        m.add_constraint("c1", LinExpr::var(x), Cmp::Le, 4.0);
        m.add_constraint("c2", lin_sum([(2.0, y)]), Cmp::Le, 12.0);
        m.add_constraint("c3", lin_sum([(3.0, x), (2.0, y)]), Cmp::Le, 18.0);
        let sol = solve_lp_revised(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn ge_constraints_run_phase_one() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 2.0);
        let y = m.add_var("y", 0.0, None, 3.0);
        m.add_constraint("sum", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 10.0);
        m.add_constraint("xmin", LinExpr::var(x), Cmp::Ge, 2.0);
        m.add_constraint("ymin", LinExpr::var(y), Cmp::Ge, 3.0);
        let sol = solve_lp_revised(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 23.0);
    }

    #[test]
    fn equality_and_upper_bounds_without_extra_rows() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(4.0), 1.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("eq", lin_sum([(1.0, x), (2.0, y)]), Cmp::Eq, 8.0);
        let sol = solve_lp_revised(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 4.0);
        assert_close(sol.value(x), 0.0);
        assert_close(sol.value(y), 4.0);
    }

    #[test]
    fn infeasible_and_unbounded_are_detected() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(1.0), 1.0);
        m.add_constraint("too_big", LinExpr::var(x), Cmp::Ge, 5.0);
        assert_eq!(solve_lp_revised(&m).status, Status::Infeasible);

        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None, 1.0);
        m.add_constraint("ge", LinExpr::var(x), Cmp::Ge, 1.0);
        assert_eq!(solve_lp_revised(&m).status, Status::Unbounded);
    }

    #[test]
    fn bound_only_model_flips_to_the_cheap_bound() {
        // Maximise over a box with no constraints: pure bound flips.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.5, Some(9.0), 2.0);
        let y = m.add_var("y", 0.0, Some(3.0), 1.0);
        let sol = solve_lp_revised(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.value(x), 9.0);
        assert_close(sol.value(y), 3.0);
        assert_close(sol.objective, 21.0);
    }

    #[test]
    fn degenerate_beale_instance_terminates() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", 0.0, None, 0.75);
        let b = m.add_var("b", 0.0, None, -150.0);
        let c = m.add_var("c", 0.0, None, 0.02);
        let d = m.add_var("d", 0.0, None, -6.0);
        m.add_constraint(
            "r1",
            lin_sum([(0.25, a), (-60.0, b), (-0.04, c), (9.0, d)]),
            Cmp::Le,
            0.0,
        );
        m.add_constraint(
            "r2",
            lin_sum([(0.5, a), (-90.0, b), (-0.02, c), (3.0, d)]),
            Cmp::Le,
            0.0,
        );
        m.add_constraint("r3", LinExpr::var(c), Cmp::Le, 1.0);
        let options = SimplexOptions {
            bland_after: 20,
            ..SimplexOptions::default()
        };
        let sol = solve_lp_revised_with(&m, &options);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 0.05);
    }

    #[test]
    fn agrees_with_the_dense_tableau_on_a_transportation_problem() {
        let mut m = Model::minimize();
        let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
        let caps = [20.0, 30.0];
        let demands = [10.0, 25.0, 15.0];
        let mut vars = vec![vec![]; 2];
        for (s, row) in costs.iter().enumerate() {
            for (c, &cost) in row.iter().enumerate() {
                vars[s].push(m.add_var(format!("x{s}{c}"), 0.0, Some(40.0), cost));
            }
        }
        for s in 0..2 {
            let expr = lin_sum(vars[s].iter().map(|&v| (1.0, v)));
            m.add_constraint(format!("cap{s}"), expr, Cmp::Le, caps[s]);
        }
        for c in 0..3 {
            let expr = lin_sum((0..2).map(|s| (1.0, vars[s][c])));
            m.add_constraint(format!("dem{c}"), expr, Cmp::Ge, demands[c]);
        }
        let dense = solve_lp(&m);
        let revised = solve_lp_revised(&m);
        assert_eq!(dense.status, revised.status);
        assert_close(revised.objective, dense.objective);
        assert!(m.is_feasible(&revised.values, 1e-6));
    }

    #[test]
    fn warm_start_after_a_bound_change_matches_a_cold_solve() {
        // min x + 2y  s.t.  x + y >= 4, x <= 3 — then tighten x <= 1.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(3.0), 1.0);
        let y = m.add_var("y", 0.0, None, 2.0);
        m.add_constraint("cover", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 4.0);
        let options = SimplexOptions::default();
        let mut ws = RevisedWorkspace::new();
        let first = ws.solve_cold(&m, &options);
        assert_eq!(first.status, Status::Optimal);
        assert_close(first.objective, 5.0); // x = 3, y = 1

        m.set_bounds(x, 0.0, Some(1.0));
        let warm = ws.solve_warm(&m, &options);
        let cold = solve_lp_revised(&m);
        assert_eq!(warm.status, Status::Optimal);
        assert_close(warm.objective, cold.objective); // x = 1, y = 3 -> 7
        assert_close(warm.objective, 7.0);

        // Loosen the bound back: the warm path must also handle bounds
        // that *relax* (residual dual infeasibility cleaned up by the
        // primal polish).
        m.set_bounds(x, 0.0, None);
        let warm = ws.solve_warm(&m, &options);
        assert_eq!(warm.status, Status::Optimal);
        assert_close(warm.objective, 4.0); // x = 4, y = 0
    }

    #[test]
    fn solve_stats_classify_warm_starts_and_count_transform_io() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(3.0), 1.0);
        let y = m.add_var("y", 0.0, None, 2.0);
        m.add_constraint("cover", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 4.0);
        let options = SimplexOptions::default();
        let mut ws = RevisedWorkspace::new();

        let first = ws.solve_cold(&m, &options);
        assert_eq!(first.status, Status::Optimal);
        let stats = ws.last_stats();
        assert_eq!(stats.warm, WarmStart::Cold);
        assert!(stats.ftran.calls > 0, "cold solve must run FTRANs");
        assert_eq!(stats.ftran.dim, stats.ftran.calls); // m = 1 row
        assert!(stats.ftran.in_nnz <= stats.ftran.dim);
        assert!((0.0..=1.0).contains(&stats.ftran.skip_ratio()));
        assert_eq!(
            stats.phase1_pivots + stats.phase2_pivots(),
            stats.primal_pivots
        );

        m.set_bounds(x, 0.0, Some(1.0));
        let warm = ws.solve_warm(&m, &options);
        assert_eq!(warm.status, Status::Optimal);
        let stats = ws.last_stats();
        assert!(
            matches!(stats.warm, WarmStart::WarmHit | WarmStart::WarmRefactor),
            "bound-change resolve must take the warm path, got {:?}",
            stats.warm
        );
        // The per-solve IO deltas restart at each solve entry.
        assert!(stats.ftran.calls > 0);

        // A scaling-mode change with a stored basis is the one cold
        // flavour that gets its own classification.
        let scaled = SimplexOptions {
            scaling: Scaling::Geometric,
            ..SimplexOptions::default()
        };
        let resolved = ws.solve_warm(&m, &scaled);
        assert_eq!(resolved.status, Status::Optimal);
        assert_eq!(ws.last_stats().warm, WarmStart::ModeChangeCold);
    }

    #[test]
    fn warm_start_detects_infeasible_children() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, Some(5.0), 1.0);
        m.add_constraint("ge", LinExpr::var(x), Cmp::Ge, 2.0);
        let options = SimplexOptions::default();
        let mut ws = RevisedWorkspace::new();
        assert_eq!(ws.solve_cold(&m, &options).status, Status::Optimal);
        m.set_bounds(x, 0.0, Some(1.0));
        assert_eq!(ws.solve_warm(&m, &options).status, Status::Infeasible);
        // And a sibling that is feasible again still solves warm.
        m.set_bounds(x, 3.0, Some(5.0));
        let sol = ws.solve_warm(&m, &options);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn warm_start_honours_model_edits_beyond_bounds() {
        // The warm path's contract: bounds, objective and rhs edits are
        // absorbed; a changed constraint coefficient (same shape!) must
        // trigger the cold fallback. Every answer is cross-checked
        // against a fresh cold solve.
        let build = |coeff: f64, obj: f64, rhs: f64| {
            let mut m = Model::minimize();
            let x = m.add_var("x", 0.0, Some(10.0), obj);
            let y = m.add_var("y", 0.0, None, 3.0);
            m.add_constraint("cover", lin_sum([(coeff, x), (1.0, y)]), Cmp::Ge, rhs);
            m
        };
        let options = SimplexOptions::default();
        let mut ws = RevisedWorkspace::new();
        assert_eq!(
            ws.solve_cold(&build(1.0, 1.0, 6.0), &options).status,
            Status::Optimal
        );
        // Objective change: x becomes expensive, y wins.
        let m = build(1.0, 5.0, 6.0);
        let warm = ws.solve_warm(&m, &options);
        assert_close(warm.objective, solve_lp_revised(&m).objective);
        // Right-hand-side change.
        let m = build(1.0, 5.0, 9.0);
        let warm = ws.solve_warm(&m, &options);
        assert_close(warm.objective, solve_lp_revised(&m).objective);
        // Coefficient change (same shape): must cold-fall-back and
        // still be exact.
        let m = build(2.0, 5.0, 9.0);
        let warm = ws.solve_warm(&m, &options);
        assert_close(warm.objective, solve_lp_revised(&m).objective);
        assert!(m.is_feasible(&warm.values, 1e-6));
    }

    #[test]
    fn warm_start_absorbs_comparison_flips() {
        // Same matrix, same rhs — only the comparison direction flips
        // between solves. The slack bounds encode the direction, so a
        // warm start must refresh them rather than answer the old
        // model's question (the regression this test pins down).
        let build = |cmp| {
            let mut m = Model::minimize();
            let x = m.add_var("x", 0.0, Some(10.0), 1.0);
            let y = m.add_var("y", 0.0, Some(10.0), 2.0);
            m.add_constraint("c", lin_sum([(1.0, x), (1.0, y)]), cmp, 4.0);
            m
        };
        for presolve in [true, false] {
            let options = SimplexOptions {
                presolve,
                ..SimplexOptions::default()
            };
            let mut ws = RevisedWorkspace::new();
            let le = solve_lp_revised_reusing(&build(Cmp::Le), &options, &mut ws);
            assert_eq!(le.status, Status::Optimal);
            assert_close(le.objective, 0.0); // x = y = 0
            for cmp in [Cmp::Ge, Cmp::Eq, Cmp::Le, Cmp::Eq, Cmp::Ge] {
                let model = build(cmp);
                let warm = solve_lp_revised_reusing(&model, &options, &mut ws);
                let cold = solve_lp_revised_with(&model, &options);
                assert_eq!(warm.status, cold.status, "{cmp:?} presolve={presolve}");
                assert_close(warm.objective, cold.objective);
                assert!(model.is_feasible(&warm.values, 1e-6), "{cmp:?}");
            }
        }
    }

    #[test]
    fn workspace_reuse_across_shapes_is_transparent() {
        let mut ws = RevisedWorkspace::new();
        for trial in 0..3 {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 0.0, Some(4.0 + trial as f64), 3.0);
            let y = m.add_var("y", 0.0, None, 5.0);
            m.add_constraint("c2", lin_sum([(2.0, y)]), Cmp::Le, 12.0);
            m.add_constraint("c3", lin_sum([(3.0, x), (2.0, y)]), Cmp::Le, 18.0);
            let dense = solve_lp(&m);
            let revised = solve_lp_revised_reusing(&m, &SimplexOptions::default(), &mut ws);
            assert_eq!(dense.status, revised.status);
            assert_close(revised.objective, dense.objective);
        }
    }

    #[test]
    fn negative_rhs_rows_need_no_normalisation() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 0.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("neg", lin_sum([(1.0, x), (-1.0, y)]), Cmp::Le, -2.0);
        let sol = solve_lp_revised(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 2.0);
    }

    /// A deterministic ill-scaled LP: every coefficient is a row
    /// magnitude times a column magnitude spanning ~12 decades in
    /// total, the separable shape equilibration is built to fix (a
    /// bandwidth row of huge capacities next to unit cover rows).
    fn ill_scaled_model(n: usize) -> Model {
        let row_mag = |i: usize| [1e-3, 1.0, 30.0, 1e3][i % 4];
        let col_mag = |j: usize| [1.0, 2e-3, 40.0, 1e3][j % 4];
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..n)
            .map(|j| m.add_var(format!("x{j}"), 0.0, None, col_mag(j)))
            .collect();
        for i in 0..n {
            let mut expr = LinExpr::new();
            for (j, &v) in vars.iter().enumerate() {
                if (i + 3 * j) % 3 != 0 {
                    expr.add_term(row_mag(i) * col_mag(j), v);
                }
            }
            if !expr.is_empty() {
                m.add_constraint(format!("c{i}"), expr, Cmp::Ge, 10.0 + i as f64);
            }
        }
        m
    }

    #[test]
    fn equilibrated_solves_match_unscaled_solves_exactly_after_unscaling() {
        for n in [4usize, 7, 12] {
            let model = ill_scaled_model(n);
            let solve = |scaling| {
                solve_lp_revised_with(
                    &model,
                    &SimplexOptions {
                        scaling,
                        ..SimplexOptions::default()
                    },
                )
            };
            let scaled = solve(Scaling::Geometric);
            let unscaled = solve(Scaling::Off);
            assert_eq!(scaled.status, unscaled.status, "n={n}");
            if scaled.status == Status::Optimal {
                let tol = 1e-6 * unscaled.objective.abs().max(1.0);
                assert!(
                    (scaled.objective - unscaled.objective).abs() < tol,
                    "n={n}: scaled {} vs unscaled {}",
                    scaled.objective,
                    unscaled.objective
                );
                assert!(model.is_feasible(&scaled.values, 1e-6));
            }
        }
    }

    #[test]
    fn auto_scaling_triggers_only_on_ill_scaled_matrices() {
        let options = SimplexOptions::default();
        let mut ws = RevisedWorkspace::new();
        // Well-scaled: Auto must not scale (historical pivot paths).
        let mut tame = Model::minimize();
        let x = tame.add_var("x", 0.0, Some(4.0), 2.0);
        let y = tame.add_var("y", 0.0, None, 3.0);
        tame.add_constraint("c", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 6.0);
        assert_eq!(ws.solve_cold(&tame, &options).status, Status::Optimal);
        assert_eq!(ws.scaling_spread(), None);
        // Ill-scaled: Auto scales and the spread shrinks by orders of
        // magnitude.
        let wild = ill_scaled_model(8);
        let solution = ws.solve_cold(&wild, &options);
        assert_eq!(solution.status, Status::Optimal);
        let (before, after) = ws.scaling_spread().expect("auto scaling should trigger");
        assert!(before > 1e4, "spread before = {before}");
        assert!(after < before / 1e3, "spread {before} -> {after}");
        assert!(wild.is_feasible(&solution.values, 1e-6));
    }

    #[test]
    fn warm_starts_survive_scaling_and_absorb_mode_changes() {
        // Warm re-solves of a scaled form (rhs/objective edits) must
        // match cold solves, and switching the scaling mode between
        // solves must transparently fall back to a cold rebuild.
        let mut model = ill_scaled_model(9);
        let geometric = SimplexOptions {
            scaling: Scaling::Geometric,
            ..SimplexOptions::default()
        };
        let mut ws = RevisedWorkspace::new();
        assert_eq!(ws.solve_cold(&model, &geometric).status, Status::Optimal);
        let cons: Vec<_> = model.constraint_ids().collect();
        for id in cons {
            let rhs = model.constraint(id).rhs * 1.5;
            model.set_rhs(id, rhs);
        }
        let warm = ws.solve_warm(&model, &geometric);
        let cold = solve_lp_revised_with(&model, &geometric);
        assert_eq!(warm.status, cold.status);
        let tol = 1e-6 * cold.objective.abs().max(1.0);
        assert!((warm.objective - cold.objective).abs() < tol);
        // Mode change: Off after Geometric must not reuse scaled data.
        let off = SimplexOptions {
            scaling: Scaling::Off,
            ..SimplexOptions::default()
        };
        let refreshed = ws.solve_warm(&model, &off);
        assert_eq!(refreshed.status, Status::Optimal);
        assert!((refreshed.objective - cold.objective).abs() < tol);
        assert_eq!(ws.scaling_spread(), None);
    }

    #[test]
    fn scaling_diagnostics_do_not_leak_across_solves() {
        // A scaled solve followed by a solve that exits early (presolve
        // proves infeasibility before any build) must not report the
        // previous model's spread.
        let options = SimplexOptions::default();
        let mut ws = RevisedWorkspace::new();
        let wild = ill_scaled_model(8);
        assert_eq!(ws.solve_cold(&wild, &options).status, Status::Optimal);
        assert!(ws.scaling_spread().is_some());
        let mut infeasible = Model::minimize();
        let x = infeasible.add_var("x", 0.0, Some(1.0), 1.0);
        infeasible.add_constraint("impossible", LinExpr::var(x), Cmp::Ge, 5.0);
        assert_eq!(
            ws.solve_cold(&infeasible, &options).status,
            Status::Infeasible
        );
        assert_eq!(ws.scaling_spread(), None);
    }

    /// A replica-cover-shaped LP with `rows` cover rows and one shared
    /// capacity row — small enough to exercise the micro fast path.
    fn cover_model(rows: usize) -> Model {
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..2 * rows)
            .map(|j| m.add_var(format!("y{j}"), 0.0, Some(5.0), 1.0 + (j % 3) as f64))
            .collect();
        for i in 0..rows {
            m.add_constraint(
                format!("cover{i}"),
                lin_sum([(1.0, vars[2 * i]), (1.0, vars[2 * i + 1])]),
                Cmp::Ge,
                2.0,
            );
        }
        m
    }

    #[test]
    fn micro_models_skip_presolve_and_devex() {
        let options = SimplexOptions::default();
        let mut ws = RevisedWorkspace::new();
        let micro = cover_model(MICRO_LP_ROWS - 10);
        assert_eq!(ws.solve_cold(&micro, &options).status, Status::Optimal);
        assert!(!ws.last_solve_used_presolve());
        assert_eq!(ws.last_solve_pricing(), Pricing::Dantzig);
        let large = cover_model(MICRO_LP_ROWS + 10);
        assert_eq!(ws.solve_cold(&large, &options).status, Status::Optimal);
        assert!(ws.last_solve_used_presolve());
        assert_eq!(ws.last_solve_pricing(), Pricing::Partial);
    }

    #[test]
    fn micro_size_iteration_counts_match_the_explicit_fast_path() {
        // Regression pin for the micro-size fast path: a default-options
        // solve of a micro model must replay the exact pivot trajectory
        // of an explicit presolve-off / Dantzig solve — identical
        // iteration and refactorisation counts, not just the objective.
        for rows in [5usize, 20, MICRO_LP_ROWS - 1] {
            let model = cover_model(rows);
            let mut default_ws = RevisedWorkspace::new();
            let defaulted = default_ws.solve_cold(&model, &SimplexOptions::default());
            let explicit_options = SimplexOptions {
                presolve: false,
                pricing: Pricing::Dantzig,
                ..SimplexOptions::default()
            };
            let mut explicit_ws = RevisedWorkspace::new();
            let explicit = explicit_ws.solve_cold(&model, &explicit_options);
            assert_eq!(defaulted.status, explicit.status, "rows={rows}");
            assert_eq!(defaulted.objective, explicit.objective, "rows={rows}");
            let d = default_ws.last_stats();
            let e = explicit_ws.last_stats();
            assert_eq!(d.iterations(), e.iterations(), "rows={rows}");
            assert_eq!(d.refactorisations, e.refactorisations, "rows={rows}");
        }
    }

    /// Two overlapping `>=` rows: every structural column touches both
    /// deficient rows, so the crash pass cannot cover either and phase 1
    /// genuinely needs pivots — which is what lets a zero budget expire
    /// *before* any feasible point exists.
    fn needs_phase_one_pivots() -> Model {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        let y = m.add_var("y", 0.0, None, 1.0);
        m.add_constraint("c1", lin_sum([(1.0, x), (1.0, y)]), Cmp::Ge, 4.0);
        m.add_constraint("c2", lin_sum([(1.0, x), (2.0, y)]), Cmp::Ge, 6.0);
        m
    }

    #[test]
    fn expired_deadline_stops_without_panicking() {
        use crate::error::SolveBudget;
        use std::time::Duration;
        // A zero allowance expires before the first pivot: phase 1 has
        // no feasible point yet, so the stop is status-only with the
        // typed reason recorded.
        let m = needs_phase_one_pivots();
        let options = SimplexOptions {
            budget: SolveBudget::with_deadline(Duration::ZERO),
            ..SimplexOptions::default()
        };
        let mut ws = RevisedWorkspace::new();
        let sol = ws.solve_cold(&m, &options);
        assert_eq!(sol.status, Status::DeadlineExceeded);
        assert!(!sol.has_point());
        assert_eq!(ws.last_error(), Some(LpError::DeadlineExceeded));
    }

    #[test]
    fn warm_dual_deadline_stop_returns_a_valid_bound_and_stays_warm() {
        use crate::error::SolveBudget;
        use std::time::Duration;
        // min -x - y with row caps x ≤ 4, y ≤ 4: optimum -8 at (4, 4).
        let build = |ub: f64| {
            let mut m = Model::minimize();
            let x = m.add_var("x", 0.0, Some(ub), -1.0);
            let y = m.add_var("y", 0.0, Some(ub), -1.0);
            m.add_constraint("cx", LinExpr::var(x), Cmp::Le, 4.0);
            m.add_constraint("cy", LinExpr::var(y), Cmp::Le, 4.0);
            m
        };
        let mut ws = RevisedWorkspace::new();
        let first = ws.solve_warm(&build(10.0), &SimplexOptions::default());
        assert_eq!(first.status, Status::Optimal);
        assert_close(first.objective, -8.0);

        // Tighten the variable boxes to 2 (the branch-and-bound /
        // delta-cleanup pattern): the stored basis turns primal
        // infeasible but stays dual feasible, so the cleanup needs
        // dual pivots — which a zero deadline forbids.
        let tightened = build(2.0);
        let options = SimplexOptions {
            budget: SolveBudget::with_deadline(Duration::ZERO),
            ..SimplexOptions::default()
        };
        let stopped = ws.solve_warm(&tightened, &options);
        assert_eq!(stopped.status, Status::DeadlineExceeded);
        assert_eq!(ws.last_error(), Some(LpError::DeadlineExceeded));
        // No primal point — but a finite, valid lower bound on the new
        // optimum (-4 at (2, 2)).
        assert!(!stopped.has_point());
        assert!(stopped.objective.is_finite());
        assert!(stopped.objective <= -4.0 + 1e-9);

        // The basis survived the budget stop: a follow-up solve with an
        // unlimited budget finishes the cleanup warm.
        let finished = ws.solve_warm(&tightened, &SimplexOptions::default());
        assert_eq!(finished.status, Status::Optimal);
        assert_close(finished.objective, -4.0);
        assert_ne!(ws.last_stats().warm, WarmStart::Cold);
    }

    #[test]
    fn unlimited_budget_leaves_solves_untouched_and_clears_errors() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 2.0);
        m.add_constraint("ge", LinExpr::var(x), Cmp::Ge, 4.0);
        let mut ws = RevisedWorkspace::new();
        let sol = ws.solve_cold(&m, &SimplexOptions::default());
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(ws.last_error(), None);
    }

    #[test]
    fn iteration_budget_returns_the_best_feasible_point_so_far() {
        use crate::error::SolveBudget;
        // All-`<=` model: the origin is feasible, phase 1 is empty, and
        // reaching the optimum needs several phase-2 pivots — so a
        // budget of one iteration must stop mid-phase-2 *with* a
        // feasible point whose objective is a valid bound.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, None, 3.0);
        let y = m.add_var("y", 0.0, None, 5.0);
        m.add_constraint("c1", LinExpr::var(x), Cmp::Le, 4.0);
        m.add_constraint("c2", lin_sum([(2.0, y)]), Cmp::Le, 12.0);
        m.add_constraint("c3", lin_sum([(3.0, x), (2.0, y)]), Cmp::Le, 18.0);
        let optimal = solve_lp_revised(&m);
        assert_eq!(optimal.status, Status::Optimal);
        assert_close(optimal.objective, 36.0);

        let mut ws = RevisedWorkspace::new();
        let stopped = ws.solve_cold(
            &m,
            &SimplexOptions {
                budget: SolveBudget::with_iterations(1),
                ..SimplexOptions::default()
            },
        );
        assert_eq!(stopped.status, Status::IterationLimit);
        assert_eq!(ws.last_error(), Some(LpError::IterationLimit));
        assert!(stopped.has_point(), "phase-2 stop must carry a point");
        assert!(m.is_feasible(&stopped.values, 1e-6));
        // Maximisation: any feasible point's objective lower-bounds the
        // optimum and cannot exceed it.
        assert!(stopped.objective <= optimal.objective + 1e-6);

        // A generous budget reaches the same optimum and clears the
        // error.
        let mut ws = RevisedWorkspace::new();
        let full = ws.solve_cold(
            &m,
            &SimplexOptions {
                budget: SolveBudget::with_iterations(10_000),
                ..SimplexOptions::default()
            },
        );
        assert_eq!(full.status, Status::Optimal);
        assert_eq!(ws.last_error(), None);
        assert_close(full.objective, optimal.objective);
    }

    #[test]
    fn checked_solve_distinguishes_usable_and_unusable_stops() {
        use crate::error::SolveBudget;
        use std::time::Duration;
        let m = needs_phase_one_pivots();
        let mut ws = RevisedWorkspace::new();
        // Conclusive solve: Ok with an optimal point.
        let ok = solve_lp_revised_checked(&m, &SimplexOptions::default(), &mut ws);
        assert_eq!(ok.unwrap().status, Status::Optimal);
        // Expired deadline before any feasible point: typed Err.
        let options = SimplexOptions {
            budget: SolveBudget::with_deadline(Duration::ZERO),
            ..SimplexOptions::default()
        };
        ws.invalidate();
        let err = solve_lp_revised_checked(&m, &options, &mut ws);
        assert_eq!(err.unwrap_err(), LpError::DeadlineExceeded);
        // Infeasible models are a conclusive answer, not an error.
        let mut inf = Model::minimize();
        let z = inf.add_var("z", 0.0, Some(1.0), 1.0);
        inf.add_constraint("imp", LinExpr::var(z), Cmp::Ge, 5.0);
        ws.invalidate();
        let sol = solve_lp_revised_checked(&inf, &SimplexOptions::default(), &mut ws);
        assert_eq!(sol.unwrap().status, Status::Infeasible);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase_two() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, None, 1.0);
        let y = m.add_var("y", 0.0, None, 2.0);
        m.add_constraint("e1", lin_sum([(1.0, x), (1.0, y)]), Cmp::Eq, 5.0);
        m.add_constraint("e2", lin_sum([(2.0, x), (2.0, y)]), Cmp::Eq, 10.0);
        let sol = solve_lp_revised(&m);
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 5.0);
    }
}
