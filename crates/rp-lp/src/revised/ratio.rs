//! The bounded-variable primal ratio test.
//!
//! This is where variable upper bounds are enforced **implicitly**: the
//! entering column may be blocked not only by a basic variable hitting
//! one of its bounds, but also by the entering variable itself reaching
//! its opposite bound — a **bound flip**, which changes no basis column
//! at all (and therefore needs no factorisation update). The dense
//! tableau, by contrast, materialises every finite upper bound as an
//! extra `x_j ≤ u_j` row, doubling the row count of the replica
//! formulations; tracking bounds here is what halves `m`.

use super::basis::{BasisState, StandardForm};
use super::pricing::Entering;

/// Outcome of the primal ratio test.
pub(crate) enum Ratio {
    /// No bound limits the entering direction: the LP is unbounded.
    Unbounded,
    /// The entering variable reaches its opposite bound first: toggle
    /// its status, no pivot.
    Flip { step: f64 },
    /// The basic variable of `row` reaches a bound first; it leaves the
    /// basis at its upper bound when `to_upper`, else at its lower.
    Pivot {
        row: usize,
        step: f64,
        to_upper: bool,
    },
}

/// Runs the ratio test for `entering` with pivot column `w = B⁻¹ a_q`.
///
/// The entering variable moves by `sigma · t` (`t ≥ 0`); every basic
/// variable moves by `−sigma · t · w_i`. The step is capped by the
/// first basic variable to hit a bound and by the entering variable's
/// own range `u_q − l_q`.
pub(crate) fn primal_ratio_test(
    form: &StandardForm,
    basis: &BasisState,
    entering: &Entering,
    w: &[f64],
    pivot_tol: f64,
    use_bland: bool,
) -> Ratio {
    let sigma = entering.sigma;
    let mut best_step = f64::INFINITY;
    let mut best_row: Option<(usize, bool)> = None; // (row, leaves at upper)

    for (row, &wi) in w.iter().enumerate() {
        let delta = sigma * wi;
        let col = basis.basic[row];
        let value = basis.x_basic[row];
        // delta > 0: the basic variable decreases towards its lower
        // bound; delta < 0: it increases towards its upper bound.
        let (limit, to_upper) = if delta > pivot_tol {
            let lb = form.lower[col];
            if lb == f64::NEG_INFINITY {
                continue;
            }
            (((value - lb) / delta).max(0.0), false)
        } else if delta < -pivot_tol {
            let ub = form.upper[col];
            if ub == f64::INFINITY {
                continue;
            }
            (((value - ub) / delta).max(0.0), true)
        } else {
            continue;
        };
        let better = match best_row {
            None => limit < best_step,
            Some((current, _)) => {
                if use_bland {
                    // Bland: smallest basic column index among the
                    // minimum-ratio rows.
                    limit < best_step - 1e-12
                        || (limit < best_step + 1e-12 && col < basis.basic[current])
                } else {
                    // Stability: among near-ties prefer the largest
                    // pivot magnitude.
                    limit < best_step - 1e-9
                        || (limit < best_step + 1e-9 && wi.abs() > w[current].abs())
                }
            }
        };
        if better {
            best_step = limit;
            best_row = Some((row, to_upper));
        }
    }

    // The entering variable's own range caps the step too.
    let range = form.upper[entering.col] - form.lower[entering.col];
    match best_row {
        Some((row, to_upper)) if best_step <= range => Ratio::Pivot {
            row,
            step: best_step,
            to_upper,
        },
        _ if range.is_finite() => Ratio::Flip { step: range },
        Some((row, to_upper)) => Ratio::Pivot {
            row,
            step: best_step,
            to_upper,
        },
        None => Ratio::Unbounded,
    }
}
