//! The bounded-variable primal ratio test and the **bound-flipping
//! dual ratio test**.
//!
//! Primal side: variable upper bounds are enforced **implicitly** — the
//! entering column may be blocked not only by a basic variable hitting
//! one of its bounds, but also by the entering variable itself reaching
//! its opposite bound — a **bound flip**, which changes no basis column
//! at all (and therefore needs no factorisation update). The dense
//! tableau, by contrast, materialises every finite upper bound as an
//! extra `x_j ≤ u_j` row, doubling the row count of the replica
//! formulations; tracking bounds here is what halves `m`.
//!
//! Dual side ([`dual_ratio_test`]): the classic dual ratio test stops
//! at the *first* breakpoint — the nonbasic column whose reduced cost
//! would change sign under the growing dual step `θ`. On the replica
//! formulations nearly every column is **boxed** (`0 ≤ y ≤ r`), and a
//! boxed column whose breakpoint is passed can simply **flip to its
//! opposite bound** and stay dual feasible. The long-step variant walks
//! the breakpoints in ratio order, tracking the slope of the dual
//! objective — the residual primal infeasibility `δ`, which each flip
//! shrinks by `|α_j|·(u_j−l_j)` — and keeps flipping while the slope
//! stays positive. One dual pivot then absorbs many would-be pivots,
//! and the flipped columns cost a single combined FTRAN in the driver.

use super::basis::{BasisState, ColStatus, StandardForm};
use super::pricing::Entering;

/// Outcome of the primal ratio test.
pub(crate) enum Ratio {
    /// No bound limits the entering direction: the LP is unbounded.
    Unbounded,
    /// The entering variable reaches its opposite bound first: toggle
    /// its status, no pivot.
    Flip { step: f64 },
    /// The basic variable of `row` reaches a bound first; it leaves the
    /// basis at its upper bound when `to_upper`, else at its lower.
    Pivot {
        row: usize,
        step: f64,
        to_upper: bool,
    },
}

/// Runs the ratio test for `entering` with pivot column `w = B⁻¹ a_q`.
///
/// The entering variable moves by `sigma · t` (`t ≥ 0`); every basic
/// variable moves by `−sigma · t · w_i`. The step is capped by the
/// first basic variable to hit a bound and by the entering variable's
/// own range `u_q − l_q`.
pub(crate) fn primal_ratio_test(
    form: &StandardForm,
    basis: &BasisState,
    entering: &Entering,
    w: &[f64],
    pivot_tol: f64,
    use_bland: bool,
) -> Ratio {
    let _t = rp_obs::phase_timer(rp_obs::Phase::RatioTest);
    let sigma = entering.sigma;
    let mut best_step = f64::INFINITY;
    let mut best_row: Option<(usize, bool)> = None; // (row, leaves at upper)

    for (row, &wi) in w.iter().enumerate() {
        let delta = sigma * wi;
        let col = basis.basic[row];
        let value = basis.x_basic[row];
        // delta > 0: the basic variable decreases towards its lower
        // bound; delta < 0: it increases towards its upper bound.
        let (limit, to_upper) = if delta > pivot_tol {
            let lb = form.lower[col];
            if lb == f64::NEG_INFINITY {
                continue;
            }
            (((value - lb) / delta).max(0.0), false)
        } else if delta < -pivot_tol {
            let ub = form.upper[col];
            if ub == f64::INFINITY {
                continue;
            }
            (((value - ub) / delta).max(0.0), true)
        } else {
            continue;
        };
        let better = match best_row {
            None => limit < best_step,
            Some((current, _)) => {
                if use_bland {
                    // Bland: smallest basic column index among the
                    // minimum-ratio rows.
                    limit < best_step - 1e-12
                        || (limit < best_step + 1e-12 && col < basis.basic[current])
                } else {
                    // Stability: among near-ties prefer the largest
                    // pivot magnitude.
                    limit < best_step - 1e-9
                        || (limit < best_step + 1e-9 && wi.abs() > w[current].abs())
                }
            }
        };
        if better {
            best_step = limit;
            best_row = Some((row, to_upper));
        }
    }

    // The entering variable's own range caps the step too.
    let range = form.upper[entering.col] - form.lower[entering.col];
    match best_row {
        Some((row, to_upper)) if best_step <= range => Ratio::Pivot {
            row,
            step: best_step,
            to_upper,
        },
        _ if range.is_finite() => Ratio::Flip { step: range },
        Some((row, to_upper)) => Ratio::Pivot {
            row,
            step: best_step,
            to_upper,
        },
        None => Ratio::Unbounded,
    }
}

/// Outcome of the bound-flipping dual ratio test.
pub(crate) enum DualRatio {
    /// No eligible entering column: the dual is unbounded, so the
    /// primal is infeasible.
    Infeasible,
    /// The dual step terminates at `entering`; the columns collected in
    /// the caller's `flips` buffer must jump to their opposite bounds
    /// first.
    Step { entering: usize },
}

/// Runs the bound-flipping (long-step) dual ratio test over the sparse
/// pivot row `(alpha_cols, alpha_vals)` of the leaving row.
///
/// `above` is the side on which the leaving basic variable violates its
/// bound and `violation` the magnitude — the initial slope `δ` of the
/// dual objective in the step direction. Breakpoints (eligible nonbasic
/// columns, ordered by their dual ratio `|d_j|/|α_j|`) are passed over
/// as long as flipping the column keeps the slope positive, i.e.
/// `δ − |α_j|·(u_j−l_j) > 0`; the first breakpoint that cannot be
/// flipped — an unboxed column, or a flip that would overshoot the
/// leaving bound — terminates the step and enters the basis. Flipped
/// columns land in `flips` (statuses untouched — the driver applies
/// them with one combined FTRAN); `breakpoints` is reusable scratch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dual_ratio_test(
    form: &StandardForm,
    basis: &BasisState,
    d: &[f64],
    alpha_cols: &[u32],
    alpha_vals: &[f64],
    above: bool,
    violation: f64,
    pivot_tol: f64,
    breakpoints: &mut Vec<(f64, f64, u32)>,
    flips: &mut Vec<u32>,
) -> DualRatio {
    let _t = rp_obs::phase_timer(rp_obs::Phase::RatioTest);
    debug_assert_eq!(d.len(), form.num_cols());
    breakpoints.clear();
    flips.clear();
    for (&col, &alpha) in alpha_cols.iter().zip(alpha_vals) {
        let col = col as usize;
        let at_lower = match basis.status[col] {
            ColStatus::Basic(_) => continue,
            ColStatus::Lower => true,
            ColStatus::Upper => false,
        };
        if form.is_fixed(col) || alpha.abs() <= pivot_tol {
            continue;
        }
        // The leaving basic must move back towards its violated bound:
        //   below lower (above = false): needs Δx_B[r] > 0, i.e. α·Δx_j < 0;
        //   above upper (above = true):  needs Δx_B[r] < 0, i.e. α·Δx_j > 0.
        // At-lower columns can only increase, at-upper only decrease.
        let eligible = if above {
            (at_lower && alpha > 0.0) || (!at_lower && alpha < 0.0)
        } else {
            (at_lower && alpha < 0.0) || (!at_lower && alpha > 0.0)
        };
        if !eligible {
            continue;
        }
        let ratio = d[col].abs() / alpha.abs();
        breakpoints.push((ratio, alpha.abs(), col as u32));
    }
    if breakpoints.is_empty() {
        return DualRatio::Infeasible;
    }
    // Ratio order; among (near-)ties prefer the larger pivot magnitude
    // for stability — it is the entry most likely to end up pivotal.
    breakpoints.sort_unstable_by(|a, b| {
        (a.0, b.1)
            .partial_cmp(&(b.0, a.1))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut slope = violation;
    // Degenerate long steps can land the slope *exactly* on zero at the
    // final breakpoint, and rounding in `slope − |α|·range` then leaves
    // a residue of either sign (e.g. `0.5 − fl(1/3) − fl(1/6)` is
    // `+3e−17`). Flipping on such a residue exhausts the breakpoint
    // list with the slope still "positive" and turns a finished dual
    // step into a spurious infeasibility certificate — which a warm
    // branch-and-bound node solve would report as a pruned subtree. A
    // residual slope within rounding distance of zero therefore
    // terminates the step at the breakpoint instead of flipping it.
    let slope_tol = pivot_tol * violation.max(1.0);
    for &(_, alpha_abs, col) in breakpoints.iter() {
        let range = form.upper[col as usize] - form.lower[col as usize];
        // A boxed column whose flip keeps the slope positive is passed
        // over; anything else terminates the dual step here.
        if range.is_finite() {
            let remaining = slope - alpha_abs * range;
            if remaining > slope_tol {
                slope = remaining;
                flips.push(col);
                continue;
            }
        }
        return DualRatio::Step {
            entering: col as usize,
        };
    }
    // Every breakpoint flipped and the slope never reached zero: the
    // dual step is unbounded.
    flips.clear();
    DualRatio::Infeasible
}
