//! Standard-form matrix and basis bookkeeping for the revised simplex.
//!
//! [`StandardForm`] turns a [`Model`](crate::Model) into the equality
//! form `A·x = b`, `l ≤ x ≤ u` the revised simplex works on:
//!
//! * one row per model constraint — variable upper bounds are **not**
//!   materialised as rows (they live in the column bounds and are
//!   enforced by the bounded ratio test), which halves `m` versus the
//!   dense tableau for the replica-placement LPs;
//! * one slack column per row with bounds that encode the comparison
//!   direction: `[0, ∞)` for `≤`, `(-∞, 0]` for `≥`, `[0, 0]` for `=`.
//!   With a `+1` coefficient everywhere the all-slack basis is the
//!   identity;
//! * artificial columns are appended per solve, only for rows whose
//!   initial slack value violates the slack bounds.
//!
//! [`BasisState`] tracks which column is basic in which row, the
//! at-lower/at-upper status of every nonbasic column, and the values of
//! the basic variables.

use crate::model::{Cmp, Model, Sense};

/// Dense column index ranges: `0..n_struct` structural,
/// `n_struct..n_struct + m` slacks, the rest artificials.
#[derive(Default)]
pub(crate) struct StandardForm {
    /// Rows (model constraints).
    pub(crate) m: usize,
    /// Structural columns (model variables).
    pub(crate) n_struct: usize,
    /// CSC of the structural columns.
    pub(crate) col_ptr: Vec<usize>,
    pub(crate) col_rows: Vec<u32>,
    pub(crate) col_vals: Vec<f64>,
    /// CSR mirror (structural columns only), used by the crash basis.
    pub(crate) row_ptr: Vec<usize>,
    pub(crate) row_cols: Vec<u32>,
    pub(crate) row_vals: Vec<f64>,
    /// Per-column bounds, including slacks and artificials.
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    /// Phase-2 cost per column (sense-normalised to minimisation;
    /// slacks and artificials cost 0).
    pub(crate) cost: Vec<f64>,
    /// Right-hand sides.
    pub(crate) rhs: Vec<f64>,
    /// Rows of the artificial columns (one row each, coefficient
    /// `art_sign`), appended per solve.
    pub(crate) art_rows: Vec<usize>,
    pub(crate) art_signs: Vec<f64>,
    /// Set when a variable's bounds are inverted (`ub < lb`): the LP is
    /// trivially infeasible.
    pub(crate) trivially_infeasible: bool,
}

impl StandardForm {
    /// Total number of columns currently defined.
    pub(crate) fn num_cols(&self) -> usize {
        self.n_struct + self.m + self.art_rows.len()
    }

    /// First artificial column index.
    pub(crate) fn art_base(&self) -> usize {
        self.n_struct + self.m
    }

    /// `true` for slack or structural columns whose bounds pin them
    /// (`ub − lb ≤ 0`): they can never usefully enter the basis.
    pub(crate) fn is_fixed(&self, col: usize) -> bool {
        self.upper[col] - self.lower[col] <= 0.0
    }

    /// Rebuilds the standard form from `model`, reusing every buffer.
    pub(crate) fn build(&mut self, model: &Model) {
        let n = model.num_vars();
        let m = model.num_constraints();
        self.m = m;
        self.n_struct = n;
        self.art_rows.clear();
        self.art_signs.clear();
        self.trivially_infeasible = false;

        // CSC from the row-wise constraints: count, prefix, fill.
        self.col_ptr.clear();
        self.col_ptr.resize(n + 1, 0);
        for c in &model.constraints {
            for &(var, _) in &c.terms {
                self.col_ptr[var.index() + 1] += 1;
            }
        }
        for j in 0..n {
            self.col_ptr[j + 1] += self.col_ptr[j];
        }
        let nnz = self.col_ptr[n];
        self.col_rows.clear();
        self.col_rows.resize(nnz, 0);
        self.col_vals.clear();
        self.col_vals.resize(nnz, 0.0);
        // `col_ptr[j]` doubles as the fill cursor for column j; restore
        // it afterwards by shifting back.
        for (row, c) in model.constraints.iter().enumerate() {
            for &(var, coeff) in &c.terms {
                let slot = self.col_ptr[var.index()];
                self.col_rows[slot] = row as u32;
                self.col_vals[slot] = coeff;
                self.col_ptr[var.index()] += 1;
            }
        }
        for j in (1..=n).rev() {
            self.col_ptr[j] = self.col_ptr[j - 1];
        }
        self.col_ptr[0] = 0;

        // CSR mirror for row-wise scans (the crash basis). The
        // constraints are already row-ordered, so one pass suffices.
        self.row_ptr.clear();
        self.row_cols.clear();
        self.row_vals.clear();
        self.row_ptr.push(0);
        for c in &model.constraints {
            for &(var, coeff) in &c.terms {
                self.row_cols.push(var.index() as u32);
                self.row_vals.push(coeff);
            }
            self.row_ptr.push(self.row_cols.len());
        }

        // Bounds and costs: structural then slack columns.
        let maximise = model.sense() == Sense::Maximize;
        self.lower.clear();
        self.upper.clear();
        self.cost.clear();
        for v in &model.variables {
            let ub = v.upper.unwrap_or(f64::INFINITY);
            if ub < v.lower {
                self.trivially_infeasible = true;
            }
            self.lower.push(v.lower);
            self.upper.push(ub);
            self.cost
                .push(if maximise { -v.objective } else { v.objective });
        }
        self.rhs.clear();
        for c in &model.constraints {
            let (slo, shi) = match c.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            self.lower.push(slo);
            self.upper.push(shi);
            self.cost.push(0.0);
            self.rhs.push(c.rhs);
        }
    }

    /// Refreshes the structural bounds, objective and right-hand sides
    /// from `model` (used by the warm-started branch-and-bound path;
    /// the stored basis stays valid because none of these enter the
    /// basis matrix).
    pub(crate) fn refresh_bounds(&mut self, model: &Model) {
        self.trivially_infeasible = false;
        let maximise = model.sense() == Sense::Maximize;
        for (j, v) in model.variables.iter().enumerate() {
            let ub = v.upper.unwrap_or(f64::INFINITY);
            if ub < v.lower {
                self.trivially_infeasible = true;
            }
            self.lower[j] = v.lower;
            self.upper[j] = ub;
            self.cost[j] = if maximise { -v.objective } else { v.objective };
        }
        for (row, c) in model.constraints.iter().enumerate() {
            self.rhs[row] = c.rhs;
        }
    }

    /// `true` when `model` has the same shape as the standard form was
    /// built for (variable and constraint counts).
    pub(crate) fn shape_matches(&self, model: &Model) -> bool {
        self.n_struct == model.num_vars() && self.m == model.num_constraints()
    }

    /// `true` when `model`'s constraint matrix is entry-for-entry the
    /// one this standard form was built from (compared against the CSR
    /// mirror, which preserves the original row-major term order).
    /// `O(nnz)` — cheap next to a solve, and what lets `solve_warm`
    /// keep its documented promise of falling back to a cold solve
    /// whenever anything but bounds, costs or right-hand sides changed.
    pub(crate) fn matrix_matches(&self, model: &Model) -> bool {
        for (row, c) in model.constraints.iter().enumerate() {
            let range = self.row_ptr[row]..self.row_ptr[row + 1];
            if range.len() != c.terms.len() {
                return false;
            }
            for (t, &(var, coeff)) in range.zip(&c.terms) {
                if self.row_cols[t] as usize != var.index() || self.row_vals[t] != coeff {
                    return false;
                }
            }
        }
        true
    }

    /// Applies `f(row, value)` to every entry of column `col`.
    #[inline]
    pub(crate) fn for_each_entry(&self, col: usize, mut f: impl FnMut(usize, f64)) {
        if col < self.n_struct {
            for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                f(self.col_rows[k] as usize, self.col_vals[k]);
            }
        } else if col < self.art_base() {
            f(col - self.n_struct, 1.0);
        } else {
            let a = col - self.art_base();
            f(self.art_rows[a], self.art_signs[a]);
        }
    }

    /// Dot product of column `col` with a dense row-indexed vector.
    #[inline]
    pub(crate) fn col_dot(&self, col: usize, v: &[f64]) -> f64 {
        if col < self.n_struct {
            let mut sum = 0.0;
            for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                sum += self.col_vals[k] * v[self.col_rows[k] as usize];
            }
            sum
        } else if col < self.art_base() {
            v[col - self.n_struct]
        } else {
            let a = col - self.art_base();
            self.art_signs[a] * v[self.art_rows[a]]
        }
    }
}

/// Where a column currently sits.
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum ColStatus {
    /// Basic in the given row.
    Basic(u32),
    /// Nonbasic at its lower bound.
    Lower,
    /// Nonbasic at its upper bound.
    Upper,
}

/// The basis: row → column map, column statuses, basic values.
#[derive(Default)]
pub(crate) struct BasisState {
    pub(crate) status: Vec<ColStatus>,
    /// `basic[row]` = column basic in that row.
    pub(crate) basic: Vec<usize>,
    /// Values of the basic variables, by row.
    pub(crate) x_basic: Vec<f64>,
}

impl BasisState {
    /// Value of a nonbasic column under its current status.
    #[inline]
    pub(crate) fn nonbasic_value(&self, form: &StandardForm, col: usize) -> f64 {
        match self.status[col] {
            ColStatus::Basic(row) => self.x_basic[row as usize],
            ColStatus::Lower => form.lower[col],
            ColStatus::Upper => form.upper[col],
        }
    }

    /// Writes the dense solution (structural columns only) into `out`.
    pub(crate) fn extract_values(&self, form: &StandardForm, out: &mut Vec<f64>) {
        out.clear();
        for j in 0..form.n_struct {
            out.push(self.nonbasic_value(form, j));
        }
    }

    /// Computes `b − Σ_nonbasic a_j·x_j` into `out` (the right-hand side
    /// the basic variables must cover). `O(nnz)`.
    pub(crate) fn residual_rhs(&self, form: &StandardForm, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&form.rhs);
        for col in 0..form.num_cols() {
            match self.status[col] {
                ColStatus::Basic(_) => {}
                ColStatus::Lower | ColStatus::Upper => {
                    let value = self.nonbasic_value(form, col);
                    if value != 0.0 {
                        form.for_each_entry(col, |row, coeff| {
                            out[row] -= coeff * value;
                        });
                    }
                }
            }
        }
    }
}
